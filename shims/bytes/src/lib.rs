//! Vendored stand-in for the `bytes` crate: cheaply-cloneable immutable
//! byte slices (`Bytes`), an append buffer (`BytesMut`), and the
//! big-endian `Buf`/`BufMut` read/write traits, matching the wire
//! behaviour of the real crate for the subset the workspace uses.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte slice. Cloning and slicing are O(1)
/// and share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// Growable append buffer; `freeze()` converts to an immutable `Bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn clear(&mut self) {
        self.vec.clear();
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Splits off and returns the entire contents, leaving `self` empty
    /// (the `BytesMut::split` contract for the whole-buffer case).
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            vec: std::mem::take(&mut self.vec),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Big-endian cursor reads over a byte source, as in the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes out of bounds");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        buf_get!(self, u8, 1)
    }
    fn get_u16(&mut self) -> u16 {
        buf_get!(self, u16, 2)
    }
    fn get_u32(&mut self) -> u32 {
        buf_get!(self, u32, 4)
    }
    fn get_u64(&mut self) -> u64 {
        buf_get!(self, u64, 8)
    }
    fn get_i32(&mut self) -> i32 {
        buf_get!(self, i32, 4)
    }
    fn get_i64(&mut self) -> i64 {
        buf_get!(self, i64, 8)
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

macro_rules! buf_get {
    ($buf:expr, $t:ty, $n:literal) => {{
        let mut raw = [0u8; $n];
        raw.copy_from_slice(&$buf.chunk()[..$n]);
        $buf.advance($n);
        <$t>::from_be_bytes(raw)
    }};
}
use buf_get;

macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_ref() {
                write!(f, "\\x{b:02x}")?;
            }
            write!(f, "\"")
        }
    };
}
use fmt_bytes_debug;

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes out of bounds");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

/// Big-endian appends, as in the real crate.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trip_is_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0x01020304);
        buf.put_u64(0x0102030405060708);
        buf.put_i64(-5);
        buf.put_f64(1.5);
        assert_eq!(&buf[1..3], &[0x01, 0x02]);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x01020304);
        assert_eq!(b.get_u64(), 0x0102030405060708);
        assert_eq!(b.get_i64(), -5);
        assert_eq!(b.get_f64(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slices_share_and_advance() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut tail = b.slice(2..);
        assert_eq!(tail.remaining(), 3);
        assert_eq!(tail.get_u8(), 3);
        let rest = tail.copy_to_bytes(2);
        assert_eq!(rest.as_ref(), &[4, 5]);
        assert!(tail.is_empty());
        // Original untouched.
        assert_eq!(b.as_ref(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn split_empties_the_buffer() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abc");
        let taken = buf.split();
        assert!(buf.is_empty());
        assert_eq!(taken.as_ref(), b"abc");
    }
}
