//! Vendored stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace carries
//! the exact lock API subset it uses. Semantics follow `parking_lot`:
//! `lock()`/`read()`/`write()` return guards directly (poisoning is
//! swallowed, as `parking_lot` has no poisoning), and `Condvar` waits on a
//! `&mut MutexGuard` rather than consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can hand the underlying guard to
    // `std::sync::Condvar::wait` (which takes it by value) and put the
    // reacquired guard back. Always `Some` outside of that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert!(cv.wait_until(&mut g, deadline).timed_out());
    }
}
