//! Vendored stand-in for the `criterion` crate: enough of the API to run
//! the workspace's microbenches offline and print mean/min per-iteration
//! timings. No statistical machinery — calibrated sampling only.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-sample time budget; iterations are calibrated so one sample costs
/// roughly this much wall clock.
const SAMPLE_BUDGET: Duration = Duration::from_millis(4);

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// How per-iteration setup is batched. The shim runs setup outside the
/// timed region in all cases, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    sample_size: usize,
    /// (total duration, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        self.run_samples(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run_samples(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
    }

    /// Calibrates an iteration count against `SAMPLE_BUDGET`, then takes
    /// `sample_size` samples of that many iterations.
    fn run_samples<F>(&mut self, mut sample: F)
    where
        F: FnMut(u64) -> Duration,
    {
        let mut iters = 1u64;
        loop {
            let took = sample(iters).max(Duration::from_nanos(1));
            if took >= SAMPLE_BUDGET / 2 || iters >= 1 << 20 {
                let per = took.as_nanos() / iters as u128;
                iters = (SAMPLE_BUDGET.as_nanos() / per.max(1)).clamp(1, 1 << 20) as u64;
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            self.samples.push((sample(iters), iters));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{id:<40} time: [mean {} min {}] ({} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            per_iter.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion::default().sample_size(2);
        c.benchmark_group("g").bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| {
                    assert_eq!(v.len(), 3);
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
    }
}
