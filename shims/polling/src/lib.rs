//! Vendored offline stand-in exposing the `polling` API subset used by the
//! workspace: a readiness poller with oneshot interest semantics, backed by
//! epoll(7) on Linux and poll(2) on other Unix platforms.
//!
//! Semantics mirrored from the real crate:
//! - Interest is **oneshot**: after a source is reported ready once it must be
//!   re-armed with [`Poller::modify`] before further events are delivered.
//! - [`Poller::notify`] wakes a concurrent [`Poller::wait`] call exactly once;
//!   the wakeup is not reported as a user event.
//! - Keys are caller-chosen `usize` values; `usize::MAX` is reserved for the
//!   internal notifier.

use std::time::Duration;

/// Interest in readiness events for one source, tagged with a caller key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Buffer of events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    pub fn new() -> Events {
        Events { inner: Vec::new() }
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }
}

const NOTIFY_KEY: usize = usize::MAX;

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs timeout does not busy-spin as 0ms.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{timeout_ms, Event, Events, NOTIFY_KEY};
    use std::io;
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    // On x86-64 the kernel's struct epoll_event is packed; elsewhere it uses
    // natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// epoll-backed readiness poller with oneshot interest.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        event_fd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let event_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, event_fd };
            // The notifier is level-triggered and never disarmed; wait()
            // drains it and filters it out of the user-visible events.
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY_KEY as u64,
            };
            cvt(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.event_fd, &mut ev) })?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut flags = EPOLLONESHOT | EPOLLERR | EPOLLHUP | EPOLLRDHUP;
            if interest.readable {
                flags |= EPOLLIN;
            }
            if interest.writable {
                flags |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: flags,
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), interest)
        }

        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), interest)
        }

        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, source.as_raw_fd(), &mut ev) })
                .map(|_| ())
        }

        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            const CAP: usize = 1024;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
            let n = loop {
                let ret = unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms(timeout))
                };
                if ret >= 0 {
                    break ret as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            let before = events.inner.len();
            for ev in raw.iter().take(n) {
                let key = ev.data as usize;
                if key == NOTIFY_KEY {
                    let mut buf = [0u8; 8];
                    unsafe { read(self.event_fd, buf.as_mut_ptr(), buf.len()) };
                    continue;
                }
                let flags = ev.events;
                events.inner.push(Event {
                    key,
                    readable: flags & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: flags & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(events.inner.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            let ret = unsafe { write(self.event_fd, one.as_ptr(), one.len()) };
            // EAGAIN means a previous notification is still pending, which is
            // just as good as delivering a new one.
            if ret < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.event_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{timeout_ms, Event, Events, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// poll(2)-backed fallback with emulated oneshot interest.
    #[derive(Debug)]
    pub struct Poller {
        sources: Mutex<HashMap<RawFd, Event>>,
        wake_rx: Mutex<UnixStream>,
        wake_tx: Mutex<UnixStream>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let (tx, rx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            Ok(Poller {
                sources: Mutex::new(HashMap::new()),
                wake_rx: Mutex::new(rx),
                wake_tx: Mutex::new(tx),
            })
        }

        pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            let mut sources = self.sources.lock().unwrap();
            if sources.insert(source.as_raw_fd(), interest).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd registered",
                ));
            }
            drop(sources);
            self.notify()
        }

        pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
            let mut sources = self.sources.lock().unwrap();
            match sources.get_mut(&source.as_raw_fd()) {
                Some(slot) => *slot = interest,
                None => return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
            drop(sources);
            self.notify()
        }

        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.sources.lock().unwrap().remove(&source.as_raw_fd());
            Ok(())
        }

        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let rx = self.wake_rx.lock().unwrap();
            let mut fds = vec![PollFd {
                fd: rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            }];
            let keys: Vec<(RawFd, Event)> = {
                let sources = self.sources.lock().unwrap();
                sources.iter().map(|(fd, ev)| (*fd, *ev)).collect()
            };
            for (fd, ev) in &keys {
                let mut flags = 0;
                if ev.readable {
                    flags |= POLLIN;
                }
                if ev.writable {
                    flags |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: *fd,
                    events: flags,
                    revents: 0,
                });
            }
            let n = loop {
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if ret >= 0 {
                    break ret;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(0);
            }
            if fds[0].revents != 0 {
                let mut buf = [0u8; 64];
                let mut rx = rx;
                while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
            }
            let before = events.inner.len();
            let mut sources = self.sources.lock().unwrap();
            for (slot, (fd, ev)) in fds[1..].iter().zip(keys.iter()) {
                if slot.revents == 0 {
                    continue;
                }
                let _ = NOTIFY_KEY;
                events.inner.push(Event {
                    key: ev.key,
                    readable: slot.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: slot.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
                // Emulate oneshot: disarm until the caller re-arms.
                if let Some(slot) = sources.get_mut(fd) {
                    *slot = Event::none(slot.key);
                }
            }
            Ok(events.inner.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let mut tx = self.wake_tx.lock().unwrap();
            match tx.write(&[1u8]) {
                Ok(_) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!("the vendored polling shim supports only Unix platforms");

pub use sys::Poller;

#[allow(dead_code)]
fn _assert_traits() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Poller>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reports_readable_and_respects_oneshot() {
        let poller = Poller::new().unwrap();
        let (mut tx, rx) = pair();
        rx.set_nonblocking(true).unwrap();
        poller.add(&rx, Event::readable(7)).unwrap();

        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(n, 0, "no data yet");

        tx.write_all(b"hi").unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Oneshot: without re-arming, the still-readable socket is silent.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0);

        // Re-arm and the event fires again.
        poller.modify(&rx, Event::readable(7)).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);

        let mut buf = [0u8; 8];
        let mut rx = rx;
        assert_eq!(rx.read(&mut buf).unwrap(), 2);
        poller.delete(&rx).unwrap();
    }

    #[test]
    fn notify_wakes_wait_without_user_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0, "notify must not surface a user event");
        assert!(started.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn timeout_expires() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
    }
}
