//! Vendored stand-in for the `rand` crate: a seedable xoshiro256++
//! generator behind the `rand 0.8` trait names (`SeedableRng`, `Rng`,
//! `gen_range`) for the subset the workspace uses. Deterministic per
//! seed, which is all the TPC-C generators require.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn from_seed(seed: [u8; 32]) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // Expand via splitmix64, as rand does for small seeds.
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        sample_f64(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that can produce a uniform sample. Implemented for `Range`
/// and `RangeInclusive` over the integer types the workspace uses, and
/// for half-open `f64` ranges.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * sample_f64(rng)
    }
}

/// Uniform in `[0, 1)` from the top 53 bits.
fn sample_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the standard small, fast, high-quality PRNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(raw);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000)).collect();
        let mut a2 = StdRng::seed_from_u64(42);
        let orig: Vec<u64> = (0..16).map(|_| a2.gen_range(0..1_000_000)).collect();
        assert_ne!(same, orig);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            hit_lo |= v == -3;
            hit_hi |= v == 3;
            let f = r.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let u = r.gen_range(0usize..5);
            assert!(u < 5);
        }
        assert!(hit_lo && hit_hi);
    }
}
