//! Core `Strategy` trait and combinators: `Just`, ranges, tuples, maps,
//! unions, boxing, and bounded recursion.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// Something that can generate random values of `Self::Value`.
///
/// Real proptest separates generation (value trees) from shrinking; this
/// stand-in generates values directly and does not shrink.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Bounded recursive strategy: `recurse` builds a strategy for one
    /// nesting level from the strategy for the level below; `depth`
    /// bounds the nesting. The size-tuning parameters of real proptest
    /// are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value, F>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Arc::new(recurse),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.usize_inclusive(0, self.arms.len() - 1);
        self.arms[arm].generate(rng)
    }
}

pub struct Recursive<T, F> {
    base: BoxedStrategy<T>,
    depth: u32,
    recurse: Arc<F>,
}

impl<T, F> Clone for Recursive<T, F> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            recurse: Arc::clone(&self.recurse),
        }
    }
}

impl<T, R, F> Strategy for Recursive<T, F>
where
    T: 'static,
    R: Strategy<Value = T> + 'static,
    F: Fn(BoxedStrategy<T>) -> R,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Build `depth` alternating layers of "either a leaf or one more
        // level of recursion", then sample once. The 50/50 union at each
        // layer keeps expected sizes small while still reaching full depth.
        let mut current = self.base.clone();
        for _ in 0..self.depth {
            let deeper = (self.recurse)(current).boxed();
            current = Union::new(vec![self.base.clone(), deeper]).boxed();
        }
        current.generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0);
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);

/// String-literal patterns act as strategies generating matching strings
/// (a small regex subset — see `crate::string`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
