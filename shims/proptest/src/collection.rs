//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_inclusive(self.lo, self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        // Duplicates collapse, so the result may be smaller than the
        // drawn size — same contract as real proptest.
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.pick(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
