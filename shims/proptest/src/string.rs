//! String generation from a small regex subset: a sequence of atoms,
//! where an atom is a character class `[a-z0-9_]` or a literal character,
//! optionally followed by a `{n}` / `{lo,hi}` repetition. This covers the
//! patterns the workspace's property tests use (e.g. `"[a-zA-Z0-9]{0,12}"`).

use crate::test_runner::TestRng;

pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                            class.extend((lo..=hi).filter(|c| c.is_ascii()));
                        }
                        other => {
                            class.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
                class
            }
            '\\' => vec![chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))],
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
            }
            literal => vec![literal],
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated repetition in pattern {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.usize_inclusive(lo, hi);
        for _ in 0..count {
            let pick = rng.usize_inclusive(0, choices.len() - 1);
            out.push(choices[pick]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::from_seed_str("class");
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z0-9]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed_str("lit");
        let s = generate_matching("ab[01]{3}z", &mut rng);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("ab") && s.ends_with('z'));
        assert!(s[2..5].chars().all(|c| c == '0' || c == '1'));
    }
}
