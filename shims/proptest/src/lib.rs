//! Vendored stand-in for the `proptest` crate: random-input property
//! testing with the `proptest!` macro, composable strategies, and the
//! collection/recursive combinators the workspace uses. Cases are seeded
//! deterministically per test (FNV over the test path) so CI runs are
//! reproducible. Unlike real proptest there is no shrinking — a failing
//! case reports its inputs verbatim.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of real proptest's `prelude::prop` module of re-exports.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Top-level entry: wraps one or more `#[test] fn name(arg in strategy, ..)`
/// items, running each body over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_seed_str(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        err,
                        described
                    );
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args..)` — fails
/// the current case (with the generated inputs in the panic message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    lhs,
                    rhs
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    lhs,
                    rhs
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs != *rhs,
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    lhs
                );
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
