//! Test configuration, the per-test RNG, and case failure reporting.

use std::fmt;

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (from `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// splitmix64 generator, seeded deterministically from the test path so
/// every run explores the same cases (reproducible CI, no shrinking).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed_str(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut hash = 0xcbf29ce484222325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
