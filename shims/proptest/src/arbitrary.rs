//! `any::<T>()` for the primitive types the workspace asks for.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy for a primitive, driven by a generator function.
pub struct AnyStrategy<T> {
    gen: fn(&mut TestRng) -> T,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for AnyStrategy<T> {}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

macro_rules! arbitrary_via {
    ($($t:ty => $gen:expr;)+) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { gen: $gen, _marker: PhantomData }
            }
        }
    )+};
}

arbitrary_via! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    // Finite floats only, matching real proptest's default float classes
    // (no NaN or infinities).
    f64 => |rng| loop {
        let f = f64::from_bits(rng.next_u64());
        if f.is_finite() {
            return f;
        }
    };
    f32 => |rng| loop {
        let f = f32::from_bits(rng.next_u64() as u32);
        if f.is_finite() {
            return f;
        }
    };
}
