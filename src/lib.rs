//! BullFrog — online schema evolution via lazy evaluation.
//!
//! This facade crate re-exports the whole workspace under one roof so that
//! examples and downstream users can depend on a single `bullfrog` crate.
//!
//! - [`common`] — values, rows, schemas, constraints, errors.
//! - [`storage`] — slotted-page heaps, B-tree indexes, catalog.
//! - [`txn`] — strict-2PL lock manager, transactions, WAL.
//! - [`query`] — expressions, select specs, view expansion.
//! - [`engine`] — the OLTP engine (DML/DDL/scans/joins/aggregation).
//! - [`core`] — the paper's contribution: lazy, exactly-once schema
//!   migration with bitmap/hashmap trackers, background migration, and the
//!   eager / multi-step baselines.
//! - [`sql`] — a SQL front-end: predicates, SELECT specs, CREATE TABLE,
//!   and `CREATE TABLE ... AS SELECT` migration DDL.
//! - [`net`] — the BFNET1 TCP server/client: lazy migrations under real
//!   multi-client traffic.
//! - [`cluster`] — shared-nothing distributed lazy migration: hash
//!   partitioning by shard map, a routing/scatter-gather client, and a
//!   two-phase schema-flip coordinator with cross-node aggregate
//!   exchange (the `clusterd` binary).
//! - [`repl`] — physical replication by WAL shipping: primary-side
//!   sender, read-only replicas, snapshot bootstrap, and the `repld` /
//!   `loadgen` binaries.
//! - [`tpcc`] — the TPC-C workload extended with schema migrations.
//!
//! See the `examples/` directory for end-to-end usage, starting with
//! `quickstart.rs`.

pub use bullfrog_cluster as cluster;
pub use bullfrog_common as common;
pub use bullfrog_core as core;
pub use bullfrog_engine as engine;
pub use bullfrog_ha as ha;
pub use bullfrog_net as net;
pub use bullfrog_query as query;
pub use bullfrog_repl as repl;
pub use bullfrog_sql as sql;
pub use bullfrog_storage as storage;
pub use bullfrog_tpcc as tpcc;
pub use bullfrog_txn as txn;

pub use bullfrog_common::{Error, Result, Row, Value};
