#!/usr/bin/env bash
# Tier-1 verification plus style/lint gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== WAL tests under high thread pressure =="
RUST_TEST_THREADS=16 cargo test -q -p bullfrog-txn wal
RUST_TEST_THREADS=16 cargo test -q -p bullfrog-engine --test durability

echo "== server integration tests =="
cargo test -q -p bullfrog-net --test server_integration --test migration_race

echo "== loadgen smoke (loopback, fixed seed, bounded) =="
timeout 10 cargo run --release -q -p bullfrog-net --bin loadgen -- \
  --clients 32 --accounts 128 --ops 5 --seed 42

echo "== loadgen smoke (file-backed WAL, async commit) =="
timeout 10 cargo run --release -q -p bullfrog-net --bin loadgen -- \
  --clients 32 --accounts 128 --ops 5 --seed 42 \
  --commit-mode nowait --wal-dir "$(mktemp -d)"

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "verify: OK"
