#!/usr/bin/env bash
# Tier-1 verification plus style/lint gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== WAL tests under high thread pressure =="
RUST_TEST_THREADS=16 cargo test -q -p bullfrog-txn wal
RUST_TEST_THREADS=16 cargo test -q -p bullfrog-engine --test durability

echo "== server integration tests =="
cargo test -q -p bullfrog-net --test server_integration --test migration_race

echo "== replication tests =="
cargo test -q -p bullfrog-repl

echo "== engine + migration suites under snapshot isolation =="
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-engine
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-core
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-repl
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-net --test si_conflicts

echo "== loadgen smoke (snapshot isolation, bounded) =="
timeout 10 cargo run --release -q -p bullfrog-repl --bin loadgen -- \
  --engine-mode si --clients 32 --accounts 128 --ops 5 --seed 42

echo "== loadgen smoke (loopback, fixed seed, bounded) =="
timeout 10 cargo run --release -q -p bullfrog-repl --bin loadgen -- \
  --clients 32 --accounts 128 --ops 5 --seed 42

echo "== loadgen smoke (file-backed WAL, async commit) =="
timeout 10 cargo run --release -q -p bullfrog-repl --bin loadgen -- \
  --clients 32 --accounts 128 --ops 5 --seed 42 \
  --commit-mode nowait --wal-dir "$(mktemp -d)"

echo "== loadgen smoke (live replica, equivalence verified) =="
timeout 30 cargo run --release -q -p bullfrog-repl --bin loadgen -- \
  --clients 16 --accounts 128 --ops 5 --seed 42 --replica

echo "== repld two-process loopback smoke (zero lag after drain) =="
REPLD=target/release/repld
LOADGEN=target/release/loadgen
REPL_DIR="$(mktemp -d)"
PRIMARY=127.0.0.1:7788
REPLICA=127.0.0.1:7789
cleanup() { kill "${PRIMARY_PID:-}" "${REPLICA_PID:-}" 2>/dev/null || true; rm -rf "$REPL_DIR"; }
trap cleanup EXIT
"$REPLD" primary --listen "$PRIMARY" --wal-dir "$REPL_DIR" &
PRIMARY_PID=$!
sleep 0.5
"$REPLD" replica --listen "$REPLICA" --primary "$PRIMARY" &
REPLICA_PID=$!
sleep 0.5
timeout 30 "$LOADGEN" --addr "$PRIMARY" --clients 8 --accounts 64 --ops 5 --seed 42
timeout 30 "$REPLD" wait-zero-lag --addr "$REPLICA" --timeout-secs 25
"$REPLD" status --addr "$REPLICA" | grep -q '^repl.role_replica = 1$'
"$REPLD" shutdown --addr "$REPLICA"
"$REPLD" shutdown --addr "$PRIMARY"
wait "$PRIMARY_PID" "$REPLICA_PID"
trap - EXIT
cleanup

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "verify: OK"
