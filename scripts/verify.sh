#!/usr/bin/env bash
# Tier-1 verification plus style/lint gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== WAL tests under high thread pressure =="
RUST_TEST_THREADS=16 cargo test -q -p bullfrog-txn wal
RUST_TEST_THREADS=16 cargo test -q -p bullfrog-engine --test durability

echo "== server integration tests =="
cargo test -q -p bullfrog-net --test server_integration --test migration_race

echo "== pipelining + prepared statements + chunked results (both engine modes) =="
cargo test -q -p bullfrog-net --test pipeline_prepared
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-net --test pipeline_prepared

echo "== replication tests =="
cargo test -q -p bullfrog-repl

echo "== HA tests (fencing, quorum leases, sync replication) =="
cargo test -q -p bullfrog-ha
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-ha

echo "== engine + migration suites under snapshot isolation =="
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-engine
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-core
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-repl
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-net --test si_conflicts

echo "== cluster suites (both engine modes) =="
cargo test -q -p bullfrog-cluster
BULLFROG_ENGINE_MODE=si cargo test -q -p bullfrog-cluster

echo "== loadgen smoke (snapshot isolation, bounded) =="
timeout 10 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --engine-mode si --clients 32 --accounts 128 --ops 5 --seed 42

echo "== loadgen smoke (loopback, fixed seed, bounded) =="
timeout 10 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --clients 32 --accounts 128 --ops 5 --seed 42

echo "== loadgen high-connection smoke (readiness poller, zero dropped sessions) =="
# ~2k mostly-idle connections (4k fds across the serve-only child and the
# client process) fits comfortably under common fd limits; raise ours if
# the shell allows, and proceed on whatever we have.
ulimit -n 16384 2>/dev/null || true
timeout 60 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --connections 2000 --clients 16 --ops 8 --seed 42 --prepared --pipeline \
  | tee /tmp/bf-net-smoke.log
# The parked herd must not drag tail latency into pathology: p99 over
# prepared+pipelined loopback point reads stays well under 50ms even on
# a loaded single-core CI box.
P99_US=$(sed -n 's/.* p99 \([0-9]*\)us .*/\1/p' /tmp/bf-net-smoke.log)
test -n "$P99_US" && test "$P99_US" -lt 50000

echo "== loadgen smoke (file-backed WAL, async commit) =="
timeout 10 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --clients 32 --accounts 128 --ops 5 --seed 42 \
  --commit-mode nowait --wal-dir "$(mktemp -d)"

echo "== loadgen smoke (live replica, equivalence verified) =="
timeout 30 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --clients 16 --accounts 128 --ops 5 --seed 42 --replica

echo "== repld two-process loopback smoke (zero lag after drain) =="
REPLD=target/release/repld
LOADGEN=target/release/loadgen
REPL_DIR="$(mktemp -d)"
PRIMARY=127.0.0.1:7788
REPLICA=127.0.0.1:7789
cleanup() { kill "${PRIMARY_PID:-}" "${REPLICA_PID:-}" 2>/dev/null || true; rm -rf "$REPL_DIR"; }
trap cleanup EXIT
"$REPLD" primary --listen "$PRIMARY" --wal-dir "$REPL_DIR" &
PRIMARY_PID=$!
sleep 0.5
"$REPLD" replica --listen "$REPLICA" --primary "$PRIMARY" &
REPLICA_PID=$!
sleep 0.5
timeout 30 "$LOADGEN" --addr "$PRIMARY" --clients 8 --accounts 64 --ops 5 --seed 42
timeout 30 "$REPLD" wait-zero-lag --addr "$REPLICA" --timeout-secs 25
"$REPLD" status --addr "$REPLICA" --full | grep -q '^repl.role_replica = 1$'
"$REPLD" status --addr "$REPLICA" | grep -q '^role=replica '
# The primary ran the loadgen commits, so its one-liner must carry
# nonzero commit-latency figures from the METRICS snapshot.
PSTATUS="$("$REPLD" status --addr "$PRIMARY")"
echo "$PSTATUS" | grep -q ' commit_p99_us=[1-9]'
"$REPLD" shutdown --addr "$REPLICA"
"$REPLD" shutdown --addr "$PRIMARY"
wait "$PRIMARY_PID" "$REPLICA_PID"
trap - EXIT
cleanup

echo "== HA failover smoke (SIGKILL primary mid-migration, zero lost acked commits) =="
timeout 90 "$LOADGEN" --failover --clients 8 --accounts 256 --ops 5 --seed 42

echo "== loadgen 3-node cluster smoke (mid-traffic flips, exchange, oracle equality) =="
timeout 60 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --cluster 3 --clients 16 --accounts 120 --owners 8 --ops 5 --seed 42
timeout 60 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --engine-mode si --cluster 3 --clients 16 --accounts 120 --owners 8 --ops 5 --seed 42

echo "== clusterd three-process loopback smoke =="
CLUSTERD=target/release/clusterd
N1=127.0.0.1:7791
N2=127.0.0.1:7792
N3=127.0.0.1:7793
NODES="$N1,$N2,$N3"
ccleanup() { kill "${N1_PID:-}" "${N2_PID:-}" "${N3_PID:-}" 2>/dev/null || true; }
trap ccleanup EXIT
"$CLUSTERD" node --listen "$N1" & N1_PID=$!
"$CLUSTERD" node --listen "$N2" & N2_PID=$!
"$CLUSTERD" node --listen "$N3" & N3_PID=$!
sleep 0.5
"$CLUSTERD" init --nodes "$NODES"
"$CLUSTERD" exec --nodes "$NODES" \
  --sql "CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))"
timeout 60 "$CLUSTERD" migrate --nodes "$NODES" --finalize-drop \
  --sql "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) PRIMARY KEY (id)"
# Capture the full status (a bare `| grep -q` closes the pipe at first
# match) and assert both the node count and the cluster-merged latency
# one-liner sourced from each node's METRICS snapshot.
CSTATUS="$("$CLUSTERD" status --nodes "$NODES")"
echo "$CSTATUS" | grep -q '^cluster.nodes = 3$'
echo "$CSTATUS" | grep -q '^latency: commit_p50_us='
"$CLUSTERD" shutdown --nodes "$NODES"
wait "$N1_PID" "$N2_PID" "$N3_PID"
trap - EXIT
ccleanup

echo "== cluster scale bench (machine-readable JSON) =="
BENCH_CLUSTER_JSON="$PWD/target/BENCH_cluster.json" \
  timeout 120 cargo bench -q -p bullfrog-bench --bench cluster_scale
grep -q '"bench": "cluster_scale"' target/BENCH_cluster.json

echo "== net protocol bench (QUERY vs prepared vs pipelined, machine-readable JSON) =="
BENCH_NET_JSON="$PWD/target/BENCH_net.json" \
  timeout 120 cargo bench -q -p bullfrog-bench --bench micro_net
grep -q '"bench": "net"' target/BENCH_net.json
grep -q '"obs_overhead_pct"' target/BENCH_net.json

echo "== obs crate (histogram proptests, registry, tracer) =="
cargo test -q -p bullfrog-obs

echo "== obs timeline smoke (both engine modes, per-second p50/p99 across migrations) =="
BENCH_OBS_JSON="$PWD/target/BENCH_obs.json" \
  timeout 60 cargo run --release -q -p bullfrog-ha --bin loadgen -- \
  --timeline --clients 8 --accounts 128 --owners 8 --ops 5 --seed 42
grep -q '"bench": "obs_timeline"' target/BENCH_obs.json
grep -q '"mode": "2pl"' target/BENCH_obs.json
grep -q '"mode": "si"' target/BENCH_obs.json
# The loadgen run self-asserts a nonzero migration-window p99 per mode;
# check the emitted JSON carries the figures (and no zero slipped out).
test "$(grep -c '"m1_window_p99_us": 0' target/BENCH_obs.json)" -eq 0
test "$(grep -c '"m2_window_p99_us": 0' target/BENCH_obs.json)" -eq 0
test "$(grep -c '"m1_window_p99_us"' target/BENCH_obs.json)" -eq 2

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "verify: OK"
