#!/usr/bin/env bash
# Tier-1 verification plus style/lint gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "verify: OK"
