//! Property: recovering from a checkpoint image plus the log tail is
//! indistinguishable from replaying the full log — for table contents AND
//! for the committed migration-granule set the trackers are rebuilt from —
//! no matter where the checkpoint cut lands (any transaction boundary) and
//! no matter what mix of inserts/updates/deletes/granules the log holds.

use std::sync::Arc;

use bullfrog::common::{row, ColumnDef, DataType, TableSchema, Value};
use bullfrog::core::recovery::rebuild_trackers;
use bullfrog::engine::checkpoint::CheckpointImage;
use bullfrog::engine::recovery::{replay, replay_with_checkpoint};
use bullfrog::engine::{Database, LockPolicy};
use bullfrog::txn::wal::GranuleKey;
use bullfrog::txn::LogRecord;
use proptest::prelude::*;

/// One logical client transaction in the generated history.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh row keyed by the op index.
    Insert(i64),
    /// Update the row created by op `target` (if it still exists).
    Update { target: usize, val: i64 },
    /// Delete the row created by op `target` (if it still exists).
    Delete { target: usize },
    /// A committed migration transaction marking one granule.
    Granule { stmt: u32, ordinal: u64 },
    /// An aborted transaction — its records must never replay.
    AbortedInsert(i64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..1000).prop_map(Op::Insert),
        ((0usize..40), (0i64..1000)).prop_map(|(target, val)| Op::Update { target, val }),
        (0usize..40).prop_map(|target| Op::Delete { target }),
        ((0u32..2), (0u64..64)).prop_map(|(stmt, ordinal)| Op::Granule { stmt, ordinal }),
        (0i64..1000).prop_map(Op::AbortedInsert),
    ]
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ],
    )
    .with_primary_key(&["id"])
}

/// Runs the ops against a fresh database, returning its full WAL record
/// history. Row ids are disambiguated by op index so inserts never
/// collide on the primary key.
fn run_history(ops: &[Op]) -> (Arc<Database>, Vec<LogRecord>) {
    let db = Arc::new(Database::new());
    db.create_table(schema()).unwrap();
    let mut rids = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(v) => {
                let rid = db
                    .with_txn(|txn| db.insert(txn, "t", row![i as i64, *v]))
                    .unwrap();
                rids.push(Some((i as i64, rid)));
            }
            Op::Update { target, val } => {
                rids.push(None);
                if let Some(Some((id, _))) = rids.get(*target).cloned() {
                    let _ = db.with_txn(|txn| {
                        match db.get_by_pk(txn, "t", &[Value::Int(id)], LockPolicy::Exclusive)? {
                            Some((rid, _)) => db.update(txn, "t", rid, row![id, *val]).map(|_| ()),
                            None => Ok(()),
                        }
                    });
                }
            }
            Op::Delete { target } => {
                rids.push(None);
                if let Some(Some((id, _))) = rids.get(*target).cloned() {
                    let _ = db.with_txn(|txn| {
                        match db.get_by_pk(txn, "t", &[Value::Int(id)], LockPolicy::Exclusive)? {
                            Some((rid, _)) => db.delete(txn, "t", rid).map(|_| ()),
                            None => Ok(()),
                        }
                    });
                }
            }
            Op::Granule { stmt, ordinal } => {
                rids.push(None);
                let mut txn = db.begin();
                txn.push_redo(LogRecord::MigrationGranule {
                    txn: txn.id(),
                    migration: *stmt,
                    granule: GranuleKey::Ordinal(*ordinal),
                });
                db.commit(&mut txn).unwrap();
            }
            Op::AbortedInsert(v) => {
                rids.push(None);
                let mut txn = db.begin();
                db.insert(&mut txn, "t", row![10_000 + i as i64, *v])
                    .unwrap();
                db.abort(&mut txn);
            }
        }
    }
    let records = db.wal().snapshot();
    (db, records)
}

/// Indices one past each Commit/Abort record — the transaction boundaries
/// a checkpoint cut may legally land on (every record batch in this
/// engine is a whole transaction).
fn txn_boundaries(records: &[LogRecord]) -> Vec<usize> {
    let mut cuts = vec![0];
    for (i, r) in records.iter().enumerate() {
        if matches!(r, LogRecord::Commit(_) | LogRecord::Abort(_)) {
            cuts.push(i + 1);
        }
    }
    cuts
}

fn table_contents(db: &Database) -> Vec<(bullfrog::common::RowId, bullfrog::common::Row)> {
    let mut rows = db.select_unlocked("t", None).unwrap();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn checkpoint_plus_tail_equals_full_replay(
        ops in proptest::collection::vec(arb_op(), 1..40),
        cut_sel in 0usize..1000,
    ) {
        let (_src, records) = run_history(&ops);
        let cuts = txn_boundaries(&records);
        let cut = cuts[cut_sel % cuts.len()];

        // Path A: plain full-log replay.
        let full = Database::new();
        full.create_table(schema()).unwrap();
        let full_stats = replay(&full, &records).unwrap();

        // Path B: fold the prefix into a checkpoint image (surviving an
        // encode/decode round trip, as the on-disk sidecar would), then
        // replay image + tail.
        let mut image = CheckpointImage::new();
        image.absorb(&records[..cut], cut as u64);
        let image = CheckpointImage::decode(image.encode()).unwrap();
        let ckpt = Database::new();
        ckpt.create_table(schema()).unwrap();
        let ckpt_stats = replay_with_checkpoint(&ckpt, &image, &records[cut..]).unwrap();

        prop_assert_eq!(table_contents(&full), table_contents(&ckpt));
        prop_assert_eq!(&full_stats.migrated_granules, &ckpt_stats.migrated_granules);

        // The granule set drives tracker rebuild; equal sets must yield
        // equal tracker state (checked via the marked count for each
        // statement id).
        for stmt in 0..2u32 {
            let full_n = full_stats
                .migrated_granules
                .iter()
                .filter(|(s, _)| *s == stmt)
                .count();
            let ckpt_n = ckpt_stats
                .migrated_granules
                .iter()
                .filter(|(s, _)| *s == stmt)
                .count();
            prop_assert_eq!(full_n, ckpt_n);
        }
        // Silence the unused-import warning path: rebuild_trackers is the
        // consumer of this list; its behaviour over equal lists is
        // exercised in tests/crash_recovery.rs.
        let _ = rebuild_trackers(&[], &full_stats.migrated_granules);
    }
}
