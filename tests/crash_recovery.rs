//! Cross-crate crash-recovery test: WAL binary round trip, data replay,
//! tracker rebuild (§3.5), and migration resumption — including the
//! mixed case where some granules were migrated by committed transactions
//! and others were in flight (uncommitted) at the crash.

use std::sync::Arc;

use bullfrog::common::{row, ColumnDef, DataType, TableSchema, Value};
use bullfrog::core::{
    candidates_for, migrate_candidates, BitmapTracker, Bullfrog, BullfrogConfig, ClientAccess,
    Granule, GranuleState, HashTracker, MigrationPlan, MigrationStatement, MigrationStats,
    StatementRuntime, Tracker,
};
use bullfrog::engine::{recovery::replay, Database, LockPolicy};
use bullfrog::query::{AggFunc, Expr, SelectSpec};
use bullfrog::txn::Wal;

fn make_schema(db: &Database) {
    db.create_table(
        TableSchema::new(
            "readings",
            vec![
                ColumnDef::new("r_id", DataType::Int),
                ColumnDef::new("r_sensor", DataType::Int),
                ColumnDef::new("r_value", DataType::Decimal),
            ],
        )
        .with_primary_key(&["r_id"]),
    )
    .unwrap();
}

fn plan() -> MigrationPlan {
    MigrationPlan::new("sensor_totals")
        .with_statement(MigrationStatement::new(
            TableSchema::new(
                "readings_v2",
                vec![
                    ColumnDef::new("r_id", DataType::Int),
                    ColumnDef::new("r_value", DataType::Decimal),
                ],
            )
            .with_primary_key(&["r_id"]),
            SelectSpec::new()
                .from_table("readings", "r")
                .select("r_id", Expr::col("r", "r_id"))
                .select("r_value", Expr::col("r", "r_value")),
        ))
        .with_statement(MigrationStatement::new(
            TableSchema::new(
                "sensor_totals",
                vec![
                    ColumnDef::new("sensor", DataType::Int),
                    ColumnDef::nullable("total", DataType::Decimal),
                ],
            )
            .with_primary_key(&["sensor"]),
            SelectSpec::new()
                .from_table("readings", "r")
                .select("sensor", Expr::col("r", "r_sensor"))
                .select_agg("total", AggFunc::Sum, Expr::col("r", "r_value")),
        ))
}

#[test]
fn crash_recovery_resumes_both_tracker_kinds() {
    // --- before the crash -------------------------------------------------
    let db = Arc::new(Database::new());
    make_schema(&db);
    for i in 0..200i64 {
        db.with_txn(|txn| db.insert(txn, "readings", row![i, i % 8, i * 10]))
            .unwrap();
    }
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: bullfrog::core::BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bf.submit_migration(plan()).unwrap();
    // Migrate part of each statement via client requests.
    for i in 0..60i64 {
        let mut txn = db.begin();
        bf.get_by_pk(
            &mut txn,
            "readings_v2",
            &[Value::Int(i)],
            LockPolicy::Shared,
        )
        .unwrap()
        .unwrap();
        db.commit(&mut txn).unwrap();
    }
    for s in 0..3i64 {
        let mut txn = db.begin();
        bf.get_by_pk(
            &mut txn,
            "sensor_totals",
            &[Value::Int(s)],
            LockPolicy::Shared,
        )
        .unwrap()
        .unwrap();
        db.commit(&mut txn).unwrap();
    }
    let image = db.wal().encode_all();
    drop(bf);
    drop(db);

    // --- after the crash ---------------------------------------------------
    let db = Arc::new(Database::new());
    make_schema(&db);
    let mut recovered_plan = plan();
    // Recreate output tables in the same order (ids must line up).
    db.create_table(recovered_plan.statements[0].output.clone())
        .unwrap();
    db.create_table(recovered_plan.statements[1].output.clone())
        .unwrap();

    let records = Wal::decode_all(image).unwrap();
    let stats = replay(&db, &records).unwrap();
    // Data recovered: 200 source rows, 60 migrated copies, 3 totals.
    assert_eq!(db.table("readings").unwrap().live_count(), 200);
    assert_eq!(db.table("readings_v2").unwrap().live_count(), 60);
    assert_eq!(db.table("sensor_totals").unwrap().live_count(), 3);
    assert_eq!(stats.migrated_granules.len(), 63);

    // Tracker rebuild.
    recovered_plan.resolve(&db).unwrap();
    let cap = db.table("readings").unwrap().heap().ordinal_bound();
    let rts: Vec<Arc<StatementRuntime>> = recovered_plan
        .statements
        .into_iter()
        .enumerate()
        .map(|(i, stmt)| {
            let tracker: Arc<dyn Tracker> = if i == 0 {
                Arc::new(BitmapTracker::new(cap, 1))
            } else {
                Arc::new(HashTracker::new())
            };
            Arc::new(StatementRuntime {
                id: i as u32,
                stmt,
                tracker,
                stats: Arc::new(MigrationStats::new()),
                in_flight: std::sync::atomic::AtomicU64::new(0),
            })
        })
        .collect();
    let applied = bullfrog::core::recovery::rebuild_trackers(&rts, &stats.migrated_granules);
    assert_eq!(applied, 63);
    assert_eq!(rts[0].tracker.migrated_count(), 60);
    assert_eq!(rts[1].tracker.migrated_count(), 3);
    assert_eq!(
        rts[1].tracker.state(&Granule::Group(vec![Value::Int(2)])),
        GranuleState::Migrated
    );
    assert_eq!(
        rts[1].tracker.state(&Granule::Group(vec![Value::Int(5)])),
        GranuleState::NotStarted
    );

    // Resume: the remaining granules migrate exactly once.
    for rt in &rts {
        let pending = candidates_for(&db, rt, None).unwrap();
        migrate_candidates(&db, rt, pending, &Default::default()).unwrap();
    }
    assert_eq!(db.table("readings_v2").unwrap().live_count(), 200);
    assert_eq!(db.table("sensor_totals").unwrap().live_count(), 8);
    // Totals are correct (not double-counted across the crash).
    for (_, r) in db.select_unlocked("sensor_totals", None).unwrap() {
        let s = r[0].as_i64().unwrap();
        let expected: i64 = (0..200).filter(|i| i % 8 == s).map(|i| i * 10).sum();
        assert_eq!(r[1].as_i64().unwrap(), expected, "sensor {s}");
    }
}

#[test]
fn wal_image_survives_byte_round_trip() {
    let db = Arc::new(Database::new());
    make_schema(&db);
    for i in 0..50i64 {
        db.with_txn(|txn| db.insert(txn, "readings", row![i, i % 4, i]))
            .unwrap();
    }
    let image = db.wal().encode_all();
    let records = Wal::decode_all(image.clone()).unwrap();
    assert_eq!(records.len(), db.wal().len());
    // Re-encode equals original image (canonical format).
    let wal2 = Wal::new();
    wal2.append_batch(records);
    assert_eq!(wal2.encode_all(), image);
}

#[test]
fn durable_wal_file_survives_process_style_crash() {
    // Same flow as above but through the on-disk WAL: open a file-backed
    // database, do work, "crash" (drop everything), then recover a fresh
    // database purely from the file — including a torn tail.
    let dir = std::env::temp_dir().join(format!("bullfrog-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.wal");
    let _ = std::fs::remove_file(&path);

    {
        let db = Arc::new(Database::with_wal_file(Default::default(), &path).unwrap());
        make_schema(&db);
        for i in 0..80i64 {
            db.with_txn(|txn| db.insert(txn, "readings", row![i, i % 4, i]))
                .unwrap();
        }
        db.with_txn(|txn| {
            let (rid, _) = db
                .get_by_pk(
                    txn,
                    "readings",
                    &[Value::Int(7)],
                    bullfrog::engine::LockPolicy::Exclusive,
                )?
                .unwrap();
            db.update(txn, "readings", rid, row![7, 3, 777])
        })
        .unwrap();
    } // <- crash: everything in memory is gone

    // Tear the tail to simulate a crash mid-append.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();

    let records = Wal::load_file(&path).unwrap();
    let db = Arc::new(Database::new());
    make_schema(&db);
    replay(&db, &records).unwrap();
    // The torn record belonged to the last commit batch; since its Commit
    // record is gone, the whole last transaction is ignored — atomicity
    // across the crash.
    let t = db.table("readings").unwrap();
    assert_eq!(t.live_count(), 80);
    let (_, r) = t.get_by_pk(&[Value::Int(7)]).unwrap();
    assert_eq!(r, row![7, 3, 7], "torn update transaction must not apply");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_tail_mid_group_commit_batch_keeps_atomicity() {
    // Concurrent committers share fsyncs through the group-commit window;
    // a crash tearing the file mid-batch must still recover every fully
    // durable transaction and drop the torn one whole.
    use bullfrog::txn::WalOptions;
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("bullfrog-group-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("group.wal");
    let _ = std::fs::remove_file(&path);

    const THREADS: i64 = 8;
    const PER_THREAD: i64 = 5;
    {
        let db = Arc::new(
            Database::with_wal_file_opts(
                Default::default(),
                &path,
                WalOptions {
                    group_window: Duration::from_millis(15),
                    // One shard: the tear below slices one flat file.
                    shards: 1,
                },
            )
            .unwrap(),
        );
        make_schema(&db);
        let barrier = Arc::new(std::sync::Barrier::new(THREADS as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        let id = t * 100 + i;
                        db.with_txn(|txn| db.insert(txn, "readings", row![id, t, id * 10]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Group commit observable at the engine level: fewer fsyncs than
        // commit batches, and at least one multi-transaction group.
        let stats = db.wal().stats();
        assert_eq!(stats.flushed_batches, (THREADS * PER_THREAD) as u64);
        assert!(
            stats.flushes < stats.flushed_batches,
            "expected coalescing: {} flushes for {} batches",
            stats.flushes,
            stats.flushed_batches
        );
        assert!(stats.max_group >= 2, "no batch ever grouped: {stats:?}");
    } // <- crash

    // Tear into the middle of the final flushed batch.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    let records = Wal::load_file(&path).unwrap();
    let db = Arc::new(Database::new());
    make_schema(&db);
    let stats = replay(&db, &records).unwrap();
    let t = db.table("readings").unwrap();
    // Each transaction inserted exactly one row, so atomicity means:
    // rows recovered == transactions whose Commit survived the tear, and
    // the torn transaction (its Commit was cut) is dropped entirely.
    assert_eq!(t.live_count(), stats.committed_txns);
    assert!(
        stats.committed_txns < (THREADS * PER_THREAD) as usize,
        "the tear must have cut at least the final commit"
    );
    // Every surviving row is complete and correct.
    for (_, r) in db.select_unlocked("readings", None).unwrap() {
        let id = r[0].as_i64().unwrap();
        assert_eq!(r, row![id, id / 100, id * 10]);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_truncation_and_file_recovery_restore_tables_and_trackers() {
    // Full durability cycle: work → checkpoint (sidecar + log truncation)
    // → more work in the log tail → crash → recover_from_files. Table
    // contents AND migration-tracker state must come back exactly, with
    // granules merged from both the checkpoint image and the tail.
    use bullfrog::engine::checkpoint::checkpoint_path_for;
    use bullfrog::engine::recovery::recover_from_files;

    let dir = std::env::temp_dir().join(format!("bullfrog-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.wal");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(checkpoint_path_for(&path));

    {
        let db = Arc::new(Database::with_wal_file(Default::default(), &path).unwrap());
        make_schema(&db);
        for i in 0..200i64 {
            db.with_txn(|txn| db.insert(txn, "readings", row![i, i % 8, i * 10]))
                .unwrap();
        }
        let bf = Bullfrog::with_config(
            Arc::clone(&db),
            BullfrogConfig {
                background: bullfrog::core::BackgroundConfig {
                    enabled: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        bf.submit_migration(plan()).unwrap();
        for i in 0..60i64 {
            let mut txn = db.begin();
            bf.get_by_pk(
                &mut txn,
                "readings_v2",
                &[Value::Int(i)],
                LockPolicy::Shared,
            )
            .unwrap()
            .unwrap();
            db.commit(&mut txn).unwrap();
        }
        for s in 0..3i64 {
            let mut txn = db.begin();
            bf.get_by_pk(
                &mut txn,
                "sensor_totals",
                &[Value::Int(s)],
                LockPolicy::Shared,
            )
            .unwrap()
            .unwrap();
            db.commit(&mut txn).unwrap();
        }

        // Checkpoint: committed prefix folded into the sidecar image, log
        // memory bounded by truncation.
        let before = db.wal().resident_records();
        let cstats = db.checkpoint().unwrap();
        assert!(cstats.dropped_records > 0, "nothing truncated: {cstats:?}");
        assert!(db.wal().resident_records() < before);
        assert_eq!(db.wal().len(), cstats.cut_lsn as usize);

        // Post-checkpoint tail: migrate two more totals granules, so the
        // recovered granule set must merge image + tail.
        for s in 3..5i64 {
            let mut txn = db.begin();
            bf.get_by_pk(
                &mut txn,
                "sensor_totals",
                &[Value::Int(s)],
                LockPolicy::Shared,
            )
            .unwrap()
            .unwrap();
            db.commit(&mut txn).unwrap();
        }
    } // <- crash

    let db = Arc::new(Database::new());
    make_schema(&db);
    let mut recovered_plan = plan();
    db.create_table(recovered_plan.statements[0].output.clone())
        .unwrap();
    db.create_table(recovered_plan.statements[1].output.clone())
        .unwrap();
    let stats = recover_from_files(&db, &path, checkpoint_path_for(&path)).unwrap();

    assert_eq!(db.table("readings").unwrap().live_count(), 200);
    assert_eq!(db.table("readings_v2").unwrap().live_count(), 60);
    assert_eq!(db.table("sensor_totals").unwrap().live_count(), 5);
    assert_eq!(stats.migrated_granules.len(), 65);

    // Tracker rebuild from the merged granule list, then exactly-once
    // resumption.
    recovered_plan.resolve(&db).unwrap();
    let cap = db.table("readings").unwrap().heap().ordinal_bound();
    let rts: Vec<Arc<StatementRuntime>> = recovered_plan
        .statements
        .into_iter()
        .enumerate()
        .map(|(i, stmt)| {
            let tracker: Arc<dyn Tracker> = if i == 0 {
                Arc::new(BitmapTracker::new(cap, 1))
            } else {
                Arc::new(HashTracker::new())
            };
            Arc::new(StatementRuntime {
                id: i as u32,
                stmt,
                tracker,
                stats: Arc::new(MigrationStats::new()),
                in_flight: std::sync::atomic::AtomicU64::new(0),
            })
        })
        .collect();
    let applied = bullfrog::core::recovery::rebuild_trackers(&rts, &stats.migrated_granules);
    assert_eq!(applied, 65);
    assert_eq!(rts[0].tracker.migrated_count(), 60);
    assert_eq!(rts[1].tracker.migrated_count(), 5);

    for rt in &rts {
        let pending = candidates_for(&db, rt, None).unwrap();
        migrate_candidates(&db, rt, pending, &Default::default()).unwrap();
    }
    assert_eq!(db.table("readings_v2").unwrap().live_count(), 200);
    assert_eq!(db.table("sensor_totals").unwrap().live_count(), 8);
    for (_, r) in db.select_unlocked("sensor_totals", None).unwrap() {
        let s = r[0].as_i64().unwrap();
        let expected: i64 = (0..200).filter(|i| i % 8 == s).map(|i| i * 10).sum();
        assert_eq!(r[1].as_i64().unwrap(), expected, "sensor {s}");
    }
    std::fs::remove_file(&path).unwrap();
    let _ = std::fs::remove_file(checkpoint_path_for(&path));
}
