//! Integration test of the paper's §2.1 running example, spanning every
//! crate: schema + data (engine/storage), migration spec (query), lazy
//! evolution (core), and the exact predicate-transposition behavior the
//! paper walks through.

use std::sync::Arc;
use std::time::Duration;

use bullfrog::common::{row, CheckExpr, ColumnDef, DataType, Error, Row, TableSchema, Value};
use bullfrog::core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, MigrationCategory, MigrationPlan,
    MigrationStatement,
};
use bullfrog::engine::{Database, LockPolicy};
use bullfrog::query::{transpose, ColRef, Expr, Func, SelectSpec};

fn flights_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "flights",
            vec![
                ColumnDef::new("flightid", DataType::Text),
                ColumnDef::new("source", DataType::Text),
                ColumnDef::new("dest", DataType::Text),
                ColumnDef::new("airlineid", DataType::Text),
                ColumnDef::new("departure_time", DataType::Timestamp),
                ColumnDef::new("arrival_time", DataType::Timestamp),
                ColumnDef::new("capacity", DataType::Int),
            ],
        )
        .with_primary_key(&["flightid"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "flewon",
            vec![
                ColumnDef::new("flightid", DataType::Text),
                ColumnDef::new("flightdate", DataType::Date),
                ColumnDef::new("passenger_count", DataType::Int),
            ],
        )
        .with_primary_key(&["flightid", "flightdate"])
        .with_check("positive_passengers", CheckExpr::gt("passenger_count", 0)),
    )
    .unwrap();
    for a in ["AA", "UA"] {
        for n in [101i64, 102] {
            let fid = format!("{a}{n}");
            db.insert_unlogged(
                "flights",
                row![
                    fid.clone(),
                    "JFK",
                    "SFO",
                    a,
                    Value::Timestamp(8 * 3_600_000_000),
                    Value::Timestamp(14 * 3_600_000_000),
                    180
                ],
            )
            .unwrap();
            for day in 0..20 {
                db.insert_unlogged(
                    "flewon",
                    Row(vec![
                        Value::text(fid.clone()),
                        Value::Date(day),
                        Value::Int(100 + day as i64),
                    ]),
                )
                .unwrap();
            }
        }
    }
    db
}

fn flewoninfo_spec() -> SelectSpec {
    SelectSpec::new()
        .from_table("flights", "f")
        .from_table("flewon", "fi")
        .join_on(ColRef::new("f", "flightid"), ColRef::new("fi", "flightid"))
        .select("fid", Expr::col("f", "flightid"))
        .select("flightdate", Expr::col("fi", "flightdate"))
        .select("passenger_count", Expr::col("fi", "passenger_count"))
        .select(
            "empty_seats",
            Expr::col("f", "capacity").sub(Expr::col("fi", "passenger_count")),
        )
        .select("expected_departure_time", Expr::col("f", "departure_time"))
        .select("actual_departure_time", Expr::null())
}

fn flewoninfo_schema() -> TableSchema {
    TableSchema::new(
        "flewoninfo",
        vec![
            ColumnDef::new("fid", DataType::Text),
            ColumnDef::new("flightdate", DataType::Date),
            ColumnDef::nullable("passenger_count", DataType::Int),
            ColumnDef::nullable("empty_seats", DataType::Int),
            ColumnDef::nullable("expected_departure_time", DataType::Timestamp),
            ColumnDef::nullable("actual_departure_time", DataType::Timestamp),
        ],
    )
    .with_primary_key(&["fid", "flightdate"])
}

/// The paper's exact client request and its predicate movement.
#[test]
fn paper_predicates_reach_both_old_tables() {
    let spec = flewoninfo_spec();
    let pred = Expr::column("fid")
        .eq(Expr::lit("AA101"))
        .and(Expr::Call(Func::ExtractDay, Box::new(Expr::column("flightdate"))).eq(Expr::lit(9)));
    let t = transpose(&spec, Some(&pred));
    // FLIGHTID = 'AA101' lands on both flights and flewon; the EXTRACT
    // lands on flewon only — exactly the PostgreSQL plan in the paper.
    assert_eq!(
        t.filter_for("f").unwrap().to_string(),
        "(f.flightid = 'AA101')"
    );
    let fi = t.filter_for("fi").unwrap().to_string();
    assert!(fi.contains("(fi.flightid = 'AA101')"));
    assert!(fi.contains("EXTRACT(DAY FROM fi.flightdate)"));
    assert!(t.dropped.is_empty());
}

#[test]
fn end_to_end_flights_evolution() {
    let db = flights_db();
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: true,
                start_delay: Duration::from_millis(30),
                batch: 32,
                pause: Duration::ZERO,
                threads: 2,
            },
            ..Default::default()
        },
    );
    let mut plan = MigrationPlan::new("flewoninfo").with_statement(MigrationStatement::new(
        flewoninfo_schema(),
        flewoninfo_spec(),
    ));
    plan.resolve(&db).unwrap();
    // The FK side (flewon) drives; flights is the untracked PK side
    // (§3.6 option 2).
    assert_eq!(plan.statements[0].category(), MigrationCategory::OneToOne);
    let plan = MigrationPlan::new("flewoninfo").with_statement(MigrationStatement::new(
        flewoninfo_schema(),
        flewoninfo_spec(),
    ));
    bf.submit_migration(plan).unwrap();

    // The paper's client request: only AA101/day-9 tuples migrate.
    let pred = Expr::column("fid")
        .eq(Expr::lit("AA101"))
        .and(Expr::Call(Func::ExtractDay, Box::new(Expr::column("flightdate"))).eq(Expr::lit(9)));
    let mut txn = db.begin();
    let rows = bf
        .select(&mut txn, "flewoninfo", Some(&pred), LockPolicy::Shared)
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 1);
    let r = &rows[0].1;
    assert_eq!(r[0], Value::text("AA101"));
    assert_eq!(r[1], Value::Date(8)); // 1970-01-09 → day-of-month 9
    assert_eq!(r[3], Value::Int(180 - 108)); // derived empty_seats
    assert_eq!(r[5], Value::Null); // actual_departure_time starts NULL
    assert_eq!(db.table("flewoninfo").unwrap().live_count(), 1);

    // Backwards-incompatible insert (constraint dropped in the new schema).
    let mut txn = db.begin();
    bf.insert(
        &mut txn,
        "flewoninfo",
        Row(vec![
            Value::text("UA102"),
            Value::Date(99),
            Value::Int(0),
            Value::Int(180),
            Value::Null,
            Value::Null,
        ]),
    )
    .unwrap();
    db.commit(&mut txn).unwrap();

    // Old schema is retired.
    let mut txn = db.begin();
    assert!(matches!(
        bf.select(&mut txn, "flewon", None, LockPolicy::Shared),
        Err(Error::SchemaRetired(_))
    ));
    db.abort(&mut txn);

    // Background completion covers all 80 join rows + our insert.
    assert!(bf.wait_migration_complete(Duration::from_secs(30)));
    assert_eq!(db.table("flewoninfo").unwrap().live_count(), 81);

    // Final state matches the full eager evaluation of the same spec.
    let mut txn = db.begin();
    let eager_rows = bullfrog::engine::exec::execute_spec(
        &db,
        &mut txn,
        &flewoninfo_spec(),
        &Default::default(),
    )
    .unwrap();
    db.commit(&mut txn).unwrap();
    let mut expected: Vec<Row> = eager_rows.rows;
    expected.push(Row(vec![
        Value::text("UA102"),
        Value::Date(99),
        Value::Int(0),
        Value::Int(180),
        Value::Null,
        Value::Null,
    ]));
    expected.sort();
    let mut got: Vec<Row> = db
        .select_unlocked("flewoninfo", None)
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    got.sort();
    assert_eq!(got, expected);
    bf.shutdown_background();
}

/// The worst case the paper calls out: a predicate that cannot be
/// transposed (derived column) widens the migration scope to everything —
/// sound, just not lazy.
#[test]
fn untransposable_predicate_migrates_superset() {
    let db = flights_db();
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let plan = MigrationPlan::new("flewoninfo").with_statement(MigrationStatement::new(
        flewoninfo_schema(),
        flewoninfo_spec(),
    ));
    bf.submit_migration(plan).unwrap();
    let pred = Expr::column("empty_seats").lt(Expr::lit(75));
    let mut txn = db.begin();
    let rows = bf
        .select(&mut txn, "flewoninfo", Some(&pred), LockPolicy::Shared)
        .unwrap();
    db.commit(&mut txn).unwrap();
    // Correct answer...
    assert!(rows.iter().all(|(_, r)| r[3].as_i64().unwrap() < 75));
    assert!(!rows.is_empty());
    // ...at the cost of migrating every tuple.
    assert_eq!(db.table("flewoninfo").unwrap().live_count(), 80);
}
