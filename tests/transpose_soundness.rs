//! Property test of the §2.1 predicate-transposition soundness claim:
//! migrating only the tuples selected by the *transposed* per-table
//! filters always yields every output row the client predicate needs.
//!
//! Formally, for random data, a random client predicate P over the output
//! schema, and the FLEWONINFO-shaped join spec:
//!
//! σ_P( spec(inputs) )  ⊆  spec( inputs filtered by transpose(P) )
//!
//! Dropping un-transposable conjuncts may make the right side *larger*
//! (superset), never smaller.

use std::sync::Arc;

use bullfrog::common::{ColumnDef, DataType, Row, TableSchema, Value};
use bullfrog::engine::exec::{execute_spec, strip_aliases, ExecOptions};
use bullfrog::engine::Database;
use bullfrog::query::{transpose, ColRef, Expr, Scope, SelectSpec};
use proptest::prelude::*;

fn spec() -> SelectSpec {
    SelectSpec::new()
        .from_table("parent", "p")
        .from_table("child", "c")
        .join_on(ColRef::new("p", "pid"), ColRef::new("c", "pid"))
        .select("pid", Expr::col("p", "pid"))
        .select("pval", Expr::col("p", "pval"))
        .select("cval", Expr::col("c", "cval"))
        .select(
            "derived",
            Expr::col("p", "pval").add(Expr::col("c", "cval")),
        )
}

fn build(parents: &[(i64, i64)], children: &[(i64, i64)]) -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "parent",
            vec![
                ColumnDef::new("pid", DataType::Int),
                ColumnDef::new("pval", DataType::Int),
            ],
        )
        .with_primary_key(&["pid"]),
    )
    .unwrap();
    db.create_table(TableSchema::new(
        "child",
        vec![
            ColumnDef::new("pid", DataType::Int),
            ColumnDef::new("cval", DataType::Int),
        ],
    ))
    .unwrap();
    for (pid, pval) in parents {
        db.insert_unlogged("parent", Row(vec![Value::Int(*pid), Value::Int(*pval)]))
            .unwrap();
    }
    for (pid, cval) in children {
        db.insert_unlogged("child", Row(vec![Value::Int(*pid), Value::Int(*cval)]))
            .unwrap();
    }
    db
}

/// A random conjunct over the output columns (some transposable, some —
/// on the derived column — not).
fn arb_conjunct() -> impl Strategy<Value = Expr> {
    let col = prop_oneof![Just("pid"), Just("pval"), Just("cval"), Just("derived"),];
    (col, -10i64..10, 0u8..4).prop_map(|(c, v, op)| {
        let lhs = Expr::column(c);
        let rhs = Expr::lit(v);
        match op {
            0 => lhs.eq(rhs),
            1 => lhs.lt(rhs),
            2 => lhs.ge(rhs),
            _ => lhs.ne(rhs),
        }
    })
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    proptest::collection::vec(arb_conjunct(), 1..4)
        .prop_map(|cs| cs.into_iter().reduce(Expr::and).expect("non-empty"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transposed_filters_are_sound(
        parents in proptest::collection::btree_map(-10i64..10, -10i64..10, 0..12),
        children in proptest::collection::vec((-10i64..10, -10i64..10), 0..24),
        pred in arb_pred(),
    ) {
        let parents: Vec<(i64, i64)> = parents.into_iter().collect();
        let db = build(&parents, &children);
        let spec = spec();

        // Ground truth: full materialization, then filter by P.
        let mut txn = db.begin();
        let full = execute_spec(&db, &mut txn, &spec, &ExecOptions::default()).unwrap();
        db.abort(&mut txn);
        let out_scope = Scope::table("out", &spec.output_names());
        let mut expected: Vec<Row> = full
            .rows
            .iter()
            .filter(|r| {
                let bare = strip_aliases(&pred);
                bare.matches(&out_scope, r).unwrap_or(false)
            })
            .cloned()
            .collect();
        expected.sort();

        // Lazy world: evaluate the spec over inputs filtered by the
        // transposed predicates.
        let transposed = transpose(&spec, Some(&pred));
        let mut opts = ExecOptions::default();
        for (alias, f) in &transposed.per_table {
            opts.extra_filters.insert(alias.clone(), f.clone());
        }
        let mut txn = db.begin();
        let migrated = execute_spec(&db, &mut txn, &spec, &opts).unwrap();
        db.abort(&mut txn);
        let mut migrated_rows = migrated.rows;
        migrated_rows.sort();

        // Soundness: every expected row is present among the migrated set.
        for row in &expected {
            prop_assert!(
                migrated_rows.binary_search(row).is_ok(),
                "row {:?} selected by P but missing from the transposed \
                 migration scope (pred: {}, filters: {:?}, dropped: {:?})",
                row, pred, transposed.per_table, transposed.dropped
            );
        }
    }
}
