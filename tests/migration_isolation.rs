//! Regression tests for migration-read isolation at the flip boundary.
//!
//! The logical flip freezes input tables against *new* writers, but a
//! client transaction that updated an input row *before* the flip may
//! still be in flight while the migration copies data. The engine
//! updates heap pages in place (undo-based), so that straggler's X lock
//! guards an uncommitted value. Migration reads must take S locks and
//! wait the straggler out; an unlocked read would freeze a dirty value
//! into the output table — and if the straggler then aborts, the
//! migrated row is wrong forever (the committed write effectively
//! vanishes, which is exactly the lost-money symptom the TCP load
//! generator caught).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog::common::{row, ColumnDef, DataType, TableSchema, Value};
use bullfrog::core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, MigrationPlan, MigrationStatement,
};
use bullfrog::engine::{Database, DbConfig, LockPolicy};
use bullfrog::query::{AggFunc, Expr, SelectSpec};

const INITIAL: i64 = 1000;
const DIRTY: i64 = 993;

/// A one-row `accounts` table plus a straggler transaction T1 that has
/// already updated the row (holding its X lock over the dirty heap
/// value) when the migration is submitted.
fn straggler_setup() -> (
    Arc<Database>,
    Arc<Bullfrog>,
    bullfrog::txn::Transaction,
    bullfrog::common::RowId,
) {
    // Generous lock timeout: the migration's S-lock wait must outlive
    // the straggler, not race its own deadlock-avoidance abort.
    let db = Arc::new(Database::with_config(DbConfig {
        lock_timeout: Duration::from_secs(5),
        ..DbConfig::default()
    }));
    db.create_table(
        TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("balance", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    let rid = db.insert_unlogged("accounts", row![1, INITIAL]).unwrap();

    let mut t1 = db.begin();
    db.update(&mut t1, "accounts", rid, row![1, DIRTY]).unwrap();

    // Background migration off: the only thing that can copy the row is
    // the lazy path triggered by our own read below.
    let bf = Arc::new(Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..BackgroundConfig::default()
            },
            ..BullfrogConfig::default()
        },
    ));
    let spec = SelectSpec::new()
        .from_table("accounts", "a")
        .select("id", Expr::col("a", "id"))
        .select("balance", Expr::col("a", "balance"));
    let schema = TableSchema::new(
        "accounts_v2",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::nullable("balance", DataType::Int),
        ],
    )
    .with_primary_key(&["id"]);
    bf.submit_migration(
        MigrationPlan::new("accounts_v2").with_statement(MigrationStatement::new(schema, spec)),
    )
    .unwrap();
    (db, bf, t1, rid)
}

/// Reads the single migrated row out of `accounts_v2`, driving the lazy
/// migration in the process.
fn migrated_balance(db: &Database, bf: &Bullfrog) -> i64 {
    let mut txn = db.begin();
    let rows = bf
        .select(&mut txn, "accounts_v2", None, LockPolicy::Shared)
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 1, "exactly one row must have migrated");
    match rows[0].1[1] {
        Value::Int(v) => v,
        ref other => panic!("unexpected balance {other:?}"),
    }
}

/// The straggler aborts: its in-place update is undone, so the
/// migration must copy the original committed value — never the dirty
/// one its X lock was guarding. This is the deterministic reproduction
/// of the dirty read the unlocked migration path had.
#[test]
fn aborted_straggler_write_is_not_migrated() {
    let (db, bf, mut t1, _rid) = straggler_setup();

    let started = Instant::now();
    let db2 = Arc::clone(&db);
    let straggler = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        db2.abort(&mut t1);
    });

    let balance = migrated_balance(&db, &bf);
    straggler.join().unwrap();

    assert_eq!(
        balance, INITIAL,
        "migration copied a dirty value that was later rolled back"
    );
    // The S lock must actually have blocked on the straggler's X lock;
    // an instant return means the read went around the lock manager.
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "migration read did not wait for the in-flight writer"
    );
}

/// Co-maintained plan (unfrozen inputs): a transaction that wrote input
/// rows itself then reads the output table triggers a lazy migration *on
/// its own thread*. The migration transaction must treat the triggering
/// transaction's X locks as compatible (it is suspended, so it can never
/// release them) — without that, the S-lock fix above livelocks the
/// thread against itself: the migration transaction times out on the
/// parent's lock, aborts, retries, forever. This is the TPC-C
/// `order_totals` shape (new-order inserts order lines, then upserts the
/// co-maintained total).
#[test]
fn self_triggered_migration_passes_through_own_locks() {
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("owner", DataType::Text),
                ColumnDef::new("balance", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    db.insert_unlogged("accounts", row![1, "o1", INITIAL])
        .unwrap();
    db.insert_unlogged("accounts", row![2, "o1", INITIAL])
        .unwrap();

    let bf = Arc::new(Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..BackgroundConfig::default()
            },
            ..BullfrogConfig::default()
        },
    ));
    let spec = SelectSpec::new()
        .from_table("accounts", "a")
        .select("owner", Expr::col("a", "owner"))
        .select_agg("total", AggFunc::Sum, Expr::col("a", "balance"));
    let schema = TableSchema::new(
        "owner_totals",
        vec![
            ColumnDef::new("owner", DataType::Text),
            ColumnDef::nullable("total", DataType::Int),
        ],
    )
    .with_primary_key(&["owner"]);
    let mut plan = MigrationPlan::new("owner_totals")
        .with_statement(MigrationStatement::new(schema, spec))
        .backwards_compatible();
    plan.freeze_inputs = false;
    bf.submit_migration(plan).unwrap();

    // The whole scenario is single-threaded; a livelock would hang the
    // test forever, so run it under a watchdog.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let db2 = Arc::clone(&db);
    let bf2 = Arc::clone(&bf);
    std::thread::spawn(move || {
        let mut txn = db2.begin();
        // Write an input row of group o1 — X locks held by this txn.
        bf2.insert(&mut txn, "accounts", row![3, "o1", 500])
            .unwrap();
        // Reading the group's output row lazily migrates granule o1,
        // whose input rows include the one this very transaction just
        // wrote. Per the co-maintenance contract the migration folds the
        // transaction's own (uncommitted) write into the total.
        let pred = Expr::column("owner").eq(Expr::lit("o1"));
        let rows = bf2
            .select(&mut txn, "owner_totals", Some(&pred), LockPolicy::Shared)
            .unwrap();
        db2.commit(&mut txn).unwrap();
        done_tx.send(rows).unwrap();
    });
    let rows = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("lazy migration livelocked against its own transaction");
    assert_eq!(rows.len(), 1, "one output row for group o1");
    assert_eq!(
        rows[0].1[1],
        Value::Int(2 * INITIAL + 500),
        "the group total folds the transaction's own write"
    );
}

/// The straggler commits: now its value is the one truth, and the
/// migration (after waiting out the X lock) must copy it.
#[test]
fn committed_straggler_write_is_migrated() {
    let (db, bf, mut t1, _rid) = straggler_setup();

    let db2 = Arc::clone(&db);
    let straggler = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        db2.commit(&mut t1).unwrap();
    });

    let balance = migrated_balance(&db, &bf);
    straggler.join().unwrap();

    assert_eq!(
        balance, DIRTY,
        "migration must see the straggler's committed value"
    );
}
