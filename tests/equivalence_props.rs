//! Property tests of the core guarantee: for ANY data, ANY supported
//! migration shape, ANY interleaving of client accesses and abort
//! injections, lazy migration ends in exactly the state eager evaluation
//! of the same statement produces — nothing lost, nothing duplicated.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bullfrog::common::{row, ColumnDef, DataType, Row, TableSchema};
use bullfrog::core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, MigrationPlan, MigrationStatement,
};
use bullfrog::engine::exec::{execute_spec, ExecOptions};
use bullfrog::engine::{Database, LockPolicy};
use bullfrog::query::{AggFunc, ColRef, Expr, SelectSpec};
use proptest::prelude::*;

/// Which migration shape to exercise.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Copy,       // 1:1 bitmap, derived column
    GroupBy,    // n:1 hashmap
    FkJoin,     // 1:1 bitmap driving the FK side
    ManyToMany, // n:n hashmap on the join key
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Copy),
        Just(Shape::GroupBy),
        Just(Shape::FkJoin),
        Just(Shape::ManyToMany),
    ]
}

/// Builds a database with `items(id, grp, val)` and `tags(grp, label)`.
fn build_db(rows: &[(i64, i64, i64)], tags: &[(i64, String)]) -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
                ColumnDef::new("val", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "tags",
            vec![
                ColumnDef::new("grp", DataType::Int),
                ColumnDef::new("label", DataType::Text),
            ],
        )
        .with_primary_key(&["grp"]),
    )
    .unwrap();
    // A non-unique tag table for the many-to-many case.
    db.create_table(TableSchema::new(
        "multi_tags",
        vec![
            ColumnDef::new("grp", DataType::Int),
            ColumnDef::new("label", DataType::Text),
        ],
    ))
    .unwrap();
    for (id, grp, val) in rows {
        db.insert_unlogged("items", row![*id, *grp, *val]).unwrap();
    }
    for (grp, label) in tags {
        db.insert_unlogged("tags", row![*grp, label.clone()])
            .unwrap();
        // Two multi-tag rows per group → genuine n:n fan-out.
        db.insert_unlogged("multi_tags", row![*grp, format!("{label}-a")])
            .unwrap();
        db.insert_unlogged("multi_tags", row![*grp, format!("{label}-b")])
            .unwrap();
    }
    db
}

fn statement(shape: Shape) -> MigrationStatement {
    match shape {
        Shape::Copy => MigrationStatement::new(
            TableSchema::new(
                "out",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("doubled", DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
            SelectSpec::new()
                .from_table("items", "i")
                .select("id", Expr::col("i", "id"))
                .select("doubled", Expr::col("i", "val").mul(Expr::lit(2))),
        ),
        Shape::GroupBy => MigrationStatement::new(
            TableSchema::new(
                "out",
                vec![
                    ColumnDef::new("grp", DataType::Int),
                    ColumnDef::nullable("total", DataType::Int),
                    ColumnDef::nullable("n", DataType::Int),
                ],
            )
            .with_primary_key(&["grp"]),
            SelectSpec::new()
                .from_table("items", "i")
                .select("grp", Expr::col("i", "grp"))
                .select_agg("total", AggFunc::Sum, Expr::col("i", "val"))
                .select_agg("n", AggFunc::Count, Expr::lit(1)),
        ),
        Shape::FkJoin => MigrationStatement::new(
            TableSchema::new(
                "out",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("label", DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
            SelectSpec::new()
                .from_table("items", "i")
                .from_table("tags", "t")
                .join_on(ColRef::new("i", "grp"), ColRef::new("t", "grp"))
                .select("id", Expr::col("i", "id"))
                .select("label", Expr::col("t", "label")),
        ),
        Shape::ManyToMany => MigrationStatement::new(
            TableSchema::new(
                "out",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("label", DataType::Text),
                ],
            )
            .with_primary_key(&["id", "label"]),
            SelectSpec::new()
                .from_table("items", "i")
                .from_table("multi_tags", "t")
                .join_on(ColRef::new("i", "grp"), ColRef::new("t", "grp"))
                .select("id", Expr::col("i", "id"))
                .select("label", Expr::col("t", "label")),
        ),
    }
}

fn eager_expected(db: &Database, shape: Shape) -> Vec<Row> {
    let stmt = statement(shape);
    let mut txn = db.begin();
    let out = execute_spec(db, &mut txn, &stmt.spec, &ExecOptions::default()).unwrap();
    db.abort(&mut txn);
    let mut rows = out.rows;
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lazy_final_state_equals_eager(
        shape in arb_shape(),
        n_rows in 0usize..60,
        raw in proptest::collection::vec((0i64..8, -50i64..50), 0..60),
        accesses in proptest::collection::vec((0i64..70, prop::bool::ANY), 0..20),
        abort_every in 0u64..4,
    ) {
        // Distinct ids, random groups/values.
        let rows: Vec<(i64, i64, i64)> = raw
            .iter()
            .take(n_rows)
            .enumerate()
            .map(|(i, (g, v))| (i as i64, *g, *v))
            .collect();
        let tags: Vec<(i64, String)> = (0..8).map(|g| (g, format!("tag{g}"))).collect();
        let db = build_db(&rows, &tags);
        let expected = eager_expected(&db, shape);

        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let bf = Bullfrog::with_config(
            Arc::clone(&db),
            BullfrogConfig {
                failpoint: if abort_every == 0 {
                    None
                } else {
                    Some(Arc::new(move || {
                        c2.fetch_add(1, Ordering::Relaxed).is_multiple_of(abort_every + 1)
                    }))
                },
                background: BackgroundConfig {
                    enabled: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        bf.submit_migration(
            MigrationPlan::new("prop").with_statement(statement(shape)),
        ).unwrap();

        // Random client accesses (point predicates on the first output
        // column, mixing selects and re-selects).
        for (key, wide) in &accesses {
            let pred = if *wide {
                // A range: touches several granules at once.
                Expr::column(match shape { Shape::GroupBy => "grp", _ => "id" })
                    .le(Expr::lit(*key))
            } else {
                Expr::column(match shape { Shape::GroupBy => "grp", _ => "id" })
                    .eq(Expr::lit(*key))
            };
            let mut txn = db.begin();
            let got = bf.select(&mut txn, "out", Some(&pred), LockPolicy::Shared);
            db.commit(&mut txn).unwrap();
            prop_assert!(got.is_ok(), "select failed: {:?}", got.err());
        }

        // Finish everything (stand-in for background threads).
        bf.ensure_migrated("out", None).unwrap();

        let mut got: Vec<Row> = db
            .select_unlocked("out", None)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }
}
