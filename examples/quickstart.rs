//! Quickstart: the paper's §2.1 airline example, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the FLIGHTS/FLEWON schema, submits the backwards-incompatible
//! FLEWONINFO migration (rename + derived column + dropped CHECK
//! constraint), and shows that:
//!
//! 1. the logical switch is instant — the new table answers queries
//!    immediately while physically empty;
//! 2. a client query migrates exactly the tuples its predicate needs;
//! 3. the dropped constraint is really gone (a zero-passenger flight —
//!    packages during a pandemic — inserts fine);
//! 4. background threads finish the rest, after which the old schema can
//!    be dropped.

use std::sync::Arc;
use std::time::Duration;

use bullfrog::common::{row, CheckExpr, ColumnDef, DataType, Row, TableSchema, Value};
use bullfrog::core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, MigrationPlan, MigrationStatement,
};
use bullfrog::engine::{Database, LockPolicy};
use bullfrog::query::{ColRef, Expr, Func, SelectSpec};

fn main() {
    // --- the old schema -------------------------------------------------
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "flights",
            vec![
                ColumnDef::new("flightid", DataType::Text),
                ColumnDef::new("source", DataType::Text),
                ColumnDef::new("dest", DataType::Text),
                ColumnDef::new("airlineid", DataType::Text),
                ColumnDef::new("departure_time", DataType::Timestamp),
                ColumnDef::new("arrival_time", DataType::Timestamp),
                ColumnDef::new("capacity", DataType::Int),
            ],
        )
        .with_primary_key(&["flightid"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "flewon",
            vec![
                ColumnDef::new("flightid", DataType::Text),
                ColumnDef::new("flightdate", DataType::Date),
                ColumnDef::new("passenger_count", DataType::Int),
            ],
        )
        .with_primary_key(&["flightid", "flightdate"])
        // The constraint the migration will drop.
        .with_check("positive_passengers", CheckExpr::gt("passenger_count", 0)),
    )
    .unwrap();

    let airlines = ["AA", "UA", "DL"];
    for (i, airline) in airlines.iter().enumerate() {
        for n in 100..110 {
            let fid = format!("{airline}{n}");
            db.insert_unlogged(
                "flights",
                row![
                    fid.clone(),
                    "JFK",
                    "SFO",
                    *airline,
                    Value::Timestamp((i as i64 + 8) * 3_600_000_000),
                    Value::Timestamp((i as i64 + 14) * 3_600_000_000),
                    180
                ],
            )
            .unwrap();
            for day in 1..=30 {
                db.insert_unlogged(
                    "flewon",
                    Row(vec![
                        Value::text(fid.clone()),
                        Value::Date(day),
                        Value::Int(100 + day as i64),
                    ]),
                )
                .unwrap();
            }
        }
    }
    println!(
        "old schema loaded: {} flights, {} flewon rows",
        db.table("flights").unwrap().live_count(),
        db.table("flewon").unwrap().live_count()
    );

    // --- the migration DDL (paper §2.1) ---------------------------------
    // CREATE TABLE FLEWONINFO AS
    //   SELECT f.flightid AS fid, flightdate, passenger_count,
    //          (capacity - passenger_count) AS empty_seats,
    //          departure_time AS expected_departure_time,
    //          NULL AS actual_departure_time, ...
    //   FROM flights f, flewon fi WHERE f.flightid = fi.flightid;
    // (and the PASSENGER_COUNT > 0 constraint is NOT re-declared — dropped.)
    let spec = SelectSpec::new()
        .from_table("flights", "f")
        .from_table("flewon", "fi")
        .join_on(ColRef::new("f", "flightid"), ColRef::new("fi", "flightid"))
        .select("fid", Expr::col("f", "flightid"))
        .select("flightdate", Expr::col("fi", "flightdate"))
        .select("passenger_count", Expr::col("fi", "passenger_count"))
        .select(
            "empty_seats",
            Expr::col("f", "capacity").sub(Expr::col("fi", "passenger_count")),
        )
        .select("expected_departure_time", Expr::col("f", "departure_time"))
        .select("actual_departure_time", Expr::null())
        .select("expected_arrival_time", Expr::col("f", "arrival_time"))
        .select("actual_arrival_time", Expr::null());
    let flewoninfo = TableSchema::new(
        "flewoninfo",
        vec![
            ColumnDef::new("fid", DataType::Text),
            ColumnDef::new("flightdate", DataType::Date),
            ColumnDef::nullable("passenger_count", DataType::Int),
            ColumnDef::nullable("empty_seats", DataType::Int),
            ColumnDef::nullable("expected_departure_time", DataType::Timestamp),
            ColumnDef::nullable("actual_departure_time", DataType::Timestamp),
            ColumnDef::nullable("expected_arrival_time", DataType::Timestamp),
            ColumnDef::nullable("actual_arrival_time", DataType::Timestamp),
        ],
    )
    .with_primary_key(&["fid", "flightdate"]);

    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: true,
                start_delay: Duration::from_millis(200),
                batch: 64,
                pause: Duration::from_millis(1),
                threads: 2,
            },
            ..Default::default()
        },
    );
    let migration = bf
        .submit_migration(
            MigrationPlan::new("flewoninfo")
                .with_statement(MigrationStatement::new(flewoninfo, spec)),
        )
        .unwrap();
    println!(
        "\nmigration submitted — logical switch done, flewoninfo rows: {}",
        db.table("flewoninfo").unwrap().live_count()
    );

    // --- a client query over the new schema -----------------------------
    // SELECT * FROM flewoninfo WHERE fid = 'AA101'
    //   AND EXTRACT(DAY FROM flightdate) = 9;
    let pred = Expr::column("fid")
        .eq(Expr::lit("AA101"))
        .and(Expr::Call(Func::ExtractDay, Box::new(Expr::column("flightdate"))).eq(Expr::lit(9)));
    let mut txn = db.begin();
    let rows = bf
        .select(&mut txn, "flewoninfo", Some(&pred), LockPolicy::Shared)
        .unwrap();
    db.commit(&mut txn).unwrap();
    println!(
        "client query returned {} row(s); physically migrated so far: {} \
         (only AA101's days — lazy!)",
        rows.len(),
        db.table("flewoninfo").unwrap().live_count()
    );
    for (_, r) in &rows {
        println!(
            "  fid={} date={} passengers={} empty_seats={}",
            r[0], r[1], r[2], r[3]
        );
    }

    // --- the backwards-incompatible part ---------------------------------
    // A zero-passenger (cargo-only) flight violates the OLD check
    // constraint but is legal in the new schema.
    let mut txn = db.begin();
    bf.insert(
        &mut txn,
        "flewoninfo",
        Row(vec![
            Value::text("AA100"),
            Value::Date(31),
            Value::Int(0), // packages, not passengers
            Value::Int(180),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]),
    )
    .unwrap();
    db.commit(&mut txn).unwrap();
    println!("\ninserted a zero-passenger flight — the dropped constraint is gone");

    // Old-schema access is rejected after the big flip.
    let mut txn = db.begin();
    let err = bf
        .select(&mut txn, "flewon", None, LockPolicy::Shared)
        .unwrap_err();
    db.abort(&mut txn);
    println!("old-schema query rejected as expected: {err}");

    // --- background completion -------------------------------------------
    assert!(bf.wait_migration_complete(Duration::from_secs(60)));
    println!(
        "\nbackground migration complete: {} rows in flewoninfo; stats: {}",
        db.table("flewoninfo").unwrap().live_count(),
        migration.stats.summary()
    );
    bf.finalize_migration(true).unwrap();
    println!(
        "old tables dropped; remaining tables: {:?}",
        db.catalog().table_names()
    );
    bf.shutdown_background();
}
