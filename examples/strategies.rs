//! Side-by-side strategy comparison on one migration.
//!
//! ```text
//! cargo run --release --example strategies
//! ```
//!
//! Runs the same aggregation migration (order totals, the paper's §4.2)
//! under all three evolution strategies and prints when clients could use
//! the new schema vs when the physical migration finished — the paper's
//! core trade-off in one table:
//!
//! - **eager**: new schema usable only after the full copy (downtime);
//! - **multi-step**: no downtime, but the new schema arrives *last* —
//!   clients wait for the background copy before they may switch;
//! - **BullFrog**: the new schema is usable immediately; physical
//!   migration completes in the background.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog::core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, EagerMigrator, MultiStepMigrator,
    SchemaVersion,
};
use bullfrog::engine::{Database, DbConfig};
use bullfrog::tpcc::{load, Scenario, TpccScale};

fn fresh() -> Arc<Database> {
    let db = Arc::new(Database::with_config(DbConfig {
        enforce_fk_on_delete: false,
        ..Default::default()
    }));
    let scale = TpccScale {
        warehouses: 1,
        districts_per_warehouse: 10,
        customers_per_district: 100,
        items: 500,
        orders_per_district: 400,
        seed: 1,
    };
    load(&db, &scale).unwrap();
    db
}

fn main() {
    let plan = || Scenario::OrderTotals.plan();
    println!("strategy     | new schema usable | physically complete");
    println!("-------------|-------------------|--------------------");

    // Eager.
    {
        let db = fresh();
        let eager = EagerMigrator::new(Arc::clone(&db));
        let t0 = Instant::now();
        eager.migrate(plan()).unwrap();
        let done = t0.elapsed();
        assert_eq!(eager.version(), SchemaVersion::New);
        println!(
            "eager        | {:>13.0?} | {:>15.0?}   (clients blocked meanwhile)",
            done, done
        );
    }

    // Multi-step.
    {
        let db = fresh();
        let ms = MultiStepMigrator::new(Arc::clone(&db));
        let t0 = Instant::now();
        ms.register(plan()).unwrap();
        assert!(ms.wait_caught_up(Duration::from_secs(120)));
        let done = t0.elapsed();
        println!(
            "multi-step   | {:>13.0?} | {:>15.0?}   (old schema served reads until then)",
            done, done
        );
    }

    // BullFrog.
    {
        let db = fresh();
        let bf = Bullfrog::with_config(
            Arc::clone(&db),
            BullfrogConfig {
                background: BackgroundConfig {
                    enabled: true,
                    start_delay: Duration::from_millis(10),
                    batch: 64,
                    pause: Duration::ZERO,
                    threads: 2,
                },
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        bf.submit_migration(plan()).unwrap();
        let usable = t0.elapsed();
        assert_eq!(bf.version(), SchemaVersion::New);
        assert!(bf.wait_migration_complete(Duration::from_secs(120)));
        let done = t0.elapsed();
        println!(
            "bullfrog     | {:>13.0?} | {:>15.0?}   (lazy + background, zero downtime)",
            usable, done
        );
        bf.shutdown_background();
    }
}
