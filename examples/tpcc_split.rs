//! TPC-C under a live table-split migration (the paper's §4.1 scenario).
//!
//! ```text
//! cargo run --release --example tpcc_split
//! ```
//!
//! Loads a small TPC-C database, runs the standard transaction mix, then
//! submits the customer split mid-stream. The mix keeps running through
//! the flip (new-schema transaction variants take over instantly) while
//! client requests and background threads migrate the customer table
//! cooperatively. Prints per-phase throughput and the migration counters,
//! then verifies the TPC-C consistency conditions and split completeness.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog::core::{BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess};
use bullfrog::engine::{Database, DbConfig};
use bullfrog::tpcc::{checks, load, Driver, Scenario, TpccScale, TxnOutcome};

fn run_phase(
    name: &str,
    access: &dyn ClientAccess,
    driver: &Driver,
    rng: &mut bullfrog::tpcc::TpccRng,
    txns: usize,
) {
    let t0 = Instant::now();
    let mut committed = 0u64;
    for i in 0..txns {
        let kind = driver.pick_kind(rng);
        match driver.run_one(access, rng, kind, i as i64 * 1000) {
            TxnOutcome::Committed | TxnOutcome::UserAbort => committed += 1,
            TxnOutcome::Failed(e) => eprintln!("  ! {kind:?} failed: {e}"),
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "{name}: {committed}/{txns} committed in {secs:.2}s ({:.0} txn/s)",
        committed as f64 / secs
    );
}

fn main() {
    let db = Arc::new(Database::with_config(DbConfig {
        lock_timeout: Duration::from_millis(100),
        enforce_fk_on_delete: false,
        ..Default::default()
    }));
    let scale = TpccScale {
        warehouses: 1,
        districts_per_warehouse: 4,
        customers_per_district: 300,
        items: 200,
        orders_per_district: 100,
        seed: 20260705,
    };
    let mut rng = load(&db, &scale).unwrap();
    println!(
        "TPC-C loaded: {} customers, {} order lines",
        db.table("customer").unwrap().live_count(),
        db.table("order_line").unwrap().live_count()
    );

    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: true,
                start_delay: Duration::from_millis(300),
                batch: 32,
                pause: Duration::from_millis(1),
                threads: 2,
            },
            ..Default::default()
        },
    );
    let driver = Driver::new(scale, Some(Scenario::CustomerSplit));

    run_phase("phase 1 (old schema)", &bf, &driver, &mut rng, 2000);

    // The single-step migration: one call, no advance warning, no downtime.
    let migration = bf.submit_migration(Scenario::CustomerSplit.plan()).unwrap();
    Scenario::CustomerSplit.create_output_indexes(&db).unwrap();
    println!(
        "\nmigration submitted — customer_pub rows now: {}",
        db.table("customer_pub").unwrap().live_count()
    );

    run_phase(
        "phase 2 (new schema, migrating)",
        &bf,
        &driver,
        &mut rng,
        2000,
    );
    println!(
        "  mid-migration: customer_pub={} of {}; stats: {}",
        db.table("customer_pub").unwrap().live_count(),
        db.table("customer").unwrap().live_count(),
        migration.stats.summary()
    );

    assert!(bf.wait_migration_complete(Duration::from_secs(120)));
    println!("\nmigration complete; stats: {}", migration.stats.summary());

    run_phase("phase 3 (new schema, steady)", &bf, &driver, &mut rng, 2000);

    checks::check_warehouse_ytd(&db).unwrap();
    checks::check_district_order_ids(&db).unwrap();
    checks::check_split_complete(&db).unwrap();
    println!("\nall TPC-C consistency checks passed; split is complete and exact");
    bf.shutdown_background();
}
