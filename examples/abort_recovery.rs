//! Abort storms and crash recovery (paper §3.5).
//!
//! ```text
//! cargo run --release --example abort_recovery
//! ```
//!
//! Part 1 injects aborts into one of every three migration transactions
//! while concurrent workers hammer the new schema: the trackers' reset
//! path guarantees that no tuple is lost or migrated twice.
//!
//! Part 2 "crashes" mid-migration: a fresh database replays the WAL
//! (restoring committed data) and rebuilds the migration trackers from the
//! committed `MigrationGranule` records — the §3.5 feature the paper left
//! unimplemented — then finishes the migration from where it stopped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog::common::{row, ColumnDef, DataType, TableSchema, Value};
use bullfrog::core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, GranuleState, MigrationPlan,
    MigrationStatement,
};
use bullfrog::engine::{Database, LockPolicy};
use bullfrog::query::{Expr, SelectSpec};

fn schema_and_data(db: &Database, rows: i64) {
    db.create_table(
        TableSchema::new(
            "events",
            vec![
                ColumnDef::new("e_id", DataType::Int),
                ColumnDef::new("e_kind", DataType::Int),
                ColumnDef::new("e_payload", DataType::Text),
            ],
        )
        .with_primary_key(&["e_id"]),
    )
    .unwrap();
    for i in 0..rows {
        db.with_txn(|txn| db.insert(txn, "events", row![i, i % 5, format!("payload-{i}")]))
            .unwrap();
    }
}

fn plan() -> MigrationPlan {
    MigrationPlan::new("event_copy").with_statement(MigrationStatement::new(
        TableSchema::new(
            "events_v2",
            vec![
                ColumnDef::new("e_id", DataType::Int),
                ColumnDef::new("e_kind", DataType::Int),
                ColumnDef::new("e_tag", DataType::Text),
            ],
        )
        .with_primary_key(&["e_id"]),
        SelectSpec::new()
            .from_table("events", "e")
            .select("e_id", Expr::col("e", "e_id"))
            .select("e_kind", Expr::col("e", "e_kind"))
            .select("e_tag", Expr::col("e", "e_payload")),
    ))
}

fn main() {
    // --- part 1: abort injection ----------------------------------------
    println!("== part 1: exactly-once under an abort storm ==");
    let db = Arc::new(Database::new());
    schema_and_data(&db, 600);
    let aborts = Arc::new(AtomicU64::new(0));
    let a2 = Arc::clone(&aborts);
    let bf = Arc::new(Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            failpoint: Some(Arc::new(move || {
                a2.fetch_add(1, Ordering::Relaxed).is_multiple_of(3)
            })),
            background: BackgroundConfig {
                enabled: true,
                start_delay: Duration::from_millis(50),
                batch: 32,
                pause: Duration::ZERO,
                threads: 2,
            },
            ..Default::default()
        },
    ));
    let migration = bf.submit_migration(plan()).unwrap();
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let bf = Arc::clone(&bf);
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut x = t;
            for _ in 0..300 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let id = ((x >> 33) % 600) as i64;
                let mut txn = db.begin();
                let got = bf
                    .get_by_pk(&mut txn, "events_v2", &[Value::Int(id)], LockPolicy::Shared)
                    .unwrap();
                db.commit(&mut txn).unwrap();
                assert!(got.is_some(), "event {id} must be readable");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(bf.wait_migration_complete(Duration::from_secs(60)));
    println!(
        "  {} rows migrated exactly once despite {} injected aborts — stats: {}",
        db.table("events_v2").unwrap().live_count(),
        bullfrog::core::MigrationStats::get(&migration.stats.migration_aborts),
        migration.stats.summary()
    );
    assert_eq!(db.table("events_v2").unwrap().live_count(), 600);
    bf.shutdown_background();

    // --- part 2: crash + recovery ----------------------------------------
    println!("\n== part 2: crash mid-migration, recover from the WAL ==");
    let db = Arc::new(Database::new());
    schema_and_data(&db, 400);
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bf.submit_migration(plan()).unwrap();
    // Migrate part of the table through client requests, then "crash".
    for id in 0..150i64 {
        let mut txn = db.begin();
        bf.get_by_pk(&mut txn, "events_v2", &[Value::Int(id)], LockPolicy::Shared)
            .unwrap();
        db.commit(&mut txn).unwrap();
    }
    let wal_image = db.wal().encode_all();
    println!(
        "  'crash' with {} of 400 rows migrated; WAL image: {} bytes",
        db.table("events_v2").unwrap().live_count(),
        wal_image.len()
    );
    drop(bf);
    drop(db);

    // Recovery: rebuild catalog, replay the log, rebuild the trackers.
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "events",
            vec![
                ColumnDef::new("e_id", DataType::Int),
                ColumnDef::new("e_kind", DataType::Int),
                ColumnDef::new("e_payload", DataType::Text),
            ],
        )
        .with_primary_key(&["e_id"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "events_v2",
            vec![
                ColumnDef::new("e_id", DataType::Int),
                ColumnDef::new("e_kind", DataType::Int),
                ColumnDef::new("e_tag", DataType::Text),
            ],
        )
        .with_primary_key(&["e_id"]),
    )
    .unwrap();
    let records = bullfrog::txn::Wal::decode_all(wal_image).unwrap();
    let stats = bullfrog::engine::recovery::replay(&db, &records).unwrap();
    println!(
        "  replayed {} records from {} committed txns; {} migrated granules recorded",
        stats.applied,
        stats.committed_txns,
        stats.migrated_granules.len()
    );

    // Resume the migration with rebuilt trackers: re-submit the plan on
    // the recovered catalog (output table already exists from replay, so
    // rebuild trackers through a fresh runtime set).
    let mut resumed = plan();
    resumed.resolve(&db).unwrap();
    let stmt = resumed.statements.remove(0);
    let cap = db.table("events").unwrap().heap().ordinal_bound();
    let rt = Arc::new(bullfrog::core::StatementRuntime {
        id: 0,
        stmt,
        tracker: Arc::new(bullfrog::core::BitmapTracker::new(cap, 1)),
        stats: Arc::new(bullfrog::core::MigrationStats::new()),
        in_flight: std::sync::atomic::AtomicU64::new(0),
    });
    let applied =
        bullfrog::core::recovery::rebuild_trackers(&[Arc::clone(&rt)], &stats.migrated_granules);
    println!("  trackers rebuilt: {applied} granules restored to [0 1]");
    assert_eq!(
        rt.tracker.state(&bullfrog::core::Granule::Ordinal(0)),
        GranuleState::Migrated
    );

    // Finish the remaining granules through the migration loop.
    let pending = bullfrog::core::candidates_for(&db, &rt, None).unwrap();
    bullfrog::core::migrate_candidates(&db, &rt, pending, &Default::default()).unwrap();
    assert_eq!(db.table("events_v2").unwrap().live_count(), 400);
    println!(
        "  migration resumed and finished: {} rows, {} migrated after recovery (150 were already done)",
        db.table("events_v2").unwrap().live_count(),
        bullfrog::core::MigrationStats::get(&rt.stats.rows_migrated)
    );
}
