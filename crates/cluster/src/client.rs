//! The routing cluster client.
//!
//! [`ClusterClient`] carries a cached [`ShardMap`] and one lazily-opened
//! connection per node. Single-key statements go straight to the key's
//! owning node; full scans scatter to every node and gather the rows.
//! The two cluster error codes drive its recovery policy:
//!
//! - `WRONG_SHARD` — the cached map is stale (the node is not the key's
//!   owner under the *current* map). The client re-fetches the map from
//!   the cluster and re-routes; it never blindly retries the same node,
//!   which would loop forever against a moved shard.
//! - `FLIP_PENDING` — a schema flip is in its prepare→commit window (or
//!   exchange hold) over the touched table. The statement is valid and
//!   the node is the right one; the client backs off briefly and
//!   retries in place.

use std::time::Duration;

use bullfrog_common::Value;
use bullfrog_net::{err_code, Client, ClientError, ClientResult, QueryReply, ShardMap};

use crate::coordinator;

/// Attempt cap for one routed statement: map re-fetches, flip-window
/// backoffs, and ordinary retryable errors all consume attempts.
const MAX_ATTEMPTS: usize = 60;

/// Backoff while a flip window is open over the touched table.
const FLIP_BACKOFF: Duration = Duration::from_millis(10);

/// One client endpoint onto the cluster.
pub struct ClusterClient {
    map: ShardMap,
    conns: Vec<Option<Client>>,
    /// `WRONG_SHARD` bounces that triggered a map re-fetch.
    pub wrong_shard_refetches: u64,
    /// `FLIP_PENDING` bounces that triggered an in-place backoff.
    pub flip_pending_backoffs: u64,
}

impl ClusterClient {
    /// Connects via any one node and adopts the shard map it serves.
    pub fn connect(bootstrap: &str) -> ClientResult<ClusterClient> {
        let mut conn = Client::connect(bootstrap)?;
        let map = conn.cluster_get_map()?;
        Ok(ClusterClient::with_map(map))
    }

    /// Builds a client from an explicit map — the map may be stale
    /// (tests use this to exercise the `WRONG_SHARD` recovery path).
    pub fn with_map(map: ShardMap) -> ClusterClient {
        let n = map.nodes.len();
        ClusterClient {
            map,
            conns: (0..n).map(|_| None).collect(),
            wrong_shard_refetches: 0,
            flip_pending_backoffs: 0,
        }
    }

    /// The currently cached shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The node index currently believed to own `key`.
    pub fn node_for_key(&self, key: &[Value]) -> usize {
        self.map.owner_of(key)
    }

    /// The (lazily opened) connection to node `i` — for same-node
    /// transaction brackets (`BEGIN`/…/`COMMIT` must ride one
    /// connection).
    pub fn conn(&mut self, i: usize) -> ClientResult<&mut Client> {
        if self.conns[i].is_none() {
            self.conns[i] = Some(Client::connect(self.map.nodes[i].as_str())?);
        }
        Ok(self.conns[i].as_mut().expect("just opened"))
    }

    /// Re-fetches the shard map from the first reachable node and drops
    /// the per-node connections if the topology changed.
    pub fn refetch_map(&mut self) -> ClientResult<()> {
        let mut last: Option<ClientError> = None;
        for i in 0..self.map.nodes.len() {
            let fetched = match self.conn(i) {
                Ok(conn) => conn.cluster_get_map(),
                Err(e) => Err(e),
            };
            match fetched {
                Ok(map) => {
                    if map.nodes != self.map.nodes {
                        self.conns = (0..map.nodes.len()).map(|_| None).collect();
                    }
                    self.map = map;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("no nodes to fetch a map from".into())))
    }

    /// Routes one single-key statement to the key's owning node,
    /// re-fetching the map on `WRONG_SHARD`, backing off on
    /// `FLIP_PENDING`, and retrying bounded on ordinary retryable
    /// errors (lock timeouts).
    pub fn query_key(&mut self, key: &[Value], sql: &str) -> ClientResult<QueryReply> {
        let mut last: Option<ClientError> = None;
        for _ in 0..MAX_ATTEMPTS {
            let owner = self.map.owner_of(key);
            match self.conn(owner).and_then(|c| c.query(sql)) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    if !self.recover(&e)? {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("zero attempts".into())))
    }

    /// As [`ClusterClient::query_key`] for statements that return an
    /// affected-row count.
    pub fn execute_key(&mut self, key: &[Value], sql: &str) -> ClientResult<u64> {
        match self.query_key(key, sql)? {
            QueryReply::Ok { affected } => Ok(affected),
            QueryReply::Rows { .. } => Err(ClientError::Protocol(
                "expected an OK reply, got a result set".into(),
            )),
        }
    }

    /// Decides whether `e` is recoverable by this client and performs
    /// the recovery step (map re-fetch / backoff). Returns false when
    /// the error must surface to the caller. A dead connection is
    /// dropped so the next attempt reconnects.
    fn recover(&mut self, e: &ClientError) -> ClientResult<bool> {
        match e {
            ClientError::Server { code, .. } if *code == err_code::WRONG_SHARD => {
                self.wrong_shard_refetches += 1;
                self.refetch_map()?;
                Ok(true)
            }
            ClientError::Server { code, .. } if *code == err_code::FLIP_PENDING => {
                self.flip_pending_backoffs += 1;
                std::thread::sleep(FLIP_BACKOFF);
                Ok(true)
            }
            ClientError::Server {
                retryable: true, ..
            } => Ok(true),
            ClientError::Io(_) => {
                // Drop every dead connection; reconnect lazily.
                for conn in &mut self.conns {
                    *conn = None;
                }
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    /// Scatters a scan to every node and gathers the rows (order:
    /// node 0's rows, then node 1's, …). Retries each leg through the
    /// same recovery policy as single-key statements.
    pub fn scatter_rows(
        &mut self,
        sql: &str,
    ) -> ClientResult<(Vec<String>, Vec<bullfrog_common::Row>)> {
        let mut names = Vec::new();
        let mut rows = Vec::new();
        for i in 0..self.map.nodes.len() {
            let (leg_names, mut leg_rows) = self.rows_at(i, sql)?;
            if names.is_empty() {
                names = leg_names;
            }
            rows.append(&mut leg_rows);
        }
        Ok((names, rows))
    }

    /// Runs a scan on one node with the standard recovery policy.
    pub fn rows_at(
        &mut self,
        i: usize,
        sql: &str,
    ) -> ClientResult<(Vec<String>, Vec<bullfrog_common::Row>)> {
        let mut last: Option<ClientError> = None;
        for _ in 0..MAX_ATTEMPTS {
            match self.conn(i).and_then(|c| c.query_rows(sql)) {
                Ok(result) => return Ok(result),
                Err(e) => {
                    if !self.recover(&e)? {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("zero attempts".into())))
    }

    /// Cluster-wide status (every node's counters summed; topology
    /// gauges take the max).
    pub fn aggregate_status(&mut self) -> ClientResult<Vec<(String, i64)>> {
        for i in 0..self.map.nodes.len() {
            self.conn(i)?;
        }
        coordinator::aggregate_status(self.conns.iter_mut().filter_map(|c| c.as_mut()))
    }
}
