//! The cluster flip coordinator.
//!
//! [`Coordinator`] is the admin side of bullfrog-cluster: it holds one
//! BFNET1 connection per node (each marked as a coordinator connection
//! by the first mutating `CLUSTER` sub-op, so its statements bypass
//! shard-ownership and flip-window enforcement) and drives:
//!
//! 1. **Map install** — [`Coordinator::connect`] adopts the map already
//!    installed on node 0 or builds a fresh one from the node list, then
//!    (re)installs it everywhere.
//! 2. **Two-phase flip** — [`Coordinator::migrate`] sends `PREPARE sql`
//!    to every node (staging the DDL and closing the `FLIP_PENDING`
//!    window over the migration's input and output tables), then
//!    `COMMIT` to every node (running the DDL so each partition starts
//!    migrating its local granules lazily). Any prepare failure aborts
//!    the nodes already prepared, so a half-prepared cluster never
//!    commits.
//! 3. **Exchange** — for n:1 migrations the group keys hash by the
//!    *output* primary key, so a node's locally-computed partial
//!    aggregates may belong on other nodes. Once every node's lazy
//!    migration drains ([`Coordinator::wait_all_complete`]),
//!    [`Coordinator::run_exchange`] ships each misplaced partial to its
//!    owner, folds it in ([`fold`]: SUM/COUNT add, MIN/MAX compare),
//!    deletes the source copy, and releases the exchange hold with
//!    `END_EXCHANGE`. The hold keeps clients off the output tables for
//!    the whole read-merge-delete, so the coordinator is single-threaded
//!    on them and the fold needs no cross-node transaction.
//!
//! The commit point of the whole migration is the last node's `COMMIT`:
//! before it, `ABORT` on every node restores the old schema everywhere;
//! after it, the flip is logically done cluster-wide and only physical
//! (lazy, exactly-once per node) work remains.

use std::time::{Duration, Instant};

use bullfrog_common::Value;
use bullfrog_net::{Client, ClientError, ClientResult, ExchangeSpec, ShardMap};
use bullfrog_query::AggFunc;

/// How long [`Coordinator::wait_all_complete`] sleeps between polls.
const POLL: Duration = Duration::from_millis(10);

/// Admin driver holding one coordinator connection per node.
pub struct Coordinator {
    conns: Vec<Client>,
    map: ShardMap,
}

impl Coordinator {
    /// Connects to every node and (re)installs one shard map across the
    /// cluster: the map node 0 already serves if there is one, else a
    /// fresh version-1 map listing `nodes` in order. Re-installing on
    /// every node also marks each connection as a coordinator
    /// connection, which later statements (commit DDL, exchange
    /// read/merge/delete, finalize) rely on.
    pub fn connect(nodes: &[String]) -> ClientResult<Coordinator> {
        if nodes.is_empty() {
            return Err(ClientError::Protocol("empty node list".into()));
        }
        let mut conns = Vec::with_capacity(nodes.len());
        for node in nodes {
            conns.push(Client::connect(node.as_str())?);
        }
        let map = match conns[0].cluster_get_map() {
            Ok(map) => map,
            Err(ClientError::Server { .. }) => ShardMap::new(nodes.to_vec()),
            Err(e) => return Err(e),
        };
        if map.nodes.len() != conns.len() {
            return Err(ClientError::Protocol(format!(
                "installed shard map lists {} nodes but {} were given",
                map.nodes.len(),
                conns.len()
            )));
        }
        for (i, conn) in conns.iter_mut().enumerate() {
            conn.cluster_set_map(i as u32, &map)?;
        }
        Ok(Coordinator { conns, map })
    }

    /// The cluster's shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when the coordinator drives no nodes (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The coordinator connection to node `i`.
    pub fn conn(&mut self, i: usize) -> &mut Client {
        &mut self.conns[i]
    }

    /// Runs one statement on every node (schema DDL like
    /// `CREATE TABLE`, which must exist identically on all partitions).
    /// Returns the summed affected counts.
    pub fn execute_all(&mut self, sql: &str) -> ClientResult<u64> {
        let mut total = 0;
        for conn in &mut self.conns {
            total += conn.execute(sql)?;
        }
        Ok(total)
    }

    /// Drives a two-phase cluster-wide schema flip of migration DDL
    /// (`CREATE TABLE ... AS SELECT ...`). On success every node has
    /// flipped and is lazily migrating its partition; the returned
    /// [`ExchangeSpec`]s (empty for 1:1 migrations) describe the
    /// cross-node aggregate exchange still owed — run
    /// [`Coordinator::wait_all_complete`] then
    /// [`Coordinator::run_exchange`].
    pub fn migrate(&mut self, sql: &str) -> ClientResult<Vec<ExchangeSpec>> {
        let mut specs = Vec::new();
        for i in 0..self.conns.len() {
            match self.conns[i].cluster_prepare(sql) {
                Ok(s) => {
                    if i == 0 {
                        specs = s;
                    }
                }
                Err(e) => {
                    // Roll the prepared prefix back so no node is left
                    // with its tables gated behind a flip that will
                    // never commit.
                    for conn in self.conns[..i].iter_mut() {
                        let _ = conn.cluster_abort();
                    }
                    return Err(e);
                }
            }
        }
        for i in 0..self.conns.len() {
            if let Err(e) = self.conns[i].cluster_commit() {
                // Before any commit succeeded the flip is still
                // abortable everywhere; once node 0 has committed the
                // flip is the cluster's logical state and a straggler
                // failure is surfaced to the operator instead.
                if i == 0 {
                    for conn in self.conns.iter_mut() {
                        let _ = conn.cluster_abort();
                    }
                }
                return Err(e);
            }
        }
        Ok(specs)
    }

    /// Polls every node's `STATUS` until each reports its local lazy
    /// migration drained (`migration.active == 0` or
    /// `migration.complete == 1`). Returns false on timeout.
    pub fn wait_all_complete(&mut self, timeout: Duration) -> ClientResult<bool> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut done = true;
            for conn in &mut self.conns {
                let status = conn.status()?;
                let active = stat(&status, "migration.active");
                let complete = stat(&status, "migration.complete");
                if active != 0 && complete != 1 {
                    done = false;
                    break;
                }
            }
            if done {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            std::thread::sleep(POLL);
        }
    }

    /// Ships misplaced partial aggregates to their owning nodes, folds
    /// them in, and releases the exchange hold on every node. Safe to
    /// call with an empty spec list (1:1 migrations): it just releases
    /// the (already-cleared) hold. Returns the number of partial rows
    /// moved across nodes.
    ///
    /// Must run after [`Coordinator::wait_all_complete`]: the partials
    /// are only complete once every granule of the local migrations has
    /// been migrated.
    pub fn run_exchange(&mut self, specs: &[ExchangeSpec]) -> ClientResult<u64> {
        let mut moved = 0;
        for spec in specs {
            moved += self.exchange_table(spec)?;
        }
        for conn in &mut self.conns {
            conn.cluster_end_exchange()?;
        }
        Ok(moved)
    }

    fn exchange_table(&mut self, spec: &ExchangeSpec) -> ClientResult<u64> {
        let key_n = spec.key_cols.len();
        let mut cols: Vec<String> = spec.key_cols.clone();
        cols.extend(spec.aggs.iter().map(|(name, _)| name.clone()));
        let select_list = cols.join(", ");
        let scan = format!("SELECT {select_list} FROM {}", spec.table);
        let mut moved = 0;
        for source in 0..self.conns.len() {
            let (_, rows) = self.conns[source].query_rows(&scan)?;
            for row in rows {
                let key = &row.0[..key_n];
                let owner = self.map.owner_of(key);
                if owner == source {
                    continue;
                }
                self.merge_partial(owner, spec, &row.0)?;
                let pred = key_predicate(&spec.key_cols, key);
                self.conns[source].execute(&format!("DELETE FROM {} WHERE {pred}", spec.table))?;
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Folds one partial-aggregate row into the owner node's copy:
    /// INSERT when the group is new there, UPDATE with the folded
    /// values when the owner already holds a partial for the key.
    fn merge_partial(
        &mut self,
        owner: usize,
        spec: &ExchangeSpec,
        values: &[Value],
    ) -> ClientResult<()> {
        let key_n = spec.key_cols.len();
        let pred = key_predicate(&spec.key_cols, &values[..key_n]);
        let agg_list = spec
            .aggs
            .iter()
            .map(|(name, _)| name.clone())
            .collect::<Vec<_>>()
            .join(", ");
        let (_, existing) = self.conns[owner].query_rows(&format!(
            "SELECT {agg_list} FROM {} WHERE {pred}",
            spec.table
        ))?;
        match existing.first() {
            None => {
                let mut cols: Vec<String> = spec.key_cols.clone();
                cols.extend(spec.aggs.iter().map(|(name, _)| name.clone()));
                let vals: Vec<String> = values.iter().map(sql_lit).collect();
                self.conns[owner].execute(&format!(
                    "INSERT INTO {} ({}) VALUES ({})",
                    spec.table,
                    cols.join(", "),
                    vals.join(", ")
                ))?;
            }
            Some(held) => {
                let sets: Vec<String> = spec
                    .aggs
                    .iter()
                    .enumerate()
                    .map(|(i, (name, func))| {
                        let folded = fold(*func, &held.0[i], &values[key_n + i]);
                        format!("{name} = {}", sql_lit(&folded))
                    })
                    .collect();
                self.conns[owner].execute(&format!(
                    "UPDATE {} SET {} WHERE {pred}",
                    spec.table,
                    sets.join(", ")
                ))?;
            }
        }
        Ok(())
    }

    /// Runs `FINALIZE MIGRATION [DROP OLD]` on every node.
    pub fn finalize_all(&mut self, drop_old: bool) -> ClientResult<()> {
        let sql = if drop_old {
            "FINALIZE MIGRATION DROP OLD"
        } else {
            "FINALIZE MIGRATION"
        };
        for conn in &mut self.conns {
            conn.execute(sql)?;
        }
        Ok(())
    }

    /// Cluster-wide status: per-node counters summed, except the
    /// topology gauges (`cluster.nodes`, `cluster.shardmap_version`)
    /// which are taken as the maximum, and `cluster.self_index` which is
    /// meaningless aggregated and dropped.
    pub fn aggregate_status(&mut self) -> ClientResult<Vec<(String, i64)>> {
        aggregate_status(self.conns.iter_mut())
    }
}

/// Sums `STATUS` pairs across nodes (topology gauges take the max,
/// `cluster.self_index` is dropped). Shared by [`Coordinator`] and
/// [`ClusterClient`](crate::ClusterClient).
pub fn aggregate_status<'a>(
    conns: impl Iterator<Item = &'a mut Client>,
) -> ClientResult<Vec<(String, i64)>> {
    let mut agg: Vec<(String, i64)> = Vec::new();
    for conn in conns {
        for (key, value) in conn.status()? {
            if key == "cluster.self_index" {
                continue;
            }
            match agg.iter_mut().find(|(k, _)| *k == key) {
                Some((_, held)) => {
                    if key == "cluster.nodes" || key == "cluster.shardmap_version" {
                        *held = (*held).max(value);
                    } else {
                        *held += value;
                    }
                }
                None => agg.push((key, value)),
            }
        }
    }
    Ok(agg)
}

/// Looks a counter up in a `STATUS` reply (0 when absent).
pub fn stat(status: &[(String, i64)], key: &str) -> i64 {
    status
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Folds two partial aggregates of the same group into one. NULL on
/// either side (a group the input partition never saw) yields the other
/// side unchanged — matching how the engine's aggregation treats empty
/// inputs.
pub fn fold(func: AggFunc, a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Null, other) | (other, Value::Null) => other.clone(),
        _ => match func {
            AggFunc::Count | AggFunc::Sum => match (a, b) {
                (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
                (Value::Decimal(x), Value::Decimal(y)) => Value::Decimal(x + y),
                _ => match (a.as_i64(), b.as_i64()) {
                    (Some(x), Some(y)) => Value::Int(x + y),
                    _ => Value::Float(float_of(a) + float_of(b)),
                },
            },
            AggFunc::Min => std::cmp::min(a, b).clone(),
            AggFunc::Max => std::cmp::max(a, b).clone(),
            // plan_flip rejects COUNT DISTINCT at prepare time: distinct
            // sets do not fold from partial counts.
            AggFunc::CountDistinct => {
                unreachable!("COUNT DISTINCT is rejected by cluster prepare")
            }
        },
    }
}

fn float_of(v: &Value) -> f64 {
    match v {
        Value::Int(x) | Value::Decimal(x) => *x as f64,
        Value::Float(x) => *x,
        _ => 0.0,
    }
}

/// Renders an equality predicate over the key columns:
/// `k1 = lit AND k2 = lit`.
fn key_predicate(key_cols: &[String], key: &[Value]) -> String {
    key_cols
        .iter()
        .zip(key)
        .map(|(col, v)| format!("{col} = {}", sql_lit(v)))
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// Renders a [`Value`] as a SQL literal.
pub fn sql_lit(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.into(),
        Value::Int(i) | Value::Decimal(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => d.to_string(),
        Value::Timestamp(t) => t.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_adds_sums_and_compares_extrema() {
        assert_eq!(
            fold(AggFunc::Sum, &Value::Int(3), &Value::Int(4)),
            Value::Int(7)
        );
        assert_eq!(
            fold(AggFunc::Count, &Value::Int(2), &Value::Int(5)),
            Value::Int(7)
        );
        assert_eq!(
            fold(AggFunc::Min, &Value::Int(2), &Value::Int(5)),
            Value::Int(2)
        );
        assert_eq!(
            fold(
                AggFunc::Max,
                &Value::Text("a".into()),
                &Value::Text("b".into())
            ),
            Value::Text("b".into())
        );
        assert_eq!(
            fold(AggFunc::Sum, &Value::Null, &Value::Int(9)),
            Value::Int(9)
        );
    }

    #[test]
    fn sql_literals_escape_quotes() {
        assert_eq!(sql_lit(&Value::Text("o'brien".into())), "'o''brien'");
        assert_eq!(sql_lit(&Value::Int(-4)), "-4");
        assert_eq!(sql_lit(&Value::Null), "NULL");
    }

    #[test]
    fn key_predicates_join_with_and() {
        let cols = vec!["a".to_string(), "b".to_string()];
        let key = [Value::Int(1), Value::Text("x".into())];
        assert_eq!(key_predicate(&cols, &key), "a = 1 AND b = 'x'");
    }
}
