//! clusterd: the multi-process face of bullfrog-cluster.
//!
//! One binary, role per subcommand:
//!
//! - `clusterd node --listen <addr> [--wal-dir <dir>]` — one member
//!   node: a full BFNET1 server over its own partition with cluster
//!   enforcement on (shard ownership, flip windows), engine mode from
//!   `BULLFROG_ENGINE_MODE`. Serves until a remote `SHUTDOWN`.
//! - `clusterd init --nodes <a,b,c>` — install a fresh shard map
//!   listing the nodes in order on every node.
//! - `clusterd exec --nodes <a,b,c> --sql <stmt>` — broadcast one
//!   statement to every node over coordinator connections (schema DDL
//!   like `CREATE TABLE`, which must exist identically everywhere).
//! - `clusterd migrate --nodes <a,b,c> --sql <ddl> [--finalize|--finalize-drop]`
//!   — drive a two-phase cluster flip of migration DDL: prepare
//!   everywhere, commit everywhere, wait for every node's lazy
//!   migration to drain, run the cross-node aggregate exchange, and
//!   optionally finalize.
//! - `clusterd status --nodes <a,b,c>` — print the cluster-aggregated
//!   `STATUS` pairs.
//! - `clusterd shutdown --nodes <a,b,c>` — remote graceful shutdown of
//!   every node.
//!
//! The verify script drives a three-process loopback cluster through
//! this binary; it is also the smallest real deployment shape.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use bullfrog_cluster::Coordinator;
use bullfrog_core::Bullfrog;
use bullfrog_engine::{CheckpointPolicy, Database, DbConfig, EngineMode};
use bullfrog_net::{Client, ClusterMember, Server, ServerConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_exit();
    }
    let cmd = args.remove(0);
    let mut opts = std::collections::HashMap::new();
    let mut flags = std::collections::HashSet::new();
    let mut it = args.into_iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--finalize" | "--finalize-drop" => {
                flags.insert(flag);
            }
            _ => {
                let value = it
                    .next()
                    .unwrap_or_else(|| fail(&format!("{flag} needs a value")));
                opts.insert(flag, value);
            }
        }
    }
    let get = |name: &str| -> String {
        opts.get(name)
            .cloned()
            .unwrap_or_else(|| fail(&format!("{cmd} requires {name}")))
    };
    let nodes = |list: &str| -> Vec<String> {
        let nodes: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if nodes.is_empty() {
            fail("--nodes must list at least one address");
        }
        nodes
    };
    match cmd.as_str() {
        "node" => run_node(&get("--listen"), opts.get("--wal-dir").map(String::as_str)),
        "init" => {
            let nodes = nodes(&get("--nodes"));
            let coord = Coordinator::connect(&nodes)
                .unwrap_or_else(|e| fail(&format!("install shard map: {e}")));
            println!(
                "clusterd: shard map v{} installed on {} nodes",
                coord.map().version,
                coord.len()
            );
        }
        "exec" => {
            let nodes = nodes(&get("--nodes"));
            let mut coord = Coordinator::connect(&nodes)
                .unwrap_or_else(|e| fail(&format!("connect cluster: {e}")));
            let affected = coord
                .execute_all(&get("--sql"))
                .unwrap_or_else(|e| fail(&format!("exec: {e}")));
            println!(
                "clusterd: executed on {} nodes ({affected} rows affected)",
                coord.len()
            );
        }
        "migrate" => run_migrate(
            &nodes(&get("--nodes")),
            &get("--sql"),
            flags.contains("--finalize") || flags.contains("--finalize-drop"),
            flags.contains("--finalize-drop"),
        ),
        "status" => {
            let node_addrs = nodes(&get("--nodes"));
            let mut coord = Coordinator::connect(&node_addrs)
                .unwrap_or_else(|e| fail(&format!("connect cluster: {e}")));
            let status = coord
                .aggregate_status()
                .unwrap_or_else(|e| fail(&format!("STATUS: {e}")));
            // Status output is routinely piped into `grep -q`, which
            // closes the pipe at first match — write through a handle
            // that treats EPIPE as "reader satisfied", not a panic.
            let mut out = std::io::stdout().lock();
            for (k, v) in status {
                if writeln!(out, "{k} = {v}").is_err() {
                    return;
                }
            }
            print_latency_summary(&node_addrs, &mut out);
        }
        "shutdown" => {
            for node in nodes(&get("--nodes")) {
                let mut client = Client::connect(node.as_str())
                    .unwrap_or_else(|e| fail(&format!("connect {node}: {e}")));
                client
                    .shutdown_server()
                    .unwrap_or_else(|e| fail(&format!("SHUTDOWN {node}: {e}")));
                println!("clusterd: {node} shutdown acknowledged");
            }
        }
        _ => usage_exit(),
    }
}

fn run_node(listen: &str, wal_dir: Option<&str>) {
    let config = DbConfig {
        checkpoint_policy: Some(CheckpointPolicy {
            max_resident_records: 4_096,
            max_flushed_bytes: 0,
            poll_interval: Duration::from_millis(50),
        }),
        mode: EngineMode::from_env(),
        ..DbConfig::default()
    };
    let db = Arc::new(match wal_dir {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| fail(&format!("create {}: {e}", dir.display())));
            Database::with_wal_file(config, &dir.join("clusterd.wal"))
                .unwrap_or_else(|e| fail(&format!("open WAL under {}: {e}", dir.display())))
        }
        None => Database::with_config(config),
    });
    let mode = db.config().mode;
    let bf = Arc::new(Bullfrog::new(db));
    let member = Arc::new(ClusterMember::new());
    let mut server = Server::bind(
        listen,
        bf,
        ServerConfig {
            cluster: Some(member),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("bind {listen}: {e}")));
    println!(
        "clusterd: node serving on {} ({} engine, awaiting shard map)",
        server.local_addr(),
        mode.as_str()
    );
    server.wait_shutdown();
    println!("clusterd: node stopped");
}

fn run_migrate(nodes: &[String], sql: &str, finalize: bool, drop_old: bool) {
    let mut coord =
        Coordinator::connect(nodes).unwrap_or_else(|e| fail(&format!("connect cluster: {e}")));
    let specs = coord
        .migrate(sql)
        .unwrap_or_else(|e| fail(&format!("cluster flip: {e}")));
    println!(
        "clusterd: flip committed on {} nodes ({} exchange table(s))",
        coord.len(),
        specs.len()
    );
    let drained = coord
        .wait_all_complete(Duration::from_secs(60))
        .unwrap_or_else(|e| fail(&format!("poll migration: {e}")));
    if !drained {
        fail("timed out waiting for every node's lazy migration to drain");
    }
    let moved = coord
        .run_exchange(&specs)
        .unwrap_or_else(|e| fail(&format!("exchange: {e}")));
    println!("clusterd: lazy migration drained, {moved} partial aggregate(s) exchanged");
    if finalize {
        coord
            .finalize_all(drop_old)
            .unwrap_or_else(|e| fail(&format!("finalize: {e}")));
        println!(
            "clusterd: finalized{}",
            if drop_old { " (old dropped)" } else { "" }
        );
    }
}

/// One summary line of cluster-merged latency truth: commit p50/p99
/// plus the p99 of every flip/exchange phase that has fired, from each
/// node's `METRICS` snapshot merged across the cluster. Best-effort — a
/// node without the opcode is skipped, and a closed stdout (the reader
/// was a `grep -q` that already matched) is not an error.
fn print_latency_summary(nodes: &[String], out: &mut impl Write) {
    let mut merged: Option<bullfrog_obs::MetricsSnapshot> = None;
    for addr in nodes {
        let Ok(mut client) = Client::connect(addr) else {
            continue;
        };
        let Ok(snap) = client.metrics() else { continue };
        match &mut merged {
            Some(m) => m.merge(&snap),
            None => merged = Some(snap),
        }
    }
    let Some(snap) = merged else { return };
    let mut line = String::from("latency:");
    if let Some(h) = snap.histogram("engine.commit_us") {
        line.push_str(&format!(
            " commit_p50_us={} commit_p99_us={}",
            h.quantile(0.50),
            h.quantile(0.99)
        ));
    }
    for (label, name) in [
        ("prepare", "cluster.prepare_us"),
        ("flip", "cluster.commit_us"),
        ("exchange", "cluster.exchange_us"),
        ("granule", "migrate.granule_us"),
        ("finalize", "migrate.finalize_us"),
    ] {
        if let Some(h) = snap.histogram(name) {
            if h.count() > 0 {
                line.push_str(&format!(" {label}_p99_us={}", h.quantile(0.99)));
            }
        }
    }
    let _ = writeln!(out, "{line}");
}

fn fail(msg: &str) -> ! {
    eprintln!("clusterd: {msg}");
    std::process::exit(1);
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: clusterd node --listen <addr> [--wal-dir <dir>]\n\
         \x20      clusterd init --nodes <a,b,c>\n\
         \x20      clusterd exec --nodes <a,b,c> --sql <stmt>\n\
         \x20      clusterd migrate --nodes <a,b,c> --sql <ddl> [--finalize|--finalize-drop]\n\
         \x20      clusterd status --nodes <a,b,c>\n\
         \x20      clusterd shutdown --nodes <a,b,c>"
    );
    std::process::exit(2);
}
