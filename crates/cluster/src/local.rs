//! An in-process loopback cluster.
//!
//! [`LocalCluster`] spins up N full BFNET1 servers on ephemeral
//! 127.0.0.1 ports, each with its own [`Database`] partition and a
//! [`ClusterMember`] enforcing shard ownership and flip windows, and
//! installs one [`ShardMap`] across them. It is the substrate for the
//! cluster integration tests and `loadgen --cluster N`: everything above
//! the TCP socket is identical to a real multi-machine deployment, so
//! the routing, flip, and exchange paths exercised here are the ones
//! `clusterd` serves.

use std::sync::Arc;

use bullfrog_core::Bullfrog;
use bullfrog_engine::{Database, DbConfig, EngineMode};
use bullfrog_net::{ClusterMember, Server, ServerConfig, ShardMap};

/// One member node of a [`LocalCluster`].
pub struct LocalNode {
    server: Server,
    bf: Arc<Bullfrog>,
    member: Arc<ClusterMember>,
}

impl LocalNode {
    /// The node's bound loopback address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The node's engine handle (for white-box assertions in tests).
    pub fn bullfrog(&self) -> &Arc<Bullfrog> {
        &self.bf
    }

    /// The node's cluster membership state.
    pub fn member(&self) -> &Arc<ClusterMember> {
        &self.member
    }
}

/// N in-process nodes under one shard map.
pub struct LocalCluster {
    nodes: Vec<LocalNode>,
}

impl LocalCluster {
    /// Starts `n` nodes in `mode` and installs a fresh version-1
    /// [`ShardMap`] listing their bound addresses on every member.
    pub fn start(n: usize, mode: EngineMode) -> std::io::Result<LocalCluster> {
        assert!(n > 0, "a cluster needs at least one node");
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let db = Arc::new(Database::with_config(DbConfig {
                mode,
                ..DbConfig::default()
            }));
            let bf = Arc::new(Bullfrog::new(db));
            let member = Arc::new(ClusterMember::new());
            let server = Server::bind(
                ("127.0.0.1", 0),
                Arc::clone(&bf),
                ServerConfig {
                    cluster: Some(Arc::clone(&member)),
                    ..ServerConfig::default()
                },
            )?;
            nodes.push(LocalNode { server, bf, member });
        }
        let map = ShardMap::new(nodes.iter().map(|n| n.addr().to_string()).collect());
        for (i, node) in nodes.iter().enumerate() {
            node.member
                .install_map(map.clone(), i)
                .expect("self index is in range by construction");
        }
        Ok(LocalCluster { nodes })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The member nodes.
    pub fn nodes(&self) -> &[LocalNode] {
        &self.nodes
    }

    /// Every node's address, in shard-map order.
    pub fn addrs(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.addr().to_string()).collect()
    }

    /// Gracefully shuts every node down.
    pub fn shutdown(&mut self) {
        for node in &mut self.nodes {
            node.server.shutdown();
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
