//! bullfrog-cluster: shared-nothing distributed lazy migration.
//!
//! BullFrog's contribution is a schema flip that is O(statements)
//! followed by lazy, exactly-once physical migration. This crate scales
//! that across a shared-nothing cluster: every table is hash-partitioned
//! by primary key over N nodes (the [`ShardMap`]), each node runs the
//! ordinary single-node engine over its own partition, and a schema
//! change is *one* logical flip cluster-wide — two-phase (prepare on
//! every node, then commit), after which each node migrates its local
//! granules lazily with the existing 2PL/SI trackers.
//!
//! - [`ClusterClient`] — routing client: single-key DML goes to the
//!   owning node (re-fetching the map on `WRONG_SHARD`, backing off on
//!   `FLIP_PENDING`), scans scatter-gather across all nodes.
//! - [`Coordinator`] — admin-side driver: installs shard maps, runs the
//!   two-phase flip, and for n:1 migrations (GROUP BY whose group keys
//!   hash to other nodes than their input rows) performs the *exchange*:
//!   after every node's local lazy migration drains, partial aggregates
//!   are shipped to each group key's owning node and folded in, then the
//!   hold on the output tables is released.
//! - [`LocalCluster`] — an in-process loopback cluster for tests and
//!   `loadgen --cluster N`.
//! - `clusterd` — the multi-process binary (`node` / `init` / `migrate`
//!   / `status` / `shutdown` subcommands).
//!
//! See `DESIGN.md` (§ bullfrog-cluster) for the protocol and its
//! failure/retry semantics.

pub mod client;
pub mod coordinator;
pub mod local;

pub use bullfrog_net::{ClusterMember, ClusterReq, ExchangeSpec, FlipPlan, ShardMap};
pub use client::ClusterClient;
pub use coordinator::Coordinator;
pub use local::{LocalCluster, LocalNode};
