//! Three-node loopback cluster integration tests.
//!
//! Engine mode comes from `BULLFROG_ENGINE_MODE` (the verify script
//! runs the suite under both `2pl` and `si`), so every test exercises
//! the cluster paths over whichever concurrency control the run
//! selects.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_cluster::{ClusterClient, Coordinator, LocalCluster, ShardMap};
use bullfrog_common::Value;
use bullfrog_core::Bullfrog;
use bullfrog_engine::{Database, DbConfig, EngineMode};
use bullfrog_net::{err_code, Client, ClientError, Server, ServerConfig};

const ACCOUNTS: i64 = 60;
const OWNERS: i64 = 5;
const INITIAL_BALANCE: i64 = 1_000;

fn mode() -> EngineMode {
    EngineMode::from_env()
}

/// Loads the canonical accounts fixture through `run`, one row per
/// statement so the cluster side can route each insert to its owner.
fn load_accounts(mut run: impl FnMut(&str)) {
    for id in 0..ACCOUNTS {
        run(&format!(
            "INSERT INTO accounts VALUES ({id}, 'o{}', {INITIAL_BALANCE})",
            id % OWNERS
        ));
    }
    // A deterministic spread of updates so the migrated data is not
    // just the initial constants.
    for id in 0..ACCOUNTS {
        if id % 3 == 0 {
            run(&format!(
                "UPDATE accounts SET balance = balance + {id} WHERE id = {id}"
            ));
        }
    }
}

const CREATE_ACCOUNTS: &str =
    "CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))";
const MIGRATE_1TO1: &str = "CREATE TABLE accounts_v2 AS \
     (SELECT id, owner, balance FROM accounts) PRIMARY KEY (id)";
const MIGRATE_NTO1: &str = "CREATE TABLE owner_totals AS \
     (SELECT owner, SUM(balance) AS total FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)";

fn sorted(mut rows: Vec<bullfrog_common::Row>) -> Vec<bullfrog_common::Row> {
    rows.sort_by_key(|r| format!("{r:?}"));
    rows
}

/// Runs the whole scenario on one plain (cluster-less) node and
/// returns its final `owner_totals` and `accounts_v2` scans.
fn single_node_oracle() -> (Vec<bullfrog_common::Row>, Vec<bullfrog_common::Row>) {
    let db = Arc::new(Database::with_config(DbConfig {
        mode: mode(),
        ..DbConfig::default()
    }));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Arc::new(Bullfrog::new(db)),
        ServerConfig::default(),
    )
    .expect("bind oracle");
    let mut admin = Client::connect(server.local_addr()).expect("oracle connect");
    admin.execute(CREATE_ACCOUNTS).expect("oracle create");
    load_accounts(|sql| {
        admin.execute(sql).expect("oracle load");
    });
    admin.execute(MIGRATE_1TO1).expect("oracle 1:1 flip");
    wait_complete_single(&mut admin);
    admin
        .execute("FINALIZE MIGRATION DROP OLD")
        .expect("oracle finalize 1:1");
    let (_, v2) = admin
        .query_rows("SELECT id, owner, balance FROM accounts_v2")
        .expect("oracle v2 scan");
    admin.execute(MIGRATE_NTO1).expect("oracle n:1 flip");
    wait_complete_single(&mut admin);
    admin
        .execute("FINALIZE MIGRATION")
        .expect("oracle finalize n:1");
    let (_, totals) = admin
        .query_rows("SELECT owner, total FROM owner_totals")
        .expect("oracle totals scan");
    server.shutdown();
    (sorted(totals), sorted(v2))
}

fn wait_complete_single(admin: &mut Client) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let status = admin.status().expect("status");
        let get = |k: &str| {
            status
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        if get("migration.active") == 0 || get("migration.complete") == 1 {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "single-node migration never drained"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The tentpole end-to-end: a 3-node cluster runs a mid-life 1:1
/// migration and then a cross-node n:1 GROUP BY migration (with the
/// aggregate exchange), and the final scatter-gathered scans are
/// byte-identical to a single node running the same scenario.
#[test]
fn three_node_scan_matches_single_node_oracle() {
    let cluster = LocalCluster::start(3, mode()).expect("start cluster");
    let mut coord = Coordinator::connect(&cluster.addrs()).expect("coordinator");
    coord
        .execute_all(CREATE_ACCOUNTS)
        .expect("create everywhere");

    let mut client = ClusterClient::connect(&cluster.addrs()[0]).expect("routing client");
    load_accounts(|sql| {
        // Route each single-key statement to its owning node. The key
        // is the account id for both the insert and the update.
        let id: i64 = sql
            .split(|c: char| !c.is_ascii_digit())
            .find(|s| !s.is_empty())
            .expect("statement embeds an id")
            .parse()
            .expect("numeric id");
        let affected = client
            .execute_key(&[Value::Int(id)], sql)
            .expect("routed statement");
        assert!(affected >= 1, "routed statement matched nothing: {sql}");
    });

    // Every partition holds only its own keys: the scatter-gathered
    // count is the total, and no single node holds everything.
    let (_, all) = client
        .scatter_rows("SELECT id FROM accounts")
        .expect("scatter count");
    assert_eq!(all.len() as i64, ACCOUNTS);
    for node in cluster.nodes() {
        let mut one = Client::connect(node.addr()).expect("node connect");
        let (_, local) = one
            .query_rows("SELECT id FROM accounts")
            .expect("local scan");
        assert!(
            (local.len() as i64) < ACCOUNTS,
            "one node holds every row — not partitioned"
        );
    }

    // 1:1 flip across the cluster.
    let specs = coord.migrate(MIGRATE_1TO1).expect("1:1 flip");
    assert!(specs.is_empty(), "1:1 migration owes no exchange");
    assert!(
        coord
            .wait_all_complete(Duration::from_secs(30))
            .expect("poll"),
        "1:1 lazy migration never drained on every node"
    );
    coord.run_exchange(&specs).expect("release hold");
    coord.finalize_all(true).expect("finalize 1:1");

    let (_, v2) = client
        .scatter_rows("SELECT id, owner, balance FROM accounts_v2")
        .expect("scatter v2");

    // n:1 flip: group keys hash by owner, so most partials land on the
    // wrong node and the exchange must move them.
    let specs = coord.migrate(MIGRATE_NTO1).expect("n:1 flip");
    assert_eq!(specs.len(), 1, "one aggregate output table");
    assert_eq!(specs[0].table, "owner_totals");
    assert_eq!(specs[0].key_cols, vec!["owner".to_string()]);
    assert!(
        coord
            .wait_all_complete(Duration::from_secs(30))
            .expect("poll"),
        "n:1 lazy migration never drained on every node"
    );
    let moved = coord.run_exchange(&specs).expect("exchange");
    assert!(moved > 0, "a 3-node GROUP BY must move some partials");
    coord.finalize_all(false).expect("finalize n:1");

    let (_, totals) = client
        .scatter_rows("SELECT owner, total FROM owner_totals")
        .expect("scatter totals");
    assert_eq!(totals.len() as i64, OWNERS, "one merged group per owner");

    // Each group must live on exactly the node its key hashes to. (An
    // unkeyed scan per node: keyed SELECTs for groups owned elsewhere
    // would themselves bounce with WRONG_SHARD — the enforcement under
    // test.)
    for (i, node) in cluster.nodes().iter().enumerate() {
        let mut one = Client::connect(node.addr()).expect("node connect");
        let (_, local) = one
            .query_rows("SELECT owner FROM owner_totals")
            .expect("local group scan");
        for row in &local {
            assert_eq!(
                coord.map().owner_of(&row.0[..1]),
                i,
                "group {:?} left misplaced on node {i} after the exchange",
                row.0[0]
            );
        }
    }

    // Byte-identical to the single-node run.
    let (oracle_totals, oracle_v2) = single_node_oracle();
    assert_eq!(
        format!("{:?}", sorted(v2)),
        format!("{oracle_v2:?}"),
        "distributed accounts_v2 diverged from the single-node oracle"
    );
    assert_eq!(
        format!("{:?}", sorted(totals)),
        format!("{oracle_totals:?}"),
        "distributed owner_totals diverged from the single-node oracle"
    );

    // The cluster gauges survived the whole scenario.
    let status = client.aggregate_status().expect("aggregate status");
    let get = |k: &str| {
        status
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("cluster.nodes"), 3);
    assert!(get("cluster.shardmap_version") >= 1);
    assert_eq!(get("cluster.flip_pending"), 0, "no flip left pending");
}

/// A client holding a rotated (stale) shard map must recover by
/// re-fetching the map on `WRONG_SHARD` — never by blind retry.
#[test]
fn stale_map_client_refetches_on_wrong_shard() {
    let cluster = LocalCluster::start(3, mode()).expect("start cluster");
    let mut coord = Coordinator::connect(&cluster.addrs()).expect("coordinator");
    coord
        .execute_all(CREATE_ACCOUNTS)
        .expect("create everywhere");

    let mut fresh = ClusterClient::connect(&cluster.addrs()[0]).expect("routing client");
    for id in 0..12 {
        fresh
            .execute_key(
                &[Value::Int(id)],
                &format!("INSERT INTO accounts VALUES ({id}, 'o0', {INITIAL_BALANCE})"),
            )
            .expect("load");
    }

    // Rotate the node list by one: every owner index now points at the
    // wrong address, so the first routed statement is guaranteed to
    // land on a non-owner and bounce with WRONG_SHARD.
    let true_map = fresh.map().clone();
    let mut rotated = true_map.nodes.clone();
    rotated.rotate_left(1);
    let mut stale = ClusterClient::with_map(ShardMap {
        version: 0,
        nodes: rotated,
    });

    for id in 0..12 {
        let affected = stale
            .execute_key(
                &[Value::Int(id)],
                &format!("UPDATE accounts SET balance = balance + 1 WHERE id = {id}"),
            )
            .expect("stale client update");
        assert_eq!(affected, 1, "update for id {id} matched {affected} rows");
    }
    assert!(
        stale.wrong_shard_refetches >= 1,
        "the stale map never triggered a re-fetch"
    );
    assert_eq!(
        stale.map().nodes,
        true_map.nodes,
        "re-fetch did not converge on the installed map"
    );

    // The nodes counted the bounces (cluster-level gauge).
    let status = fresh.aggregate_status().expect("status");
    let bounced = status
        .iter()
        .find(|(k, _)| k == "cluster.wrong_shard_rejects")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(bounced >= 1, "no node recorded a WRONG_SHARD reject");
}

/// Between `PREPARE` and that node's `COMMIT`, statements touching the
/// flip's tables bounce with the retryable `FLIP_PENDING` code; `ABORT`
/// reopens the window. Migration DDL sent straight to a member (not
/// through the coordinator) is refused outright.
#[test]
fn flip_window_gates_dml_until_commit_or_abort() {
    let cluster = LocalCluster::start(3, mode()).expect("start cluster");
    let mut coord = Coordinator::connect(&cluster.addrs()).expect("coordinator");
    coord
        .execute_all(CREATE_ACCOUNTS)
        .expect("create everywhere");

    // Pick a key owned by node 0 so the happy path targets it.
    let map = coord.map().clone();
    let id = (0..)
        .find(|i| map.owner_of(&[Value::Int(*i)]) == 0)
        .unwrap();
    let mut direct = Client::connect(cluster.nodes()[0].addr()).expect("direct connect");
    direct
        .execute(&format!(
            "INSERT INTO accounts VALUES ({id}, 'o0', {INITIAL_BALANCE})"
        ))
        .expect("insert at owner");

    // Migration DDL on a member connection is refused: the two-phase
    // flip is the only path that keeps the cluster's schemas in step.
    match direct.execute(MIGRATE_1TO1) {
        Err(ClientError::Server {
            retryable: false, ..
        }) => {}
        other => panic!("member accepted direct migration DDL: {other:?}"),
    }

    // Stage the flip on node 0 only (coordinator-style prepare).
    let mut admin = Client::connect(cluster.nodes()[0].addr()).expect("admin connect");
    admin.cluster_prepare(MIGRATE_1TO1).expect("prepare");

    match direct.execute(&format!(
        "UPDATE accounts SET balance = balance + 1 WHERE id = {id}"
    )) {
        Err(ClientError::Server {
            retryable: true,
            code,
            ..
        }) if code == err_code::FLIP_PENDING => {}
        other => panic!("flip window did not gate DML: {other:?}"),
    }

    admin.cluster_abort().expect("abort");
    let affected = direct
        .execute(&format!(
            "UPDATE accounts SET balance = balance + 1 WHERE id = {id}"
        ))
        .expect("update after abort");
    assert_eq!(affected, 1);
}

/// A statement whose key hashes to another node bounces with
/// `WRONG_SHARD` naming the owner, and the owning node accepts it.
#[test]
fn non_owner_rejects_single_key_dml() {
    let cluster = LocalCluster::start(3, mode()).expect("start cluster");
    let mut coord = Coordinator::connect(&cluster.addrs()).expect("coordinator");
    coord
        .execute_all(CREATE_ACCOUNTS)
        .expect("create everywhere");

    let map = coord.map().clone();
    // A key owned by node 1, submitted to node 0.
    let id = (0..)
        .find(|i| map.owner_of(&[Value::Int(*i)]) == 1)
        .unwrap();
    let mut wrong = Client::connect(cluster.nodes()[0].addr()).expect("connect node 0");
    let sql = format!("INSERT INTO accounts VALUES ({id}, 'o0', {INITIAL_BALANCE})");
    match wrong.execute(&sql) {
        Err(ClientError::Server {
            retryable: true,
            code,
            message,
        }) if code == err_code::WRONG_SHARD => {
            assert!(
                message.contains(&map.nodes[1]),
                "WRONG_SHARD must name the owner: {message}"
            );
        }
        other => panic!("non-owner accepted the insert: {other:?}"),
    }
    let mut owner = Client::connect(map.nodes[1].as_str()).expect("connect owner");
    assert_eq!(owner.execute(&sql).expect("owner accepts"), 1);
}
