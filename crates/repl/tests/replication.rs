//! End-to-end replication tests: a real TCP primary with the
//! [`ReplicationSender`] hooks, a real [`Replica`], and traffic driven
//! through [`bullfrog_net::Client`] — including mid-stream lazy
//! migrations, snapshot bootstraps after log truncation, and a primary
//! kill/restore/reattach cycle.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_core::{Bullfrog, ClientAccess};
use bullfrog_engine::{Database, DbConfig};
use bullfrog_net::{err_code, Client, ClientError, Server, ServerConfig};
use bullfrog_repl::{restore, DdlJournal, Replica, ReplicationSender};
use bullfrog_txn::wal::shard_file_path;
use bullfrog_txn::WalOptions;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bf-repl-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A file-backed primary serving SQL + replication on an ephemeral
/// loopback port.
fn start_primary(dir: &std::path::Path) -> (Server, Arc<Bullfrog>, Arc<ReplicationSender>) {
    let wal_path = dir.join("primary.wal");
    let db = Arc::new(
        Database::with_wal_file_opts(DbConfig::default(), &wal_path, WalOptions::default())
            .expect("file-backed primary"),
    );
    let bf = Arc::new(Bullfrog::new(db));
    let journal = Arc::new(DdlJournal::open(DdlJournal::path_for(&wal_path)).expect("ddl journal"));
    let sender = ReplicationSender::new(Arc::clone(&bf), journal);
    let server = Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&bf),
        ServerConfig {
            replication: Some(Arc::clone(&sender) as _),
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    (server, bf, sender)
}

/// An in-memory replica following `primary_addr`, serving read-only SQL.
fn start_replica(primary_addr: std::net::SocketAddr) -> (Server, Replica) {
    let bf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let replica = Replica::start(primary_addr.to_string(), Arc::clone(&bf));
    let server = Server::bind(
        ("127.0.0.1", 0),
        bf,
        ServerConfig {
            read_only: Some(replica.read_only()),
            ..ServerConfig::default()
        },
    )
    .expect("bind replica");
    (server, replica)
}

fn stat(pairs: &[(String, i64)], key: &str) -> i64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("STATUS missing {key}: {pairs:?}"))
}

fn wait_complete(admin: &mut Client, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let status = admin.status().expect("status poll");
        if stat(&status, "migration.active") == 0 || stat(&status, "migration.complete") == 1 {
            return;
        }
        assert!(Instant::now() < deadline, "migration stalled: {status:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn sorted_rows(client: &mut Client, sql: &str) -> Vec<bullfrog_common::Row> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.query_rows(sql) {
            Ok((_, mut rows)) => {
                rows.sort_by_key(|r| format!("{r:?}"));
                return rows;
            }
            Err(ClientError::Server {
                retryable: true, ..
            }) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("{sql} failed: {e}"),
        }
    }
}

/// Syncs the primary, waits for the replica to reach its frontier, and
/// asserts both servers answer `sql` identically.
fn assert_converged(
    bf: &Arc<Bullfrog>,
    replica: &Replica,
    primary: &mut Client,
    replica_client: &mut Client,
    sql: &str,
) {
    bf.db().wal().sync();
    let target = bf.db().wal().frontier();
    assert!(
        replica.wait_caught_up(target, Duration::from_secs(20)),
        "replica stuck below {target}: {:?}",
        replica.stats()
    );
    assert_eq!(replica.stats().lag_lsns(), 0);
    assert_eq!(
        sorted_rows(primary, sql),
        sorted_rows(replica_client, sql),
        "primary/replica diverged on {sql}"
    );
}

/// The tentpole scenario: concurrent transfer traffic, a 1:1 bitmap
/// migration and an n:1 hash migration submitted mid-stream, and a
/// replica that must converge to identical scans after each drain.
#[test]
fn replica_converges_through_mid_stream_migrations() {
    let dir = scratch_dir("converge");
    let (server, bf, sender) = start_primary(&dir);
    let addr = server.local_addr();
    let (rserver, replica) = start_replica(addr);

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .unwrap();
    let values: Vec<String> = (0..64)
        .map(|i| format!("({i}, 'o{}', 100)", i % 8))
        .collect();
    admin
        .execute(&format!(
            "INSERT INTO accounts VALUES {}",
            values.join(", ")
        ))
        .unwrap();

    // Concurrent writers transferring balance; they swap tables when the
    // migration flips.
    let on_v2 = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let on_v2 = Arc::clone(&on_v2);
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker");
                let mut i: i64 = w;
                while !stop.load(Ordering::Acquire) {
                    let table = if on_v2.load(Ordering::Acquire) {
                        "accounts_v2"
                    } else {
                        "accounts"
                    };
                    let a = i.rem_euclid(64);
                    let b = (i + 17).rem_euclid(64);
                    i += 13;
                    let mut txn = || -> Result<(), ClientError> {
                        client.execute("BEGIN")?;
                        client.execute(&format!(
                            "UPDATE {table} SET balance = balance - 3 WHERE id = {a}"
                        ))?;
                        client.execute(&format!(
                            "UPDATE {table} SET balance = balance + 3 WHERE id = {b}"
                        ))?;
                        client.execute("COMMIT")?;
                        Ok(())
                    };
                    match txn() {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server { .. }) => {} // retry next round
                        Err(e) => panic!("transport: {e}"),
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();

    // Mid-stream 1:1 (bitmap) migration.
    std::thread::sleep(Duration::from_millis(60));
    admin
        .execute(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .unwrap();
    on_v2.store(true, Ordering::Release);
    wait_complete(&mut admin, Duration::from_secs(20));

    // Quiesce before the scan comparison.
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().unwrap();
    }
    assert!(
        committed.load(Ordering::Relaxed) > 0,
        "no traffic committed"
    );
    admin.execute("FINALIZE MIGRATION DROP OLD").unwrap();

    let mut rclient = Client::connect(rserver.local_addr()).expect("replica client");
    assert_converged(
        &bf,
        &replica,
        &mut admin,
        &mut rclient,
        "SELECT id, owner, balance FROM accounts_v2",
    );

    // Mid-stream n:1 (hash) migration: lazy point reads + background
    // sweeps complete it, then the replica must match the aggregate.
    admin
        .execute(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total \
             FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)",
        )
        .unwrap();
    for o in 0..8 {
        let _ = admin.query_rows(&format!(
            "SELECT owner, total FROM owner_totals WHERE owner = 'o{o}'"
        ));
    }
    wait_complete(&mut admin, Duration::from_secs(20));
    admin.execute("FINALIZE MIGRATION").unwrap();
    assert_converged(
        &bf,
        &replica,
        &mut admin,
        &mut rclient,
        "SELECT owner, total FROM owner_totals",
    );

    // The replica rebuilt tracker state from shipped granule records.
    assert!(
        replica.stats().granules_mirrored.load(Ordering::Acquire) > 0,
        "no granules mirrored"
    );
    assert_eq!(sender.replica_count(), 1);

    drop((server, rserver, replica));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replicas answer reads and bounce writes with a retryable READ_ONLY
/// error naming the primary.
#[test]
fn replica_serves_reads_and_rejects_writes() {
    let dir = scratch_dir("readonly");
    let (server, bf, _sender) = start_primary(&dir);
    let addr = server.local_addr();
    let (rserver, replica) = start_replica(addr);

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
        .unwrap();
    admin
        .execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
        .unwrap();

    let mut rclient = Client::connect(rserver.local_addr()).expect("replica client");
    assert_converged(
        &bf,
        &replica,
        &mut admin,
        &mut rclient,
        "SELECT k, v FROM kv",
    );

    for sql in [
        "INSERT INTO kv VALUES (3, 30)",
        "UPDATE kv SET v = 0 WHERE k = 1",
        "DELETE FROM kv WHERE k = 2",
        "CREATE TABLE nope (x INT, PRIMARY KEY (x))",
        "BEGIN",
    ] {
        match rclient.execute(sql) {
            Err(ClientError::Server {
                retryable,
                code,
                message,
            }) => {
                assert!(retryable, "{sql}: read-only rejection must be retryable");
                assert_eq!(code, err_code::READ_ONLY, "{sql}: wrong code");
                assert!(
                    message.contains(&addr.to_string()),
                    "{sql}: error must name the primary ({message})"
                );
            }
            other => panic!("{sql} on replica: expected READ_ONLY, got {other:?}"),
        }
    }
    // The connection is still usable for reads afterwards.
    assert_eq!(sorted_rows(&mut rclient, "SELECT k, v FROM kv").len(), 2);

    drop((server, rserver, replica));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A replica whose resume point has been truncated away re-bootstraps
/// from a snapshot instead of failing: checkpoint truncation ran before
/// it ever connected, so LSN 0 is gone.
#[test]
fn truncated_log_forces_snapshot_bootstrap() {
    let dir = scratch_dir("snapshot");
    let (server, bf, _sender) = start_primary(&dir);
    let addr = server.local_addr();

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
        .unwrap();
    for k in 0..50 {
        admin
            .execute(&format!("INSERT INTO kv VALUES ({k}, {})", k * 2))
            .unwrap();
    }
    bf.db().wal().sync();
    let stats = bf.db().checkpoint().expect("manual checkpoint");
    assert!(
        stats.cut_lsn > 0,
        "checkpoint must have truncated something"
    );
    assert!(bf.db().wal().base_lsn() > 0, "log base must have moved");

    // Now attach a fresh replica: subscribe-from-0 must be refused with
    // SNAPSHOT_REQUIRED and the replica must bootstrap.
    let (rserver, replica) = start_replica(addr);
    let mut rclient = Client::connect(rserver.local_addr()).expect("replica client");
    assert_converged(
        &bf,
        &replica,
        &mut admin,
        &mut rclient,
        "SELECT k, v FROM kv",
    );
    assert!(
        replica.stats().snapshots.load(Ordering::Acquire) >= 1,
        "replica must have bootstrapped from a snapshot: {:?}",
        replica.stats()
    );

    // And it keeps streaming normally afterwards.
    admin.execute("INSERT INTO kv VALUES (100, 200)").unwrap();
    assert_converged(
        &bf,
        &replica,
        &mut admin,
        &mut rclient,
        "SELECT k, v FROM kv",
    );

    drop((server, rserver, replica));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the primary mid-stream — with a migration still in flight — and
/// restore it from WAL + sidecar + DDL journal on a new port. The
/// replica must reattach via its backoff loop and converge; the restored
/// primary must be able to finish the migration lazily.
#[test]
fn primary_restart_replica_reconverges() {
    let dir = scratch_dir("restart");
    let (server, bf, sender) = start_primary(&dir);
    let addr = server.local_addr();
    let (rserver, replica) = start_replica(addr);

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .unwrap();
    let values: Vec<String> = (0..40)
        .map(|i| format!("({i}, 'o{}', 100)", i % 4))
        .collect();
    admin
        .execute(&format!(
            "INSERT INTO accounts VALUES {}",
            values.join(", ")
        ))
        .unwrap();

    // Submit the migration and kill the primary while it is in flight
    // (no FINALIZE): trackers must survive via journal + granule
    // records.
    admin
        .execute(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .unwrap();
    // Touch a few slices so some granule records are committed.
    for id in 0..10 {
        let _ = admin.query_rows(&format!(
            "SELECT id, balance FROM accounts_v2 WHERE id = {id}"
        ));
    }
    let caught = {
        bf.db().wal().sync();
        let target = bf.db().wal().frontier();
        replica.wait_caught_up(target, Duration::from_secs(20))
    };
    assert!(caught, "replica behind before the kill");

    // Kill: drop every handle so the WAL files are closed before
    // restore reopens them. The replica now spins in reconnect backoff.
    let wal_path = dir.join("primary.wal");
    drop(admin);
    drop(server);
    drop(sender);
    drop(bf);

    let (bf2, journal2, report) =
        restore(&wal_path, DbConfig::default(), WalOptions::default()).expect("restore");
    assert!(
        report.ddl_applied >= 2,
        "journal must replay DDL: {report:?}"
    );
    let sender2 = ReplicationSender::new(Arc::clone(&bf2), journal2);
    let server2 = Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&bf2),
        ServerConfig {
            replication: Some(Arc::clone(&sender2) as _),
            ..ServerConfig::default()
        },
    )
    .expect("rebind primary");
    replica.set_primary(server2.local_addr().to_string());

    let mut admin2 = Client::connect(server2.local_addr()).expect("admin after restart");
    // Restore respawned the background sweepers, but don't rely on them
    // here: a full scan migrates every remaining slice lazily, then
    // finalize re-derives completeness from the trackers either way.
    let rows = sorted_rows(&mut admin2, "SELECT id, owner, balance FROM accounts_v2");
    assert_eq!(rows.len(), 40, "restored migration lost rows");
    admin2.execute("FINALIZE MIGRATION DROP OLD").unwrap();
    admin2
        .execute("UPDATE accounts_v2 SET balance = balance + 1 WHERE id = 0")
        .unwrap();

    let mut rclient = Client::connect(rserver.local_addr()).expect("replica client");
    assert_converged(
        &bf2,
        &replica,
        &mut admin2,
        &mut rclient,
        "SELECT id, owner, balance FROM accounts_v2",
    );
    assert!(
        replica.stats().reconnects.load(Ordering::Acquire) >= 1,
        "replica must have reconnected after the restart"
    );

    drop((server2, rserver, replica));
    // Shard files plus journal/sidecar live under dir.
    let _ = shard_file_path(&wal_path, 1); // (referenced for clarity; dir removal covers all)
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for sweeper respawn after restore: kill the primary while
/// a migration is in flight, restore it, and issue **no client traffic
/// at all** — the background sweepers respawned from the rebuilt
/// trackers must finish the migration on their own.
#[test]
fn restored_primary_finishes_migration_without_traffic() {
    let dir = scratch_dir("respawn");
    let (server, bf, sender) = start_primary(&dir);
    let addr = server.local_addr();

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .unwrap();
    let values: Vec<String> = (0..60)
        .map(|i| format!("({i}, 'o{}', 100)", i % 4))
        .collect();
    admin
        .execute(&format!(
            "INSERT INTO accounts VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    admin
        .execute(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .unwrap();
    // Touch a few slices so some (but not all) granule records are
    // committed, then kill well inside the sweepers' start delay so the
    // migration is genuinely in flight on disk.
    for id in 0..5 {
        let _ = admin.query_rows(&format!(
            "SELECT id, balance FROM accounts_v2 WHERE id = {id}"
        ));
    }
    let wal_path = dir.join("primary.wal");
    drop(admin);
    drop(server);
    drop(sender);
    drop(bf);

    let (bf2, _journal2, report) =
        restore(&wal_path, DbConfig::default(), WalOptions::default()).expect("restore");
    assert!(
        report.ddl_applied >= 2,
        "journal must replay the migration DDL: {report:?}"
    );
    assert!(
        bf2.active().is_some(),
        "restored primary must have the in-flight migration active"
    );

    // No server, no clients: only the respawned sweepers can finish it.
    assert!(
        bf2.wait_migration_complete(Duration::from_secs(30)),
        "respawned sweepers never completed the migration: {:?}",
        bf2.progress()
    );
    bf2.finalize_migration(true).expect("finalize after sweep");
    assert_eq!(
        bf2.db().table("accounts_v2").unwrap().live_count(),
        60,
        "sweepers must have migrated every row"
    );
    bf2.shutdown_background();
    let _ = std::fs::remove_dir_all(&dir);
}
