//! Primary-side replication: the WAL shipper.
//!
//! [`ReplicationSender`] implements
//! [`ReplicationHooks`](bullfrog_net::ReplicationHooks), so plugging it
//! into a [`ServerConfig`](bullfrog_net::ServerConfig) turns a plain
//! server into a primary: `SUBSCRIBE` connections become frame streams,
//! `SNAPSHOT` serves bootstrap images, and every DDL statement the
//! server executes is journaled with its apply point.
//!
//! Two invariants carry the whole design:
//!
//! 1. **Only durable frames ship.** A subscription reads the log through
//!    [`Wal::durable_records_from`](bullfrog_txn::Wal), which stops at
//!    the merged durable horizon (the minimum of the per-shard flush
//!    frontiers). A replica therefore never applies a commit the primary
//!    could still lose — the replica's state is always a recoverable
//!    prefix of the primary's log, and a primary crash can only leave
//!    replicas *behind*, never diverged.
//! 2. **Retain horizons fence truncation.** Each subscription registers
//!    its resume LSN as a retain horizon before reading anything;
//!    checkpoint truncation clamps to the minimum registered horizon, so
//!    the tail a connected (even stalled) replica still needs stays on
//!    disk. A replica whose resume point has already been truncated —
//!    it was down across a checkpoint — is told
//!    [`err_code::SNAPSHOT_REQUIRED`](bullfrog_net::err_code) and
//!    re-bootstraps from a fresh snapshot instead.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_core::{Bullfrog, ClientAccess};
use bullfrog_net::{err_code, Request, Response, WireDdl};
use bullfrog_txn::wal::codec;
use bullfrog_txn::EpochStore;
use bytes::BytesMut;
use parking_lot::Mutex;

use crate::journal::{encode_event, encode_snapshot, DdlJournal};

/// Records per `FRAMES` batch — bounds frame size and the time a batch
/// holds the WAL core lock.
const MAX_BATCH: usize = 1024;

/// Heartbeat cadence: an idle subscription still sends an empty frame
/// this often, carrying the current durable horizon for lag reporting.
const HEARTBEAT: Duration = Duration::from_millis(250);

#[derive(Debug)]
struct Peer {
    acked_lsn: u64,
    sent_records: u64,
    sent_bytes: u64,
}

/// RAII handle on a WAL retain horizon. Registration hands out the
/// guard; release happens in `Drop`, so **every** exit from a
/// subscription — clean return, transport error, or a panic unwinding
/// the sender thread — unpins checkpoint truncation. Before this guard,
/// a subscription thread that died between `register_retain` and the
/// manual `release_retain` pinned the WAL tail forever: checkpoints
/// kept clamping to the dead subscriber's horizon and the log never
/// truncated again.
struct RetainGuard<'a> {
    wal: &'a bullfrog_txn::Wal,
    id: u64,
}

impl<'a> RetainGuard<'a> {
    /// Registers `at` as a retain horizon; returns the guard and the
    /// granted base (above `at` when the tail is already truncated).
    fn register(wal: &'a bullfrog_txn::Wal, at: u64) -> (RetainGuard<'a>, u64) {
        let (id, granted) = wal.register_retain(at);
        (RetainGuard { wal, id }, granted)
    }

    /// Moves the horizon forward as the replica acknowledges.
    fn advance(&self, lsn: u64) {
        self.wal.advance_retain(self.id, lsn);
    }
}

impl Drop for RetainGuard<'_> {
    fn drop(&mut self) {
        self.wal.release_retain(self.id);
    }
}

/// RAII registration of one subscription in the peer table and the
/// synchronous-replication gate; `Drop` removes both, for the same
/// reason as [`RetainGuard`] — a dead subscriber must not count toward
/// `SYNC_REPLICAS` quorums or lag reporting.
struct PeerGuard<'a> {
    sender: &'a ReplicationSender,
    gate: Arc<bullfrog_txn::SyncGate>,
    peer_id: u64,
    gate_peer: u64,
}

impl<'a> PeerGuard<'a> {
    fn register(sender: &'a ReplicationSender, from_lsn: u64) -> PeerGuard<'a> {
        let peer_id = sender.next_peer.fetch_add(1, Ordering::Relaxed);
        sender.peers.lock().insert(
            peer_id,
            Peer {
                acked_lsn: from_lsn,
                sent_records: 0,
                sent_bytes: 0,
            },
        );
        let gate = sender.bf.db().wal().sync_gate();
        let gate_peer = gate.register_peer();
        PeerGuard {
            sender,
            gate,
            peer_id,
            gate_peer,
        }
    }
}

impl Drop for PeerGuard<'_> {
    fn drop(&mut self) {
        self.gate.remove_peer(self.gate_peer);
        self.sender.peers.lock().remove(&self.peer_id);
    }
}

/// The primary's replication state: the DDL journal, the DDL
/// serialization lock, and per-replica progress.
pub struct ReplicationSender {
    bf: Arc<Bullfrog>,
    journal: Arc<DdlJournal>,
    /// This primary's fencing epoch: stamped on every `FRAMES` batch
    /// and checked against every `SUBSCRIBE`/`REPL_ACK`. A peer ahead
    /// of us proves a promotion happened elsewhere — we fence.
    epoch: Arc<EpochStore>,
    ddl_lock: Mutex<()>,
    peers: Mutex<HashMap<u64, Peer>>,
    next_peer: AtomicU64,
}

impl ReplicationSender {
    /// Wraps a controller and journal as a primary. The fencing epoch
    /// is held in memory only; use [`ReplicationSender::with_epoch`] to
    /// survive restarts.
    pub fn new(bf: Arc<Bullfrog>, journal: Arc<DdlJournal>) -> Arc<ReplicationSender> {
        ReplicationSender::with_epoch(bf, journal, EpochStore::volatile())
    }

    /// [`ReplicationSender::new`] with a persistent [`EpochStore`].
    pub fn with_epoch(
        bf: Arc<Bullfrog>,
        journal: Arc<DdlJournal>,
        epoch: Arc<EpochStore>,
    ) -> Arc<ReplicationSender> {
        Arc::new(ReplicationSender {
            bf,
            journal,
            epoch,
            ddl_lock: Mutex::new(()),
            peers: Mutex::new(HashMap::new()),
            next_peer: AtomicU64::new(0),
        })
    }

    /// This node's fencing epoch store.
    pub fn epoch_store(&self) -> &Arc<EpochStore> {
        &self.epoch
    }

    /// The journal (shared with [`crate::restore`] on restart).
    pub fn journal(&self) -> &Arc<DdlJournal> {
        &self.journal
    }

    /// Connected subscription count.
    pub fn replica_count(&self) -> usize {
        self.peers.lock().len()
    }

    /// The lowest acked LSN across connected replicas, if any.
    pub fn min_acked_lsn(&self) -> Option<u64> {
        self.peers.lock().values().map(|p| p.acked_lsn).min()
    }

    fn run_subscription(
        &self,
        mut stream: TcpStream,
        from_lsn: u64,
        ddl_seq: u64,
        sub_epoch: u64,
        stop: &dyn Fn() -> bool,
    ) -> std::io::Result<()> {
        let wal = self.bf.db().wal();
        if sub_epoch > self.epoch.epoch() {
            // The subscriber has seen a promotion we haven't: we are
            // the zombie. Adopt the epoch, fence local commits, and
            // refuse to ship anything.
            let _ = self.epoch.observe(sub_epoch);
            wal.sync_gate().fence(None);
            let resp = Response::Err {
                retryable: false,
                code: err_code::STALE_EPOCH,
                message: format!(
                    "stale epoch: this node is at epoch {} but the subscriber has seen {}",
                    self.epoch.epoch(),
                    sub_epoch
                ),
            };
            return bullfrog_net::wire::write_frame(&mut stream, &resp.encode());
        }
        if wal.sync_gate().is_fenced() {
            let resp = Response::Err {
                retryable: false,
                code: err_code::STALE_EPOCH,
                message: "this node is fenced: a newer primary exists".into(),
            };
            return bullfrog_net::wire::write_frame(&mut stream, &resp.encode());
        }
        // Scope-tied registrations: the retain horizon, peer-table
        // entry, and sync-gate slot all release on *any* exit from this
        // function — including a panic unwinding the subscription
        // thread, which previously left the horizon pinned and blocked
        // checkpoint truncation forever.
        let (retain, granted) = RetainGuard::register(wal, from_lsn);
        if granted > from_lsn {
            // The tail below `granted` is gone — truncated by a
            // checkpoint while this replica was away.
            let resp = Response::Err {
                retryable: true,
                code: err_code::SNAPSHOT_REQUIRED,
                message: format!(
                    "log truncated: resume point {from_lsn} is below the retained base \
                     {granted}; bootstrap from a snapshot"
                ),
            };
            return bullfrog_net::wire::write_frame(&mut stream, &resp.encode());
        }
        // Register with the synchronous-replication gate: commits
        // waiting under `SYNC_REPLICAS n` count this subscription's
        // acks toward their quorum.
        let peer = PeerGuard::register(self, from_lsn);
        self.stream_frames(&mut stream, from_lsn, ddl_seq, &peer, &retain, stop)
    }

    fn stream_frames(
        &self,
        stream: &mut TcpStream,
        from_lsn: u64,
        ddl_seq: u64,
        peer: &PeerGuard<'_>,
        retain: &RetainGuard<'_>,
        stop: &dyn Fn() -> bool,
    ) -> std::io::Result<()> {
        let wal = self.bf.db().wal();
        let gate = wal.sync_gate();
        let obs = Arc::clone(self.bf.db().obs());
        let ship_hist = obs.histogram("repl.ship_us");
        let ack_hist = obs.histogram("repl.ack_rtt_us");
        let ship_records = obs.counter("repl.ship_records");
        let ship_bytes = obs.counter("repl.ship_bytes");
        let lag_gauge = obs.gauge("repl.lag_lsns");
        // Frames in flight awaiting acknowledgement: (frontier after the
        // batch, send time). The replica acks its applied *frontier*, so
        // a batch is confirmed once `acked >= frontier` — the delta is
        // the ship→apply→ack round trip.
        let mut in_flight: std::collections::VecDeque<(u64, u64)> =
            std::collections::VecDeque::new();
        bullfrog_net::wire::write_frame(stream, &Response::Ok { affected: 0 }.encode())?;

        // ACK reader: a dedicated thread owning the read half, so the
        // send loop never blocks on a quiet replica. It dies when the
        // stream closes (either side), flipping `alive`. An ack carrying
        // a higher epoch than ours proves a promotion happened behind
        // our back: fence immediately, so no commit waiting on the gate
        // is acknowledged and no further frames ship.
        let acked = Arc::new(AtomicU64::new(from_lsn));
        let alive = Arc::new(AtomicBool::new(true));
        let reader = {
            let mut read_half = stream.try_clone()?;
            let acked = Arc::clone(&acked);
            let alive = Arc::clone(&alive);
            let epoch = Arc::clone(&self.epoch);
            let gate = Arc::clone(&gate);
            std::thread::Builder::new()
                .name("bf-repl-ack".into())
                .spawn(move || {
                    while let Ok(Some(payload)) = bullfrog_net::wire::read_frame(&mut read_half) {
                        match Request::decode(payload) {
                            Ok(Request::ReplAck {
                                lsn,
                                epoch: ack_epoch,
                            }) => {
                                if ack_epoch > epoch.epoch() {
                                    let _ = epoch.observe(ack_epoch);
                                    gate.fence(None);
                                    break;
                                }
                                acked.fetch_max(lsn, Ordering::AcqRel);
                            }
                            _ => break,
                        }
                    }
                    alive.store(false, Ordering::Release);
                })?
        };

        let mut next_lsn = from_lsn;
        let mut next_ddl = ddl_seq;
        let send_result: std::io::Result<()> = loop {
            if stop() || !alive.load(Ordering::Acquire) || gate.is_fenced() {
                break Ok(());
            }
            // Propagate acks into lag accounting, the retain horizon
            // (never past what we have actually sent), and the
            // synchronous-commit gate.
            let acked_lsn = acked.load(Ordering::Acquire).min(next_lsn);
            retain.advance(acked_lsn);
            gate.advance_peer(peer.gate_peer, acked_lsn);
            if let Some(p) = self.peers.lock().get_mut(&peer.peer_id) {
                p.acked_lsn = acked_lsn;
            }
            while in_flight
                .front()
                .is_some_and(|&(frontier, _)| frontier <= acked_lsn)
            {
                let (_, sent_us) = in_flight.pop_front().expect("front checked");
                ack_hist.record(obs.now_us().saturating_sub(sent_us));
            }

            // Durable log tail first, then the DDL journal tail: a
            // journal entry's apply point can only reference LSNs the
            // replica will have seen by the time it applies it.
            let (records, durable_lsn) = wal.durable_records_from(next_lsn, MAX_BATCH);
            let ddl: Vec<WireDdl> = self
                .journal
                .entries_from(next_ddl)
                .into_iter()
                .map(|e| WireDdl {
                    seq: e.seq,
                    apply_at_lsn: e.apply_at_lsn,
                    payload: encode_event(&e.event),
                })
                .collect();
            let idle = records.is_empty() && ddl.is_empty();
            if let Some((last, _)) = records.last() {
                next_lsn = last + 1;
            }
            next_ddl += ddl.len() as u64;
            let nrecords = records.len() as u64;
            let frame = Response::Frames {
                durable_lsn,
                ddl,
                records,
                epoch: self.epoch.epoch(),
            }
            .encode();
            let frame_bytes = frame.len() as u64;
            let ship_started = std::time::Instant::now();
            if let Err(e) = bullfrog_net::wire::write_frame(stream, &frame) {
                break Err(e);
            }
            if !idle {
                ship_hist.record_micros(ship_started.elapsed());
                ship_records.add(nrecords);
                ship_bytes.add(frame_bytes);
                lag_gauge.set(durable_lsn.saturating_sub(acked_lsn) as i64);
                if nrecords > 0 {
                    // Bound the queue against a replica that never acks;
                    // dropped entries just lose their RTT sample.
                    if in_flight.len() >= 4096 {
                        in_flight.pop_front();
                    }
                    in_flight.push_back((next_lsn, obs.now_us()));
                }
            }
            if let Some(p) = self.peers.lock().get_mut(&peer.peer_id) {
                p.sent_records += nrecords;
                p.sent_bytes += frame_bytes;
            }
            if idle {
                // Park until the horizon moves or a heartbeat is due.
                // (In-memory logs return immediately; the floor sleep
                // keeps this from spinning.)
                let before = durable_lsn;
                let after = wal.wait_durable_timeout(before + 1, HEARTBEAT);
                if after == before {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        };
        // Closing our half unblocks the reader's blocking read.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        let _ = reader.join();
        send_result
    }

    /// Encoded size of the durable records a replica at `acked` has not
    /// yet confirmed — the byte form of replication lag.
    fn lag_bytes(&self, acked: u64, durable: u64) -> u64 {
        let mut buf = BytesMut::new();
        for (_, r) in self.bf.db().wal().records_with_lsns(acked, durable) {
            codec::put_record(&mut buf, &r);
        }
        buf.len() as u64
    }
}

impl bullfrog_net::ReplicationHooks for ReplicationSender {
    fn journaled_ddl(
        &self,
        exec: &mut dyn FnMut() -> bullfrog_common::Result<bullfrog_net::DdlEvent>,
    ) -> bullfrog_common::Result<()> {
        // The lock serializes DDL end to end: frontier sample, catalog
        // mutation, journal append. Serial DDL means journal order is
        // catalog-creation order, so TableIds match on every mirror.
        let _serial = self.ddl_lock.lock();
        let apply_at_lsn = self.bf.db().wal().frontier();
        let event = exec()?;
        self.journal.append(apply_at_lsn, event)?;
        Ok(())
    }

    fn snapshot(&self) -> bullfrog_common::Result<bytes::Bytes> {
        // Image before journal: a journal newer than the image is
        // harmless (events defer by apply_at_lsn); an image newer than
        // the journal could hold rows of tables the replica never
        // learns to create.
        let image = self.bf.db().checkpointer().image_snapshot();
        let entries = self.journal.entries();
        Ok(encode_snapshot(&image, &entries))
    }

    fn subscribe(
        &self,
        stream: TcpStream,
        from_lsn: u64,
        ddl_seq: u64,
        epoch: u64,
        stop: &dyn Fn() -> bool,
    ) -> std::io::Result<()> {
        self.run_subscription(stream, from_lsn, ddl_seq, epoch, stop)
    }

    fn status(&self) -> Vec<(String, i64)> {
        let durable = self.bf.db().wal().durable_lsn();
        let peers = self.peers.lock();
        let min_acked = peers.values().map(|p| p.acked_lsn).min();
        let mut out = vec![
            ("repl.role_primary".into(), 1),
            ("repl.replicas".into(), peers.len() as i64),
            ("repl.durable_lsn".into(), durable as i64),
            ("repl.epoch".into(), self.epoch.epoch() as i64),
            (
                "repl.ddl_journal_entries".into(),
                self.journal.next_seq() as i64,
            ),
        ];
        let (lag_lsns, lag_bytes) = match min_acked {
            Some(acked) => (
                durable.saturating_sub(acked),
                self.lag_bytes(acked, durable),
            ),
            None => (0, 0),
        };
        out.push(("repl.lag_lsns".into(), lag_lsns as i64));
        out.push(("repl.lag_bytes".into(), lag_bytes as i64));
        let mut ids: Vec<&u64> = peers.keys().collect();
        ids.sort();
        for id in ids {
            let p = &peers[id];
            out.push((format!("repl.peer.{id}.acked_lsn"), p.acked_lsn as i64));
            out.push((
                format!("repl.peer.{id}.sent_records"),
                p.sent_records as i64,
            ));
        }
        out
    }
}

impl std::fmt::Debug for ReplicationSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationSender")
            .field("replicas", &self.replica_count())
            .field("journal", &self.journal)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_engine::Database;

    /// The leak this guards against: a subscription thread that dies
    /// (panic, killed replica mid-handshake) between registering its
    /// retain horizon and the old manual release left the horizon
    /// registered forever, so checkpoint truncation stayed clamped to a
    /// dead subscriber's resume point. The RAII guard releases on
    /// unwind.
    #[test]
    fn killed_subscriber_does_not_pin_checkpoint_truncation() {
        let db = Arc::new(Database::new());
        let wal = db.wal();
        assert_eq!(wal.retain_floor(), None);

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (retain, granted) = RetainGuard::register(wal, 3);
            assert_eq!(granted, 3);
            assert_eq!(wal.retain_floor(), Some(3), "horizon registered");
            retain.advance(7);
            assert_eq!(wal.retain_floor(), Some(7));
            panic!("subscriber thread dies mid-stream");
        }));
        assert!(result.is_err(), "the closure must have panicked");
        assert_eq!(
            wal.retain_floor(),
            None,
            "a dead subscriber must release its retain horizon"
        );
    }

    /// Same scope-tied cleanup for the peer table and sync gate: a dead
    /// subscriber must stop counting toward SYNC_REPLICAS quorums.
    #[test]
    fn killed_subscriber_leaves_peer_table_and_gate() {
        let bf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
        let journal = Arc::new(DdlJournal::in_memory());
        let sender = ReplicationSender::new(Arc::clone(&bf), journal);
        let gate = bf.db().wal().sync_gate();

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _peer = PeerGuard::register(&sender, 0);
            assert_eq!(sender.replica_count(), 1);
            assert_eq!(gate.peer_count(), 1);
            panic!("subscriber thread dies mid-stream");
        }));
        assert!(result.is_err(), "the closure must have panicked");
        assert_eq!(sender.replica_count(), 0, "peer entry must be removed");
        assert_eq!(gate.peer_count(), 0, "gate slot must be removed");
    }
}
