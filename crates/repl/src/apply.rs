//! Shared state-rebuild helpers: applying journaled DDL, mirroring
//! migration granules into trackers, and placing checkpoint-image rows.
//!
//! Used by both the live replica (streamed frames) and primary restart
//! ([`crate::restore`]) — the two paths must produce identical state
//! from identical inputs, so they share the code that does it.

use std::sync::Arc;

use bullfrog_common::{Error, Result};
use bullfrog_core::{Bullfrog, ClientAccess, MigrationStats, SubmitOptions};
use bullfrog_engine::{CheckpointImage, Database};
use bullfrog_net::{build_migration_plan, DdlEvent};
use bullfrog_sql::{parse_statement, Statement};
use bullfrog_txn::wal::GranuleKey;

/// Re-executes one journaled DDL event against a mirror's catalog,
/// through the same code paths the primary's session used.
///
/// Mirrors differ from the primary in two ways: migrations run with
/// background sweeps off and validation skipped (granule state arrives
/// via the log, and the local heap may lag the submit point), and
/// `FINALIZE` skips the completeness gate — the primary already proved
/// completeness before its finalize succeeded and was journaled.
pub fn apply_ddl_event(bf: &Arc<Bullfrog>, event: &DdlEvent) -> Result<()> {
    match event {
        DdlEvent::Create { sql } => match parse_statement(sql)? {
            Statement::CreateTable(schema) => {
                bf.db().create_table(schema)?;
                Ok(())
            }
            other => Err(Error::Eval(format!(
                "journaled Create event holds non-CREATE statement {other:?}"
            ))),
        },
        DdlEvent::Migrate { sql, caps } => match parse_statement(sql)? {
            Statement::CreateTableAs {
                name,
                select,
                primary_key,
            } => {
                let plan = build_migration_plan(bf, name, &select, primary_key)?;
                bf.submit_migration_with(
                    plan,
                    SubmitOptions {
                        background: Some(false),
                        tracker_caps: Some(caps.clone()),
                        skip_validation: true,
                    },
                )?;
                Ok(())
            }
            other => Err(Error::Eval(format!(
                "journaled Migrate event holds non-migration statement {other:?}"
            ))),
        },
        DdlEvent::Finalize { sql } => match parse_statement(sql)? {
            Statement::FinalizeMigration { drop_old } => bf.finalize_migration_force(drop_old),
            other => Err(Error::Eval(format!(
                "journaled Finalize event holds non-FINALIZE statement {other:?}"
            ))),
        },
    }
}

/// Marks committed migration granules in the active migration's
/// trackers (the replica-side half of paper §3.5's tracker rebuild) and
/// mirrors the `granules_migrated` counter. Returns granules newly
/// marked.
pub fn mark_granules(bf: &Bullfrog, granules: &[(u32, GranuleKey)]) -> usize {
    if granules.is_empty() {
        return 0;
    }
    let Some(active) = bf.active() else {
        // Granule records always precede their migration's FINALIZE in
        // the log/journal order, so an active migration should exist;
        // tolerate its absence (the marks are then moot anyway).
        return 0;
    };
    let n = bullfrog_core::recovery::rebuild_trackers(&active.runtimes, granules);
    MigrationStats::add(&active.stats.granules_migrated, n as u64);
    n
}

/// Places a checkpoint image's rows, skipping tables the local catalog
/// does not know. DDL is not WAL-logged, so an image can hold rows of a
/// table dropped by a later `FINALIZE MIGRATION DROP OLD` whose journal
/// event already applied; those rows are dead, not an error. Returns
/// `(rows placed, rows skipped)`.
pub fn apply_image_tolerant(db: &Database, image: &CheckpointImage) -> Result<(usize, usize)> {
    let (mut placed, mut skipped) = (0, 0);
    for (table, rows) in &image.tables {
        match db.catalog().get_by_id(*table) {
            Ok(t) => {
                for (rid, row) in rows {
                    t.place(*rid, row.clone())?;
                    placed += 1;
                }
            }
            Err(_) => skipped += rows.len(),
        }
    }
    Ok((placed, skipped))
}

/// Deletes every live row of every table — the first half of a replica
/// re-bootstrap (the snapshot image then repopulates from scratch).
pub fn clear_all_rows(db: &Database) -> Result<usize> {
    let mut removed = 0;
    for name in db.catalog().table_names() {
        let t = db.catalog().get(&name)?;
        for (rid, _) in t.heap().all_rows() {
            t.delete(rid)?;
            removed += 1;
        }
    }
    Ok(removed)
}
