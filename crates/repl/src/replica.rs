//! Replica-side replication: bootstrap, tail apply, read-only serving.
//!
//! [`Replica::start`] spawns the apply thread: connect to the primary,
//! `SUBSCRIBE` from the local applied LSN, and feed every streamed
//! record through
//! [`StreamingReplay`](bullfrog_engine::recovery::StreamingReplay) —
//! transactions buffer until their `Commit` arrives and then apply
//! atomically under the apply gate's write lock, so concurrent read
//! sessions (which hold the read half per statement) never observe a
//! half-applied transaction. Journaled DDL applies at its recorded
//! `apply_at_lsn`, interleaved with the record stream, so the replica's
//! catalog evolves exactly when the primary's did; mid-flight lazy
//! migrations mirror their bitmap/hashmap tracker state from the
//! shipped `MigrationGranule` records
//! ([`rebuild_trackers`](bullfrog_core::recovery::rebuild_trackers)).
//!
//! When the primary answers `SNAPSHOT_REQUIRED` — the replica's resume
//! point fell below the primary's retained log base while it was away —
//! the replica re-bootstraps: fetch a snapshot (checkpoint image + DDL
//! journal), clear local rows, rebuild catalog and heap from it, and
//! resubscribe from the image's base. Disconnects retry with bounded
//! exponential backoff; the replica keeps serving (stale) reads
//! throughout.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use bullfrog_common::{Error, Result, TxnId};
use bullfrog_core::{Bullfrog, ClientAccess};
use bullfrog_engine::recovery::StreamingReplay;
use bullfrog_net::{err_code, wire, ReadOnly, Request, Response, WireDdl};
use bullfrog_txn::{EpochStore, LogRecord};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apply::{apply_ddl_event, apply_image_tolerant, clear_all_rows, mark_granules};
use crate::journal::{decode_event, decode_snapshot, JournalEntry};

/// Reconnect backoff bounds.
const BACKOFF_MIN: Duration = Duration::from_millis(50);
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// After this much continuous downtime the backoff stops growing, the
/// replica flips `repl.stalled`, and retries settle at [`BACKOFF_MAX`] —
/// the signal an HA follower loop watches before considering promotion.
const BACKOFF_MAX_ELAPSED: Duration = Duration::from_secs(30);

/// Replica progress counters, shared with `STATUS` reporting.
#[derive(Debug, Default)]
pub struct ReplicaStats {
    /// Exclusive upper bound of the applied log prefix.
    pub applied_lsn: AtomicU64,
    /// The primary's durable horizon as of the last frame (heartbeats
    /// included), for lag reporting.
    pub primary_durable: AtomicU64,
    /// Data records applied to local heaps.
    pub records_applied: AtomicU64,
    /// Transactions committed locally.
    pub txns_applied: AtomicU64,
    /// Journaled DDL events applied.
    pub ddl_applied: AtomicU64,
    /// Migration granules mirrored into trackers.
    pub granules_mirrored: AtomicU64,
    /// Snapshot bootstraps performed.
    pub snapshots: AtomicU64,
    /// Connection attempts after the first.
    pub reconnects: AtomicU64,
    /// 1 while the primary has been unreachable longer than the
    /// reconnect cap ([`BACKOFF_MAX_ELAPSED`]).
    pub stalled: AtomicU64,
    /// `FRAMES` batches received (heartbeats included) — liveness proof
    /// for the backoff schedule.
    pub frames_seen: AtomicU64,
    /// This node's fencing epoch (mirrors the [`EpochStore`]).
    pub epoch: AtomicU64,
    /// 1 once this replica has promoted itself to primary.
    pub promoted: AtomicU64,
}

impl ReplicaStats {
    /// Replication lag in LSNs, as of the last heartbeat.
    pub fn lag_lsns(&self) -> u64 {
        self.primary_durable
            .load(Ordering::Acquire)
            .saturating_sub(self.applied_lsn.load(Ordering::Acquire))
    }

    fn pairs(&self) -> Vec<(String, i64)> {
        vec![
            ("repl.role_replica".into(), 1),
            (
                "repl.applied_lsn".into(),
                self.applied_lsn.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.primary_durable".into(),
                self.primary_durable.load(Ordering::Acquire) as i64,
            ),
            ("repl.lag_lsns".into(), self.lag_lsns() as i64),
            (
                "repl.records_applied".into(),
                self.records_applied.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.txns_applied".into(),
                self.txns_applied.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.ddl_applied".into(),
                self.ddl_applied.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.granules_mirrored".into(),
                self.granules_mirrored.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.snapshots".into(),
                self.snapshots.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.reconnects".into(),
                self.reconnects.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.stalled".into(),
                self.stalled.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.epoch".into(),
                self.epoch.load(Ordering::Acquire) as i64,
            ),
            (
                "repl.promoted".into(),
                self.promoted.load(Ordering::Acquire) as i64,
            ),
        ]
    }
}

/// Mutable apply-loop state (one owner: the apply thread).
struct ApplyState {
    bf: Arc<Bullfrog>,
    gate: Arc<RwLock<()>>,
    stats: Arc<ReplicaStats>,
    /// Fencing epoch: sent on `SUBSCRIBE`/`REPL_ACK`, checked against
    /// every `FRAMES` batch, raised (and persisted) when the stream
    /// carries a higher one.
    epoch: Arc<EpochStore>,
    replay: StreamingReplay,
    /// Next LSN to request (exclusive bound of the applied prefix).
    applied: u64,
    /// Next journal sequence to request from the primary.
    recv_seq: u64,
    /// Next journal sequence to apply locally (≤ everything in
    /// `pending`; entries below it in a snapshot's journal are already
    /// in the local catalog).
    apply_seq: u64,
    /// Received, not yet applied (waiting for their apply point), in
    /// sequence order.
    pending: Vec<JournalEntry>,
}

impl ApplyState {
    /// Applies pending DDL whose apply point has been reached.
    fn apply_ready_ddl(&mut self, up_to_lsn: u64) -> Result<()> {
        while let Some(front) = self.pending.first() {
            if front.apply_at_lsn > up_to_lsn {
                break;
            }
            let entry = self.pending.remove(0);
            debug_assert_eq!(entry.seq, self.apply_seq);
            apply_ddl_event(&self.bf, &entry.event)?;
            self.apply_seq = entry.seq + 1;
            self.stats.ddl_applied.fetch_add(1, Ordering::Release);
        }
        Ok(())
    }

    /// Applies one `FRAMES` batch under the apply gate.
    fn apply_frames(
        &mut self,
        durable_lsn: u64,
        ddl: Vec<WireDdl>,
        records: Vec<(u64, bullfrog_txn::LogRecord)>,
    ) -> Result<()> {
        for d in ddl {
            if d.seq < self.recv_seq {
                continue; // duplicate after a resubscribe race
            }
            self.pending.push(JournalEntry {
                seq: d.seq,
                apply_at_lsn: d.apply_at_lsn,
                event: decode_event(d.payload)?,
            });
            self.recv_seq = d.seq + 1;
        }
        {
            let gate = Arc::clone(&self.gate);
            let _exclusive = gate.write();
            for (lsn, rec) in &records {
                // Catalog changes interleave with the data stream at
                // their recorded apply points.
                self.apply_ready_ddl(*lsn)?;
                let out = self.replay.apply(self.bf.db(), rec)?;
                self.stats
                    .records_applied
                    .fetch_add(out.applied as u64, Ordering::Release);
                if out.committed {
                    self.stats.txns_applied.fetch_add(1, Ordering::Release);
                }
                let marked = mark_granules(&self.bf, &out.granules);
                self.stats
                    .granules_mirrored
                    .fetch_add(marked as u64, Ordering::Release);
                self.applied = lsn + 1;
            }
            // An empty batch proves the retained log holds nothing in
            // [applied, durable): everything below the horizon has been
            // shipped, so the cursor may jump to it — which also
            // releases DDL whose apply point sits beyond the last data
            // record (quiet log right after a migration submit). A
            // *non*-empty batch proves nothing (it may have been capped),
            // so the cursor stays at the last record.
            if records.is_empty() {
                self.applied = self.applied.max(durable_lsn);
            }
            self.apply_ready_ddl(self.applied)?;
        }
        self.stats
            .applied_lsn
            .store(self.applied, Ordering::Release);
        self.stats
            .primary_durable
            .store(durable_lsn, Ordering::Release);
        Ok(())
    }

    /// Rebuilds local state from a snapshot payload.
    fn bootstrap(&mut self, payload: bytes::Bytes) -> Result<()> {
        let (image, entries) = decode_snapshot(payload)?;
        let gate = Arc::clone(&self.gate);
        let _exclusive = gate.write();
        // The image's cut is transaction-safe: any transaction this
        // replay had half-buffered is either fully inside the image or
        // will be re-streamed above its base.
        self.replay.clear();
        clear_all_rows(self.bf.db())?;
        self.pending.clear();
        for entry in entries {
            if entry.seq < self.apply_seq {
                continue; // already in the local catalog
            }
            if entry.apply_at_lsn <= image.base_lsn {
                debug_assert_eq!(entry.seq, self.apply_seq);
                apply_ddl_event(&self.bf, &entry.event)?;
                self.apply_seq = entry.seq + 1;
                self.stats.ddl_applied.fetch_add(1, Ordering::Release);
            } else {
                self.recv_seq = self.recv_seq.max(entry.seq + 1);
                self.pending.push(entry);
            }
        }
        self.recv_seq = self.recv_seq.max(self.apply_seq);
        let (placed, _skipped) = apply_image_tolerant(self.bf.db(), &image)?;
        self.stats
            .records_applied
            .fetch_add(placed as u64, Ordering::Release);
        let marked = mark_granules(&self.bf, &image.migrated);
        self.stats
            .granules_mirrored
            .fetch_add(marked as u64, Ordering::Release);
        self.applied = image.base_lsn;
        self.stats
            .applied_lsn
            .store(self.applied, Ordering::Release);
        self.stats.snapshots.fetch_add(1, Ordering::Release);
        Ok(())
    }
}

/// A live replica: the apply thread plus its shared state.
pub struct Replica {
    bf: Arc<Bullfrog>,
    gate: Arc<RwLock<()>>,
    stats: Arc<ReplicaStats>,
    epoch: Arc<EpochStore>,
    /// Flipped by [`Replica::promote`]; shared with every [`ReadOnly`]
    /// session so promotion takes effect without reconnects.
    writable: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    primary: Arc<Mutex<String>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Replica {
    /// Starts replicating `bf` (which should be a fresh, empty
    /// controller — the whole catalog and heap arrive from the primary)
    /// from the primary at `primary_addr`. The fencing epoch is held in
    /// memory only; use [`Replica::start_with_epoch`] to survive
    /// restarts.
    pub fn start(primary_addr: impl Into<String>, bf: Arc<Bullfrog>) -> Replica {
        Replica::start_with_epoch(primary_addr, bf, EpochStore::volatile())
    }

    /// [`Replica::start`] with a persistent [`EpochStore`], so a
    /// promoted-then-restarted node keeps its bumped epoch.
    pub fn start_with_epoch(
        primary_addr: impl Into<String>,
        bf: Arc<Bullfrog>,
        epoch: Arc<EpochStore>,
    ) -> Replica {
        let gate = Arc::new(RwLock::new(()));
        let stats = Arc::new(ReplicaStats::default());
        stats.epoch.store(epoch.epoch(), Ordering::Release);
        let stop = Arc::new(AtomicBool::new(false));
        let primary = Arc::new(Mutex::new(primary_addr.into()));
        let state = ApplyState {
            bf: Arc::clone(&bf),
            gate: Arc::clone(&gate),
            stats: Arc::clone(&stats),
            epoch: Arc::clone(&epoch),
            replay: StreamingReplay::new(),
            applied: 0,
            recv_seq: 0,
            apply_seq: 0,
            pending: Vec::new(),
        };
        let thread = {
            let stop = Arc::clone(&stop);
            let primary = Arc::clone(&primary);
            std::thread::Builder::new()
                .name("bf-repl-apply".into())
                .spawn(move || apply_loop(state, &stop, &primary))
                .expect("spawn replica apply thread")
        };
        Replica {
            bf,
            gate,
            stats,
            epoch,
            writable: Arc::new(AtomicBool::new(false)),
            stop,
            primary,
            thread: Some(thread),
        }
    }

    /// The [`ReadOnly`] config that serves this replica over TCP:
    /// sessions share the apply gate and report `repl.*` counters.
    pub fn read_only(&self) -> ReadOnly {
        let stats = Arc::clone(&self.stats);
        ReadOnly {
            primary: self.primary.lock().clone(),
            gate: Arc::clone(&self.gate),
            status: Some(Arc::new(move || stats.pairs())),
            writable: Arc::clone(&self.writable),
        }
    }

    /// This node's fencing epoch store.
    pub fn epoch_store(&self) -> &Arc<EpochStore> {
        &self.epoch
    }

    /// Promotes this replica to primary: stops the apply loop, bumps
    /// the fencing epoch (persisted to the sidecar *and* logged as a
    /// durable WAL record, so the bump survives restore by either
    /// path), respawns background migration sweepers for any mid-flight
    /// migration mirrored from the old primary, and flips the served
    /// sessions to writable. Returns the new epoch.
    ///
    /// The caller (the HA follower loop, or an operator via
    /// `repld promote`) is responsible for only doing this once the old
    /// primary's lease has verifiably lapsed and a majority granted the
    /// epoch bump — promotion itself is mechanical.
    pub fn promote(&mut self) -> Result<u64> {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let new_epoch = self.epoch.bump()?;
        self.stats.epoch.store(new_epoch, Ordering::Release);
        // A synthetic committed transaction carrying the epoch: replay
        // and restore both pick it up even if the sidecar file is lost.
        // The id cannot collide with live transactions (allocation is
        // monotonically increasing from 1).
        let txn = TxnId(u64::MAX);
        self.bf.db().wal().append_batch_durable([
            LogRecord::Begin(txn),
            LogRecord::Epoch {
                txn,
                epoch: new_epoch,
            },
            LogRecord::Commit(txn),
        ]);
        // Mid-flight lazy migrations mirrored from the old primary now
        // belong to this node: restart their background sweepers.
        self.bf.respawn_background();
        self.writable.store(true, Ordering::Release);
        self.stats.promoted.store(1, Ordering::Release);
        Ok(new_epoch)
    }

    /// True once [`Replica::promote`] has run.
    pub fn is_promoted(&self) -> bool {
        self.writable.load(Ordering::Acquire)
    }

    /// Progress counters.
    pub fn stats(&self) -> &Arc<ReplicaStats> {
        &self.stats
    }

    /// The apply gate (write-held around each applied transaction).
    pub fn gate(&self) -> &Arc<RwLock<()>> {
        &self.gate
    }

    /// Repoints the replica at a different (restarted/moved) primary;
    /// takes effect on the next connection attempt.
    pub fn set_primary(&self, addr: impl Into<String>) {
        *self.primary.lock() = addr.into();
    }

    /// Blocks until the applied LSN reaches `target` or `timeout`
    /// elapses; true on success.
    pub fn wait_caught_up(&self, target: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.stats.applied_lsn.load(Ordering::Acquire) < target {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Stops the apply thread and joins it.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("primary", &*self.primary.lock())
            .field(
                "applied_lsn",
                &self.stats.applied_lsn.load(Ordering::Acquire),
            )
            .finish()
    }
}

fn connect(addr: &str) -> Result<TcpStream> {
    let stream =
        TcpStream::connect(addr).map_err(|e| Error::Eval(format!("connect {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut stream = stream;
    wire::write_preamble(&mut stream).map_err(|e| Error::Eval(format!("preamble: {e}")))?;
    Ok(stream)
}

fn request(stream: &mut TcpStream, req: &Request) -> Result<Response> {
    wire::write_frame(stream, &req.encode()).map_err(|e| Error::Eval(format!("send: {e}")))?;
    let payload = wire::read_frame(stream)?
        .ok_or_else(|| Error::Eval("primary closed the connection".into()))?;
    Response::decode(payload)
}

/// One subscription attempt's outcome.
enum Attempt {
    /// Stream ended (disconnect or shutdown): reconnect after backoff.
    Reconnect,
    /// The primary demands a snapshot bootstrap first.
    SnapshotRequired,
}

fn apply_loop(mut state: ApplyState, stop: &AtomicBool, primary: &Arc<Mutex<String>>) {
    let mut backoff = BACKOFF_MIN;
    let mut first = true;
    // Jitter source; seeding from the clock is fine — it only has to
    // decorrelate replicas that lost the same primary at the same time.
    let seed = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Start of the current disconnected stretch.
    let mut down_since = Instant::now();
    while !stop.load(Ordering::Acquire) {
        if !first {
            state.stats.reconnects.fetch_add(1, Ordering::Release);
        }
        first = false;
        let addr = primary.lock().clone();
        // Heartbeats arrive every ~250ms while subscribed, so any frame
        // received proves the attempt actually streamed.
        let frames_before = state.stats.frames_seen.load(Ordering::Acquire);
        if let Ok(Attempt::SnapshotRequired) = subscribe_once(&mut state, &addr, stop) {
            if bootstrap_once(&mut state, &addr).is_ok() {
                backoff = BACKOFF_MIN;
                down_since = Instant::now();
                state.stats.stalled.store(0, Ordering::Release);
                continue; // resubscribe immediately from the new base
            }
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
        if state.stats.frames_seen.load(Ordering::Acquire) != frames_before {
            // The attempt streamed before dying: restart the outage
            // clock and the backoff schedule.
            down_since = Instant::now();
            backoff = BACKOFF_MIN;
            state.stats.stalled.store(0, Ordering::Release);
        } else if down_since.elapsed() >= BACKOFF_MAX_ELAPSED {
            // Max-elapsed cap: stop growing, flag the stall, and settle
            // into slow polling (an HA follower loop watches this gauge
            // when deciding whether the primary is really gone).
            state.stats.stalled.store(1, Ordering::Release);
            backoff = BACKOFF_MAX;
        }
        // Full jitter over [backoff/2, backoff): herds of replicas that
        // lost the same primary spread their reconnect attempts.
        let half = backoff.as_millis().max(2) as u64 / 2;
        std::thread::sleep(Duration::from_millis(half + rng.gen_range(0..half.max(1))));
        backoff = (backoff * 2).min(BACKOFF_MAX);
    }
}

fn subscribe_once(state: &mut ApplyState, addr: &str, stop: &AtomicBool) -> Result<Attempt> {
    let mut stream = connect(addr)?;
    // Heartbeats arrive every ~250ms; a silence this long means the
    // primary is gone (or the stream desynced), and a timed-out
    // `read_exact` may have consumed a partial frame either way — the
    // only safe continuation is a fresh connection.
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    let reply = request(
        &mut stream,
        &Request::Subscribe {
            from_lsn: state.applied,
            ddl_seq: state.recv_seq,
            epoch: state.epoch.epoch(),
        },
    )?;
    match reply {
        Response::Ok { .. } => {}
        Response::Err { code, message, .. } if code == err_code::SNAPSHOT_REQUIRED => {
            let _ = message;
            return Ok(Attempt::SnapshotRequired);
        }
        Response::Err { message, .. } => {
            return Err(Error::Eval(format!("subscribe rejected: {message}")));
        }
        other => {
            return Err(Error::Eval(format!("unexpected subscribe reply {other:?}")));
        }
    }
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(Attempt::Reconnect);
        }
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(Attempt::Reconnect),
            Err(_) => return Ok(Attempt::Reconnect),
        };
        match Response::decode(payload)? {
            Response::Frames {
                durable_lsn,
                ddl,
                records,
                epoch,
            } => {
                let own = state.epoch.epoch();
                if epoch < own {
                    // Fencing: a sender behind our epoch is a zombie
                    // ex-primary — never apply its frames.
                    return Err(Error::Eval(format!(
                        "rejecting frames from stale-epoch sender ({epoch} < {own})"
                    )));
                }
                if epoch > own {
                    // Adopt (and persist) the cluster's higher epoch.
                    state.epoch.observe(epoch)?;
                    state.stats.epoch.store(epoch, Ordering::Release);
                }
                state.stats.frames_seen.fetch_add(1, Ordering::Release);
                state.apply_frames(durable_lsn, ddl, records)?;
                let ack = Request::ReplAck {
                    lsn: state.applied,
                    epoch: state.epoch.epoch(),
                };
                if wire::write_frame(&mut stream, &ack.encode()).is_err() {
                    return Ok(Attempt::Reconnect);
                }
            }
            Response::Err { code, .. } if code == err_code::SNAPSHOT_REQUIRED => {
                return Ok(Attempt::SnapshotRequired);
            }
            other => {
                return Err(Error::Eval(format!("unexpected stream frame {other:?}")));
            }
        }
    }
}

fn bootstrap_once(state: &mut ApplyState, addr: &str) -> Result<()> {
    let mut stream = connect(addr)?;
    match request(&mut stream, &Request::Snapshot)? {
        Response::Snapshot { payload } => state.bootstrap(payload),
        Response::Err { message, .. } => Err(Error::Eval(format!("snapshot refused: {message}"))),
        other => Err(Error::Eval(format!("unexpected snapshot reply {other:?}"))),
    }
}
