//! bullfrog-repl: physical replication by WAL shipping.
//!
//! The paper's migrations are only "online" if the whole database is:
//! this crate adds the availability half — read-only replicas that stay
//! live through schema changes, and a primary that can restart without
//! losing them. The pieces:
//!
//! - [`ReplicationSender`] — primary-side hooks
//!   ([`ReplicationHooks`](bullfrog_net::ReplicationHooks)) plugged into
//!   the TCP server: streams committed log frames below the merged
//!   durable horizon, serves bootstrap snapshots (checkpoint image +
//!   DDL journal), and journals every DDL statement with its WAL apply
//!   point. Subscriptions pin the log with retain horizons
//!   ([`Wal::register_retain`](bullfrog_txn::Wal)) so checkpoint
//!   truncation never cuts a tail a connected replica still needs.
//! - [`DdlJournal`] — the catalog side-channel. DDL is not WAL-logged;
//!   the journal records each statement with `apply_at_lsn`, the log
//!   position at which a mirror must replay it, which keeps replica
//!   [`TableId`](bullfrog_common::TableId)s and lazy-migration tracker
//!   shapes identical to the primary's.
//! - [`Replica`] — connects, bootstraps from a snapshot when its resume
//!   point has been truncated away, applies the frame stream
//!   transaction-at-a-time under an apply gate, mirrors mid-flight
//!   migration tracker state from shipped granule records, serves
//!   read-only `SELECT`s meanwhile, and reconnects with bounded
//!   exponential backoff.
//! - [`restore`] — primary restart from WAL + sidecar + journal,
//!   rebuilding catalog, heaps, and in-flight migration trackers so
//!   replicas can reattach (resuming, or re-bootstrapping if the log
//!   base moved past their applied LSN).
//!
//! See `DESIGN.md` (§ bullfrog-repl) for the protocol and the
//! durability reasoning.

pub mod apply;
pub mod journal;
pub mod replica;
pub mod restore;
pub mod sender;

pub use journal::{DdlJournal, JournalEntry};
pub use replica::{Replica, ReplicaStats};
pub use restore::{restore, RestoreReport};
pub use sender::ReplicationSender;
