//! Primary restart: rebuild a [`Bullfrog`] controller — catalog, heap,
//! and in-flight migration trackers — from its on-disk trio: the
//! sharded WAL, the checkpoint sidecar image, and the DDL journal.
//!
//! Plain engine recovery ([`bullfrog_engine::recovery`]) rebuilds heaps
//! but expects the caller to re-create the catalog, because DDL is not
//! WAL-logged. A replication primary has its DDL journal instead:
//! [`restore`] interleaves journal events with the log tail at their
//! recorded apply points (exactly like a replica applying a stream),
//! which also rebuilds the lazy-migration bitmap/hashmap trackers from
//! committed `MigrationGranule` records (paper §3.5). The restored
//! controller resumes on the same WAL files — the reopened log's
//! frontier continues past the on-disk records — so reconnecting
//! replicas either resume from their acked LSN or, if a checkpoint had
//! truncated past it, re-bootstrap from a snapshot.
//!
//! Restored mid-flight migrations resume their background sweeps: once
//! the trackers are rebuilt from committed `MigrationGranule` records,
//! [`restore`] respawns the sweeper threads (per the controller's
//! background config), so a restarted primary finishes its migration
//! even with no client traffic at all.

use std::path::Path;
use std::sync::Arc;

use bullfrog_common::Result;
use bullfrog_core::Bullfrog;
use bullfrog_engine::checkpoint::checkpoint_path_for;
use bullfrog_engine::recovery::StreamingReplay;
use bullfrog_engine::{CheckpointImage, Database, DbConfig};
use bullfrog_txn::{Wal, WalOptions};

use crate::apply::{apply_ddl_event, apply_image_tolerant, mark_granules};
use crate::journal::DdlJournal;

/// What [`restore`] rebuilt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Rows placed from the checkpoint image.
    pub image_rows: usize,
    /// Image rows skipped (tables since dropped).
    pub image_rows_skipped: usize,
    /// Data records applied from the log tail.
    pub tail_records: usize,
    /// Transactions the tail committed.
    pub tail_txns: usize,
    /// DDL journal events re-applied.
    pub ddl_applied: usize,
    /// Migration granules marked in rebuilt trackers.
    pub granules: usize,
    /// First LSN of the replayed tail (the image's base).
    pub start_lsn: u64,
    /// One past the last contiguous tail record.
    pub end_lsn: u64,
    /// Restored fencing epoch: the max of the `.epoch` sidecar and any
    /// `Epoch` record in the on-disk log, persisted back to the
    /// sidecar — a promoted node keeps its bumped epoch across restore.
    pub epoch: u64,
}

/// Rebuilds a primary from `wal_path`'s WAL shards, checkpoint sidecar,
/// and DDL journal, returning the controller (resumed on the same WAL
/// files) and the journal (hand both to a
/// [`ReplicationSender`](crate::ReplicationSender) to resume serving
/// replicas).
pub fn restore(
    wal_path: &Path,
    config: DbConfig,
    wal_opts: WalOptions,
) -> Result<(Arc<Bullfrog>, Arc<DdlJournal>, RestoreReport)> {
    let journal = Arc::new(DdlJournal::open(DdlJournal::path_for(wal_path))?);
    let ckpt_path = checkpoint_path_for(wal_path);
    let mut image = match std::fs::read(&ckpt_path) {
        Ok(bytes) => CheckpointImage::decode(bytes)?,
        Err(_) => CheckpointImage::new(),
    };

    // Longest LSN-contiguous tail from the image's base. Shards flush
    // independently, so a crash can leave a gap; records above the first
    // gap belong to transactions whose commit never acknowledged (the
    // ack gate waits on the *merged* horizon), and replicas never saw
    // them either (frames ship below the same horizon).
    let on_disk = if wal_path.exists() {
        Wal::load_sharded(wal_path)?
    } else {
        Vec::new() // fresh primary: nothing to restore
    };
    // Fencing epoch: the sidecar merged with every `Epoch` record on
    // disk — including records past a cross-shard gap, because an
    // epoch, once observed, must never regress even if the surrounding
    // commit never acknowledged. Persist the merge back immediately so
    // the sidecar alone is authoritative from here on.
    let epoch_store = bullfrog_txn::EpochStore::open(wal_path)?;
    let wal_epoch = on_disk
        .iter()
        .filter_map(|(_, r)| match r {
            bullfrog_txn::LogRecord::Epoch { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    epoch_store.observe(wal_epoch)?;

    let mut tail: Vec<(u64, bullfrog_txn::LogRecord)> = Vec::new();
    let mut next = image.base_lsn;
    for (lsn, rec) in on_disk {
        if lsn < next {
            continue; // already inside the image
        }
        if lsn > next {
            break; // cross-shard gap: stop at the recoverable prefix
        }
        tail.push((lsn, rec));
        next += 1;
    }

    let db = Arc::new(Database::with_wal_file_opts(config, wal_path, wal_opts)?);
    // The reopened log resumes appending past every on-disk record —
    // including any beyond a cross-shard gap — and retains nothing below
    // that point in memory. Sample it now (no writers yet): it is the
    // restored image's cut, so a snapshot covers everything the log no
    // longer serves and a reconnecting replica never loops between
    // SNAPSHOT_REQUIRED and a snapshot that ends short of the log base.
    let resume_frontier = db.wal().frontier();
    let bf = Arc::new(Bullfrog::new(Arc::clone(&db)));
    let mut report = RestoreReport {
        start_lsn: image.base_lsn,
        end_lsn: next,
        epoch: epoch_store.epoch(),
        ..RestoreReport::default()
    };

    // 1. Catalog as of the image: journal events at or below its base.
    let entries = journal.entries();
    let mut pending = entries.iter().peekable();
    while let Some(e) = pending.peek() {
        if e.apply_at_lsn > image.base_lsn {
            break;
        }
        apply_ddl_event(&bf, &e.event)?;
        report.ddl_applied += 1;
        pending.next();
    }

    // 2. The image's rows and migrated granules.
    let (placed, skipped) = apply_image_tolerant(&db, &image)?;
    report.image_rows = placed;
    report.image_rows_skipped = skipped;
    report.granules += mark_granules(&bf, &image.migrated);

    // 3. The tail, interleaving the remaining journal events at their
    // apply points — the same txn-at-a-time streaming apply a replica
    // uses, so transactions straddling a DDL boundary buffer across it.
    let mut replay = StreamingReplay::new();
    for (lsn, rec) in &tail {
        while let Some(e) = pending.peek() {
            if e.apply_at_lsn > *lsn {
                break;
            }
            apply_ddl_event(&bf, &e.event)?;
            report.ddl_applied += 1;
            pending.next();
        }
        let out = replay.apply(&db, rec)?;
        report.tail_records += out.applied;
        if out.committed {
            report.tail_txns += 1;
        }
        report.granules += mark_granules(&bf, &out.granules);
    }
    // Journal events past the last record (DDL was the final act).
    for e in pending {
        apply_ddl_event(&bf, &e.event)?;
        report.ddl_applied += 1;
    }

    // 4. Fold the replayed tail into the image and seed the
    // checkpointer, so the next checkpoint builds on restored state
    // instead of re-reading a log prefix that may partially truncate.
    // Transactions left unfinished at the crash never commit (their
    // writers are gone), so the full tail is a transaction-safe delta;
    // records between the tail's end and the resume frontier (past a
    // gap) belong to commits that never acknowledged and are dropped.
    let tail_records: Vec<bullfrog_txn::LogRecord> = tail.into_iter().map(|(_, r)| r).collect();
    image.absorb(&tail_records, report.end_lsn.max(resume_frontier));
    db.checkpointer().seed(image);

    // 5. The crash dropped the previous process's background sweeper
    // threads; restart them from the rebuilt trackers so an in-flight
    // migration completes without depending on client traffic.
    bf.respawn_background();

    Ok((bf, journal, report))
}
