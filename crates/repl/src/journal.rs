//! The DDL journal: replication's catalog side-channel.
//!
//! BullFrog does not WAL-log DDL — recovery re-creates the catalog from
//! the caller's schema, and a migration's logical flip is an in-memory
//! controller state change. A replica has no caller, so the primary
//! journals every successful DDL statement here: the statement text
//! (re-parsed and re-executed on the replica through the same code path
//! the primary used) plus, for migrations, the primary's tracker
//! dimensions (see [`DdlEvent::Migrate`](bullfrog_net::DdlEvent)).
//!
//! Each entry carries `apply_at_lsn`, the WAL frontier sampled *before*
//! the DDL executed under the journal lock. Any log record that depends
//! on the DDL (an insert into the new table, a migration granule) was
//! necessarily appended at or after that frontier, so a replica that
//! applies the event once its applied LSN reaches `apply_at_lsn` — and
//! never earlier — sees the catalog exactly as the primary's log writers
//! did. The journal lock serializes DDL, so journal order is catalog
//! order and [`TableId`](bullfrog_common::TableId)s assigned by replay
//! match the primary's.
//!
//! The journal is append-only and never truncated: checkpoints compact
//! row history, but catalog history stays (it is tiny — one frame per
//! DDL statement, fsynced per append on file-backed journals).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bullfrog_common::{Error, Result};
use bullfrog_engine::CheckpointImage;
use bullfrog_net::DdlEvent;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

/// Magic prefix of journal files.
const DDL_MAGIC: [u8; 6] = *b"BFDDL1";

/// Magic prefix of encoded snapshots ([`encode_snapshot`]).
const SNAP_MAGIC: [u8; 7] = *b"BFSNAP1";

/// One journaled DDL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Dense sequence number, starting at 0.
    pub seq: u64,
    /// Apply once the replica's applied LSN reaches this (the primary's
    /// WAL frontier just before the DDL executed).
    pub apply_at_lsn: u64,
    /// The statement.
    pub event: DdlEvent,
}

/// Encodes one event as an opaque payload (the form shipped in
/// [`WireDdl`](bullfrog_net::WireDdl) and stored in journal files).
pub fn encode_event(event: &DdlEvent) -> Bytes {
    let mut buf = BytesMut::new();
    match event {
        DdlEvent::Create { sql } => {
            buf.put_u8(0);
            put_str(&mut buf, sql);
        }
        DdlEvent::Migrate { sql, caps } => {
            buf.put_u8(1);
            put_str(&mut buf, sql);
            buf.put_u32(caps.len() as u32);
            for (rows, granule) in caps {
                buf.put_u64(*rows);
                buf.put_u64(*granule);
            }
        }
        DdlEvent::Finalize { sql } => {
            buf.put_u8(2);
            put_str(&mut buf, sql);
        }
    }
    buf.freeze()
}

/// Decodes an event payload.
pub fn decode_event(mut payload: Bytes) -> Result<DdlEvent> {
    if payload.is_empty() {
        return Err(Error::Eval("empty DDL event".into()));
    }
    let tag = payload.get_u8();
    match tag {
        0 => Ok(DdlEvent::Create {
            sql: get_str(&mut payload)?,
        }),
        1 => {
            let sql = get_str(&mut payload)?;
            let n = get_u32(&mut payload)? as usize;
            let mut caps = Vec::with_capacity(n);
            for _ in 0..n {
                caps.push((get_u64(&mut payload)?, get_u64(&mut payload)?));
            }
            Ok(DdlEvent::Migrate { sql, caps })
        }
        2 => Ok(DdlEvent::Finalize {
            sql: get_str(&mut payload)?,
        }),
        other => Err(Error::Eval(format!("unknown DDL event tag {other}"))),
    }
}

fn encode_entry(entry: &JournalEntry) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64(entry.seq);
    buf.put_u64(entry.apply_at_lsn);
    let event = encode_event(&entry.event);
    buf.put_u32(event.len() as u32);
    buf.extend_from_slice(&event);
    buf.freeze()
}

fn decode_entry(mut payload: Bytes) -> Result<JournalEntry> {
    let seq = get_u64(&mut payload)?;
    let apply_at_lsn = get_u64(&mut payload)?;
    let len = get_u32(&mut payload)? as usize;
    if payload.len() < len {
        return Err(Error::Eval("truncated DDL journal entry".into()));
    }
    let event = decode_event(payload.slice(..len))?;
    Ok(JournalEntry {
        seq,
        apply_at_lsn,
        event,
    })
}

struct JournalInner {
    entries: Vec<JournalEntry>,
    file: Option<File>,
}

/// Append-only DDL journal, optionally file-backed (`<wal>.ddl`).
pub struct DdlJournal {
    inner: Mutex<JournalInner>,
}

impl DdlJournal {
    /// An in-memory journal (primaries without a WAL file — tests).
    pub fn in_memory() -> Self {
        DdlJournal {
            inner: Mutex::new(JournalInner {
                entries: Vec::new(),
                file: None,
            }),
        }
    }

    /// The journal path that pairs with a WAL path.
    pub fn path_for(wal_path: &Path) -> PathBuf {
        wal_path.with_extension("ddl")
    }

    /// Opens (or creates) a file-backed journal, loading every complete
    /// entry. A torn final frame (crash mid-append) is dropped — the DDL
    /// it described never acknowledged, matching WAL torn-tail handling.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| Error::Eval(format!("open DDL journal {path:?}: {e}")))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)
            .map_err(|e| Error::Eval(format!("read DDL journal {path:?}: {e}")))?;
        let mut entries = Vec::new();
        if raw.is_empty() {
            file.write_all(&DDL_MAGIC)
                .and_then(|()| file.sync_data())
                .map_err(|e| Error::Eval(format!("init DDL journal {path:?}: {e}")))?;
        } else {
            let mut buf = Bytes::from(raw);
            if buf.len() < DDL_MAGIC.len() || buf.slice(..DDL_MAGIC.len()) != DDL_MAGIC[..] {
                return Err(Error::Eval(format!("{path:?} is not a DDL journal")));
            }
            buf.advance(DDL_MAGIC.len());
            while buf.len() >= 4 {
                let len = u32::from_be_bytes(buf.slice(..4)[..].try_into().unwrap()) as usize;
                if buf.len() < 4 + len {
                    break; // torn tail
                }
                buf.advance(4);
                let entry = decode_entry(buf.slice(..len))?;
                buf.advance(len);
                if entry.seq != entries.len() as u64 {
                    return Err(Error::Eval(format!(
                        "DDL journal sequence gap: entry {} at position {}",
                        entry.seq,
                        entries.len()
                    )));
                }
                entries.push(entry);
            }
        }
        Ok(DdlJournal {
            inner: Mutex::new(JournalInner {
                entries,
                file: Some(file),
            }),
        })
    }

    /// Appends one event; returns its sequence number. File-backed
    /// journals fsync before returning — a journaled DDL survives the
    /// crash that follows it.
    pub fn append(&self, apply_at_lsn: u64, event: DdlEvent) -> Result<u64> {
        let mut inner = self.inner.lock();
        let seq = inner.entries.len() as u64;
        let entry = JournalEntry {
            seq,
            apply_at_lsn,
            event,
        };
        if let Some(file) = &mut inner.file {
            let payload = encode_entry(&entry);
            let mut frame = BytesMut::with_capacity(4 + payload.len());
            frame.put_u32(payload.len() as u32);
            frame.extend_from_slice(&payload);
            file.write_all(&frame)
                .and_then(|()| file.sync_data())
                .map_err(|e| Error::Eval(format!("append DDL journal: {e}")))?;
        }
        inner.entries.push(entry);
        Ok(seq)
    }

    /// Every entry, in sequence order.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.inner.lock().entries.clone()
    }

    /// Entries at or above `seq`.
    pub fn entries_from(&self, seq: u64) -> Vec<JournalEntry> {
        let inner = self.inner.lock();
        inner
            .entries
            .get(seq as usize..)
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// The next sequence number an append would get.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().entries.len() as u64
    }
}

impl std::fmt::Debug for DdlJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DdlJournal")
            .field("entries", &inner.entries.len())
            .field("file_backed", &inner.file.is_some())
            .finish()
    }
}

/// Encodes a bootstrap snapshot: the checkpoint image plus the full DDL
/// journal. The image is sampled *before* the journal (see
/// `ReplicationSender::snapshot`): a journal that is newer than the
/// image only adds events the replica defers by `apply_at_lsn`, whereas
/// an image newer than the journal could hold rows of a table whose
/// creation the replica never learns.
pub fn encode_snapshot(image: &CheckpointImage, entries: &[JournalEntry]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(&SNAP_MAGIC);
    let img = image.encode();
    buf.put_u32(img.len() as u32);
    buf.extend_from_slice(&img);
    buf.put_u32(entries.len() as u32);
    for e in entries {
        let payload = encode_entry(e);
        buf.put_u32(payload.len() as u32);
        buf.extend_from_slice(&payload);
    }
    buf.freeze()
}

/// Decodes [`encode_snapshot`]'s payload.
pub fn decode_snapshot(mut payload: Bytes) -> Result<(CheckpointImage, Vec<JournalEntry>)> {
    if payload.len() < SNAP_MAGIC.len() || payload.slice(..SNAP_MAGIC.len()) != SNAP_MAGIC[..] {
        return Err(Error::Eval("bad snapshot magic (want BFSNAP1)".into()));
    }
    payload.advance(SNAP_MAGIC.len());
    let img_len = get_u32(&mut payload)? as usize;
    if payload.len() < img_len {
        return Err(Error::Eval("truncated snapshot image".into()));
    }
    let image = CheckpointImage::decode(payload.slice(..img_len))?;
    payload.advance(img_len);
    let n = get_u32(&mut payload)? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let len = get_u32(&mut payload)? as usize;
        if payload.len() < len {
            return Err(Error::Eval("truncated snapshot journal entry".into()));
        }
        entries.push(decode_entry(payload.slice(..len))?);
        payload.advance(len);
    }
    Ok((image, entries))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(Error::Eval("truncated string in DDL event".into()));
    }
    let s = String::from_utf8(buf.slice(..len).to_vec())
        .map_err(|_| Error::Eval("DDL event string is not UTF-8".into()))?;
    buf.advance(len);
    Ok(s)
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.len() < 4 {
        return Err(Error::Eval("truncated u32 in DDL journal".into()));
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.len() < 8 {
        return Err(Error::Eval("truncated u64 in DDL journal".into()));
    }
    Ok(buf.get_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<DdlEvent> {
        vec![
            DdlEvent::Create {
                sql: "CREATE TABLE t (id INT, PRIMARY KEY (id))".into(),
            },
            DdlEvent::Migrate {
                sql: "CREATE TABLE t2 AS (SELECT id FROM t) PRIMARY KEY (id)".into(),
                caps: vec![(128, 8), (0, 0)],
            },
            DdlEvent::Finalize {
                sql: "FINALIZE MIGRATION DROP OLD".into(),
            },
        ]
    }

    #[test]
    fn events_round_trip() {
        for e in events() {
            assert_eq!(decode_event(encode_event(&e)).unwrap(), e);
        }
    }

    #[test]
    fn journal_survives_reopen() {
        let path = std::env::temp_dir().join(format!(
            "bf-ddl-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let j = DdlJournal::open(&path).unwrap();
            for (i, e) in events().into_iter().enumerate() {
                assert_eq!(j.append(10 * (i as u64 + 1), e).unwrap(), i as u64);
            }
            assert_eq!(j.next_seq(), 3);
        }
        let j = DdlJournal::open(&path).unwrap();
        let entries = j.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[1].seq, 1);
        assert_eq!(entries[1].apply_at_lsn, 20);
        assert_eq!(
            entries.iter().map(|e| e.event.clone()).collect::<Vec<_>>(),
            events()
        );
        assert_eq!(j.entries_from(2).len(), 1);
        // New appends continue the sequence.
        assert_eq!(
            j.append(
                40,
                DdlEvent::Create {
                    sql: "CREATE TABLE u (id INT, PRIMARY KEY (id))".into()
                }
            )
            .unwrap(),
            3
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_round_trips() {
        let mut image = CheckpointImage::new();
        image.base_lsn = 77;
        let entries: Vec<JournalEntry> = events()
            .into_iter()
            .enumerate()
            .map(|(i, event)| JournalEntry {
                seq: i as u64,
                apply_at_lsn: 5 * i as u64,
                event,
            })
            .collect();
        let (image2, entries2) = decode_snapshot(encode_snapshot(&image, &entries)).unwrap();
        assert_eq!(image2.base_lsn, 77);
        assert_eq!(entries2, entries);
    }
}
