//! repld: a minimal replication daemon for multi-process deployments.
//!
//! One binary, role per subcommand:
//!
//! - `repld primary --listen <addr> --wal-dir <dir>` — restore (or
//!   create) a file-backed primary from `<dir>/repld.wal` + sidecar +
//!   DDL journal, serve SQL and replication on `<addr>` until a remote
//!   `SHUTDOWN`.
//! - `repld replica --listen <addr> --primary <addr>` — read-only
//!   replica: bootstraps/subscribes to the primary, serves `SELECT`s on
//!   `<addr>`, rejects writes with the READ_ONLY error code.
//! - `repld status --addr <addr>` — print the server's `STATUS` pairs.
//! - `repld wait-zero-lag --addr <addr> [--timeout-secs N]` — poll
//!   `STATUS` until replication lag is zero (on a primary: at least one
//!   replica connected and fully acked); exit non-zero on timeout.
//! - `repld shutdown --addr <addr>` — remote graceful shutdown.
//!
//! The verify script drives a two-process loopback pair through this
//! binary; it is also the smallest real deployment shape.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_core::Bullfrog;
use bullfrog_engine::{CheckpointPolicy, Database, DbConfig};
use bullfrog_net::{Client, Server, ServerConfig};
use bullfrog_repl::{restore, Replica, ReplicationSender};
use bullfrog_txn::WalOptions;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_exit();
    }
    let cmd = args.remove(0);
    let mut opts = std::collections::HashMap::new();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")));
        opts.insert(flag, value);
    }
    let get = |name: &str| -> String {
        opts.get(name)
            .cloned()
            .unwrap_or_else(|| fail(&format!("{cmd} requires {name}")))
    };
    match cmd.as_str() {
        "primary" => run_primary(&get("--listen"), &get("--wal-dir")),
        "replica" => run_replica(&get("--listen"), &get("--primary")),
        "status" => {
            let mut client = connect(&get("--addr"));
            let status = client
                .status()
                .unwrap_or_else(|e| fail(&format!("STATUS: {e}")));
            for (k, v) in status {
                println!("{k} = {v}");
            }
        }
        "wait-zero-lag" => {
            let timeout = opts
                .get("--timeout-secs")
                .map(|v| {
                    v.parse()
                        .unwrap_or_else(|_| fail("--timeout-secs must be numeric"))
                })
                .unwrap_or(30);
            wait_zero_lag(&get("--addr"), Duration::from_secs(timeout));
        }
        "shutdown" => {
            let mut client = connect(&get("--addr"));
            client
                .shutdown_server()
                .unwrap_or_else(|e| fail(&format!("SHUTDOWN: {e}")));
            println!("repld: shutdown acknowledged");
        }
        _ => usage_exit(),
    }
}

fn run_primary(listen: &str, wal_dir: &str) {
    let dir = std::path::PathBuf::from(wal_dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("create {wal_dir}: {e}")));
    let wal_path = dir.join("repld.wal");
    let config = DbConfig {
        checkpoint_policy: Some(CheckpointPolicy {
            max_resident_records: 4_096,
            max_flushed_bytes: 0,
            poll_interval: Duration::from_millis(50),
        }),
        ..DbConfig::default()
    };
    // restore() handles the empty-directory case too: no sidecar, no
    // journal, empty WAL — a fresh primary.
    let (bf, journal, report) = restore(&wal_path, config, WalOptions::default())
        .unwrap_or_else(|e| fail(&format!("restore from {wal_dir}: {e}")));
    if report.tail_records > 0 || report.image_rows > 0 || report.ddl_applied > 0 {
        println!(
            "repld: restored {} image rows + {} tail records ({} txns), {} DDL events, \
             {} granules, log [{}, {})",
            report.image_rows,
            report.tail_records,
            report.tail_txns,
            report.ddl_applied,
            report.granules,
            report.start_lsn,
            report.end_lsn,
        );
    }
    let sender = ReplicationSender::new(Arc::clone(&bf), Arc::clone(&journal));
    let mut server = Server::bind(
        listen,
        bf,
        ServerConfig {
            replication: Some(sender),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("bind {listen}: {e}")));
    println!("repld: primary serving on {}", server.local_addr());
    server.wait_shutdown();
    println!("repld: primary stopped");
}

fn run_replica(listen: &str, primary: &str) {
    let bf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let mut replica = Replica::start(primary.to_string(), Arc::clone(&bf));
    let mut server = Server::bind(
        listen,
        bf,
        ServerConfig {
            read_only: Some(replica.read_only()),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("bind {listen}: {e}")));
    println!(
        "repld: replica serving on {} (primary {primary})",
        server.local_addr()
    );
    server.wait_shutdown();
    replica.shutdown();
    println!("repld: replica stopped");
}

/// Polls `STATUS` until replication lag reads zero. On a primary that
/// additionally requires a connected, fully-acked replica; on a replica
/// it requires the applied LSN to have reached the primary's durable
/// horizon.
fn wait_zero_lag(addr: &str, timeout: Duration) {
    let mut client = connect(addr);
    let deadline = Instant::now() + timeout;
    let mut last = Vec::new();
    loop {
        let status = client
            .status()
            .unwrap_or_else(|e| fail(&format!("STATUS: {e}")));
        let get = |key: &str| status.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        let settled = if get("repl.role_primary") == Some(1) {
            get("repl.replicas").unwrap_or(0) >= 1 && get("repl.lag_lsns") == Some(0)
        } else if get("repl.role_replica") == Some(1) {
            get("repl.lag_lsns") == Some(0)
        } else {
            fail(&format!(
                "{addr} reports no repl.* role — not a replication node"
            ))
        };
        if settled {
            println!("repld: zero lag at {addr}");
            return;
        }
        if Instant::now() >= deadline {
            fail(&format!(
                "timed out waiting for zero lag at {addr}: {last:?}"
            ));
        }
        last = status
            .into_iter()
            .filter(|(k, _)| k.starts_with("repl."))
            .collect();
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("repld: {msg}");
    std::process::exit(1);
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: repld primary --listen <addr> --wal-dir <dir>\n\
         \x20      repld replica --listen <addr> --primary <addr>\n\
         \x20      repld status --addr <addr>\n\
         \x20      repld wait-zero-lag --addr <addr> [--timeout-secs N]\n\
         \x20      repld shutdown --addr <addr>"
    );
    std::process::exit(2);
}
