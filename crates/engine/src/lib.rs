//! The OLTP engine: a transactional database facade over the storage,
//! lock, and query crates.
//!
//! [`Database`] exposes:
//!
//! - DDL: `create_table`, `create_index`, `drop_table`, `rename_table`;
//! - transactional DML under strict 2PL: `insert`, `update`, `delete`,
//!   point reads and predicate `select`s (index-assisted), with undo-based
//!   rollback and redo WAL;
//! - FK / unique / CHECK enforcement;
//! - [`exec`]: execution of [`SelectSpec`](bullfrog_query::SelectSpec)s —
//!   filters, inner equi-joins, grouped aggregation — used both by client
//!   read queries and by the migration machinery in `bullfrog-core`;
//! - WAL-based recovery (`recovery`) and checkpointing (`checkpoint`):
//!   the commit path rides the WAL's group-commit barrier, and
//!   [`Database::checkpoint`](db::Database::checkpoint) bounds log memory
//!   by snapshotting the committed prefix and truncating the log.
//!
//! ## Isolation
//!
//! The engine provides read-committed isolation with strict 2PL writes:
//! writers hold X row locks until commit; readers take S row locks and
//! re-validate after acquisition, so they never observe uncommitted data.
//! Predicate (phantom) locking is not implemented — the paper's workloads
//! do not require serializable isolation, and neither do the migration
//! algorithms (they have their own exactly-once tracking).

pub mod checkpoint;
pub mod db;
pub mod exec;
pub mod fk;
pub mod recovery;
pub mod scheduler;

pub use checkpoint::{CheckpointImage, CheckpointStats, Checkpointer};
pub use db::{Database, DbConfig, EngineMode, LockPolicy};
pub use exec::QueryOutput;
pub use scheduler::{CheckpointPolicy, CheckpointScheduler, SchedulerStatus};
