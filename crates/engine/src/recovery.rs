//! WAL replay.
//!
//! Crash recovery in two passes over the log: first find the committed
//! transactions, then apply their data records in log order. Records of
//! uncommitted/aborted transactions are ignored (the log is redo-only; the
//! in-memory heaps die with the process, so there is nothing to undo).
//!
//! DDL is not logged: the caller re-creates the catalog (same tables, same
//! creation order, so [`TableId`](bullfrog_common::TableId)s match) before replaying, exactly like
//! restoring a schema dump before applying the log.
//!
//! `MigrationGranule` records of committed transactions are returned to the
//! caller; `bullfrog-core` uses them to rebuild its bitmap/hashmap trackers
//! (paper §3.5 — listed there as unimplemented future work).

use std::collections::{HashMap, HashSet};
use std::path::Path;

use bullfrog_common::{Result, TxnId};
use bullfrog_txn::wal::GranuleKey;
use bullfrog_txn::{LogRecord, Wal};
use bytes::Bytes;

use crate::checkpoint::CheckpointImage;
use crate::db::Database;

/// Outcome of a replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Number of committed transactions found.
    pub committed_txns: usize,
    /// Number of data records applied.
    pub applied: usize,
    /// Migration granules whose migration committed: `(migration id, key)`.
    pub migrated_granules: Vec<(u32, GranuleKey)>,
    /// Highest committed fencing epoch in the log (0 = none logged).
    /// Recovery surfaces it so a restored primary can never regress
    /// below an epoch it already promoted to, even without the sidecar.
    pub max_epoch: u64,
}

/// Replays `records` into `db` (whose catalog must already hold the same
/// tables, created in the same order as the original).
pub fn replay(db: &Database, records: &[LogRecord]) -> Result<RecoveryStats> {
    let committed: HashSet<TxnId> = records
        .iter()
        .filter_map(|r| if r.is_commit() { Some(r.txn()) } else { None })
        .collect();
    // Snapshot-mode logs carry commit timestamps; fast-forward the oracle
    // past the highest one so post-recovery commits never reuse a
    // persisted timestamp.
    if let Some(max_ts) = records.iter().filter_map(|r| r.commit_ts()).max() {
        db.wal().oracle().resume_past(max_ts);
    }

    let mut stats = RecoveryStats {
        committed_txns: committed.len(),
        ..Default::default()
    };

    for rec in records {
        if !committed.contains(&rec.txn()) {
            continue;
        }
        match rec {
            LogRecord::Insert {
                table, rid, row, ..
            } => {
                let t = db.catalog().get_by_id(*table)?;
                t.place(*rid, row.clone())?;
                stats.applied += 1;
            }
            LogRecord::Update {
                table, rid, after, ..
            } => {
                let t = db.catalog().get_by_id(*table)?;
                t.update(*rid, after.clone())?;
                stats.applied += 1;
            }
            LogRecord::Delete { table, rid, .. } => {
                let t = db.catalog().get_by_id(*table)?;
                t.delete(*rid)?;
                stats.applied += 1;
            }
            LogRecord::MigrationGranule {
                migration, granule, ..
            } => {
                stats.migrated_granules.push((*migration, granule.clone()));
            }
            LogRecord::Epoch { epoch, .. } => {
                stats.max_epoch = stats.max_epoch.max(*epoch);
            }
            LogRecord::Begin(_)
            | LogRecord::Commit(_)
            | LogRecord::CommitTs { .. }
            | LogRecord::Abort(_) => {}
        }
    }
    Ok(stats)
}

/// Replays a checkpoint image plus the log tail: the image's rows and
/// migrated granules are applied first, then `tail` (whose records must
/// all be at or above `image.base_lsn` — the part of the log the image
/// does not cover). Equivalent to [`replay`] over the full original log,
/// because checkpoint cuts are transaction-safe.
pub fn replay_with_checkpoint(
    db: &Database,
    image: &CheckpointImage,
    tail: &[LogRecord],
) -> Result<RecoveryStats> {
    let applied = image.apply_to(db)?;
    let mut stats = replay(db, tail)?;
    stats.applied += applied;
    stats.migrated_granules = image
        .migrated
        .iter()
        .cloned()
        .chain(stats.migrated_granules)
        .collect();
    Ok(stats)
}

/// Full file recovery: loads the checkpoint sidecar (if present) and the
/// WAL, skips the file prefix the image already covers (a crash between
/// sidecar persistence and log truncation leaves both on disk), and
/// replays image + tail into `db`. The catalog must already hold the same
/// tables, as with [`replay`].
///
/// The replayed tail is the longest **LSN-contiguous** run of merged
/// shard records starting at the image base. A crash can leave a gap in
/// the merged stream — a batch staged on one shard was never flushed
/// while a later-LSN batch on another shard was — and everything past
/// the first gap is discarded rather than replayed. That is exactly the
/// acknowledgement boundary: commits are only ever acknowledged at the
/// merged durable horizon, which cannot pass a gap, so no acknowledged
/// commit is dropped; and because WAL order respects lock order, a
/// surviving commit's dependencies always sit below it in the dense
/// prefix, so replay never applies an update to a row whose insert was
/// lost with the gap.
pub fn recover_from_files(
    db: &Database,
    wal_path: impl AsRef<Path>,
    ckpt_path: impl AsRef<Path>,
) -> Result<RecoveryStats> {
    let image = match std::fs::read(ckpt_path.as_ref()) {
        Ok(bytes) => CheckpointImage::decode(Bytes::from(bytes))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => CheckpointImage::new(),
        Err(e) => {
            return Err(bullfrog_common::Error::Wal(format!(
                "read checkpoint sidecar: {e}"
            )))
        }
    };
    // Merge every WAL shard file into one LSN-ordered stream; records
    // below the image's base are already folded into the image. Stop at
    // the first LSN gap: a missing record means some shard's staged
    // batch died unflushed, so nothing at or above it was ever
    // acknowledged durable (acks wait on the merged horizon), and a
    // commit up there may depend on the very rows the gap swallowed.
    let mut tail: Vec<LogRecord> = Vec::new();
    let mut expect = image.base_lsn;
    for (lsn, r) in Wal::load_sharded(wal_path)? {
        if lsn < image.base_lsn {
            continue;
        }
        if lsn != expect {
            break;
        }
        tail.push(r);
        expect = lsn + 1;
    }
    replay_with_checkpoint(db, &image, &tail)
}

/// Effect of feeding one record to a [`StreamingReplay`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApplyOutcome {
    /// Data records applied to the database by this call (non-zero only
    /// when the record was a `Commit`, which flushes its buffered txn).
    pub applied: usize,
    /// Whether this record committed a transaction.
    pub committed: bool,
    /// Migration granules of the committed transaction, if any.
    pub granules: Vec<(u32, GranuleKey)>,
    /// Buffered records dropped because their table is unknown locally.
    pub skipped_unknown_table: usize,
    /// A committed fencing-epoch raise carried by this transaction, if
    /// any — a replica adopts (and persists) it on sight.
    pub epoch: Option<u64>,
}

/// Incremental redo-apply for a live log tail, e.g. replicated frames.
///
/// [`replay`] needs the whole record slice up front to decide commit
/// status; a replication stream never ends, so this buffers each
/// transaction's records until its `Commit` arrives (then applies the
/// whole txn atomically from the caller's perspective) or its `Abort`
/// (then drops them). Because a replica only ever receives frames below
/// the primary's merged durable horizon, the stream it sees is exactly a
/// recoverable log prefix — applying txn-at-a-time here produces the same
/// state [`replay`] would.
///
/// Records whose table is unknown locally are skipped (counted, not
/// fatal): the replica applies DDL at journal-defined points, and a
/// record for a table dropped by a later `FINALIZE MIGRATION` can
/// legitimately still sit in the tail.
#[derive(Debug, Default)]
pub struct StreamingReplay {
    buffered: HashMap<TxnId, Vec<LogRecord>>,
}

impl StreamingReplay {
    /// An empty replay with no buffered transactions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every buffered transaction (re-bootstrap from a snapshot:
    /// the image's cut is transaction-safe, so any half-buffered txn is
    /// either fully inside the image or will be re-streamed above it).
    pub fn clear(&mut self) {
        self.buffered.clear();
    }

    /// Transactions currently buffered awaiting their outcome.
    pub fn buffered_txns(&self) -> usize {
        self.buffered.len()
    }

    /// Feeds the next record in LSN order. Data records buffer; `Commit`
    /// applies the transaction's buffered records to `db` and reports
    /// granules; `Abort` discards them.
    pub fn apply(&mut self, db: &Database, rec: &LogRecord) -> Result<ApplyOutcome> {
        let mut out = ApplyOutcome::default();
        match rec {
            LogRecord::Begin(txn) => {
                self.buffered.entry(*txn).or_default();
            }
            LogRecord::Abort(txn) => {
                self.buffered.remove(txn);
            }
            commit if commit.is_commit() => {
                let txn = &commit.txn();
                out.committed = true;
                // Snapshot-mode commits carry a timestamp: keep the local
                // oracle past it so a promoted replica continues the
                // timestamp space instead of reusing it.
                if let Some(ts) = commit.commit_ts() {
                    db.wal().oracle().resume_past(ts);
                }
                for rec in self.buffered.remove(txn).unwrap_or_default() {
                    match &rec {
                        LogRecord::Insert {
                            table, rid, row, ..
                        } => match db.catalog().get_by_id(*table) {
                            Ok(t) => {
                                t.place(*rid, row.clone())?;
                                out.applied += 1;
                            }
                            Err(_) => out.skipped_unknown_table += 1,
                        },
                        LogRecord::Update {
                            table, rid, after, ..
                        } => match db.catalog().get_by_id(*table) {
                            Ok(t) => {
                                t.update(*rid, after.clone())?;
                                out.applied += 1;
                            }
                            Err(_) => out.skipped_unknown_table += 1,
                        },
                        LogRecord::Delete { table, rid, .. } => {
                            match db.catalog().get_by_id(*table) {
                                Ok(t) => {
                                    t.delete(*rid)?;
                                    out.applied += 1;
                                }
                                Err(_) => out.skipped_unknown_table += 1,
                            }
                        }
                        LogRecord::MigrationGranule {
                            migration, granule, ..
                        } => {
                            out.granules.push((*migration, granule.clone()));
                        }
                        LogRecord::Epoch { epoch, .. } => {
                            out.epoch = Some(out.epoch.unwrap_or(0).max(*epoch));
                        }
                        LogRecord::Begin(_)
                        | LogRecord::Commit(_)
                        | LogRecord::CommitTs { .. }
                        | LogRecord::Abort(_) => {}
                    }
                }
            }
            data => {
                self.buffered
                    .entry(data.txn())
                    .or_default()
                    .push(rec.clone());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::LockPolicy;
    use bullfrog_common::{row, ColumnDef, DataType, TableSchema, Value};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Text),
            ],
        )
        .with_primary_key(&["id"])
    }

    #[test]
    fn committed_work_survives_uncommitted_does_not() {
        let db = Database::new();
        db.create_table(schema()).unwrap();

        db.with_txn(|txn| {
            db.insert(txn, "t", row![1, "one"])?;
            db.insert(txn, "t", row![2, "two"])
        })
        .unwrap();
        // A txn that updates then aborts: its records never hit the WAL.
        let mut txn = db.begin();
        let (rid, _) = db
            .get_by_pk(&mut txn, "t", &[Value::Int(1)], LockPolicy::Exclusive)
            .unwrap()
            .unwrap();
        db.update(&mut txn, "t", rid, row![1, "dirty"]).unwrap();
        db.abort(&mut txn);
        // A committed update + delete.
        db.with_txn(|txn| {
            let (rid1, _) = db
                .get_by_pk(txn, "t", &[Value::Int(1)], LockPolicy::Exclusive)?
                .unwrap();
            db.update(txn, "t", rid1, row![1, "uno"])?;
            let (rid2, _) = db
                .get_by_pk(txn, "t", &[Value::Int(2)], LockPolicy::Exclusive)?
                .unwrap();
            db.delete(txn, "t", rid2).map(|_| ())
        })
        .unwrap();

        // Fresh database, same DDL, replay.
        let db2 = Database::new();
        db2.create_table(schema()).unwrap();
        let stats = replay(&db2, &db.wal().snapshot()).unwrap();
        assert_eq!(stats.committed_txns, 2);

        let rows = db2.select_unlocked("t", None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, row![1, "uno"]);
        // The pk index was rebuilt too.
        assert!(db2
            .table("t")
            .unwrap()
            .get_by_pk(&[Value::Int(1)])
            .is_some());
        assert!(db2
            .table("t")
            .unwrap()
            .get_by_pk(&[Value::Int(2)])
            .is_none());
    }

    #[test]
    fn rids_are_preserved_across_commit_reordering() {
        // T1 inserts first but commits second; replay must still put each
        // row at its original rid.
        let db = Database::new();
        db.create_table(schema()).unwrap();
        let mut t1 = db.begin();
        let rid1 = db.insert(&mut t1, "t", row![1, "first"]).unwrap();
        let mut t2 = db.begin();
        let rid2 = db.insert(&mut t2, "t", row![2, "second"]).unwrap();
        db.commit(&mut t2).unwrap();
        db.commit(&mut t1).unwrap();
        assert!(rid1 < rid2);

        let db2 = Database::new();
        db2.create_table(schema()).unwrap();
        replay(&db2, &db.wal().snapshot()).unwrap();
        let t = db2.table("t").unwrap();
        assert_eq!(t.heap().get(rid1), Some(row![1, "first"]));
        assert_eq!(t.heap().get(rid2), Some(row![2, "second"]));
    }

    #[test]
    fn aborted_insert_leaves_hole() {
        let db = Database::new();
        db.create_table(schema()).unwrap();
        let mut t1 = db.begin();
        db.insert(&mut t1, "t", row![1, "gone"]).unwrap();
        db.abort(&mut t1);
        let rid2 = db
            .with_txn(|txn| db.insert(txn, "t", row![2, "kept"]))
            .unwrap();

        let db2 = Database::new();
        db2.create_table(schema()).unwrap();
        let stats = replay(&db2, &db.wal().snapshot()).unwrap();
        assert_eq!(stats.applied, 1);
        let t = db2.table("t").unwrap();
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.heap().get(rid2), Some(row![2, "kept"]));
    }

    #[test]
    fn migration_granules_surface_for_committed_txns_only() {
        use bullfrog_txn::wal::GranuleKey;
        use bullfrog_txn::LogRecord;
        let db = Database::new();
        db.create_table(schema()).unwrap();
        // Committed migration txn.
        let mut t1 = db.begin();
        t1.push_redo(LogRecord::MigrationGranule {
            txn: t1.id(),
            migration: 1,
            granule: GranuleKey::Ordinal(5),
        });
        db.commit(&mut t1).unwrap();
        // Aborted migration txn.
        let mut t2 = db.begin();
        t2.push_redo(LogRecord::MigrationGranule {
            txn: t2.id(),
            migration: 1,
            granule: GranuleKey::Ordinal(9),
        });
        db.abort(&mut t2);

        let db2 = Database::new();
        db2.create_table(schema()).unwrap();
        let stats = replay(&db2, &db.wal().snapshot()).unwrap();
        assert_eq!(stats.migrated_granules, vec![(1, GranuleKey::Ordinal(5))]);
    }

    #[test]
    fn streaming_replay_matches_batch_replay() {
        let db = Database::new();
        db.create_table(schema()).unwrap();
        db.with_txn(|txn| {
            db.insert(txn, "t", row![1, "one"])?;
            db.insert(txn, "t", row![2, "two"])
        })
        .unwrap();
        let mut aborted = db.begin();
        db.insert(&mut aborted, "t", row![3, "ghost"]).unwrap();
        db.abort(&mut aborted);
        db.with_txn(|txn| {
            let (rid, _) = db
                .get_by_pk(txn, "t", &[Value::Int(2)], LockPolicy::Exclusive)?
                .unwrap();
            db.delete(txn, "t", rid).map(|_| ())
        })
        .unwrap();

        let db2 = Database::new();
        db2.create_table(schema()).unwrap();
        let mut stream = StreamingReplay::new();
        let mut applied = 0;
        for rec in db.wal().snapshot() {
            applied += stream.apply(&db2, &rec).unwrap().applied;
        }
        assert_eq!(stream.buffered_txns(), 0);

        let db3 = Database::new();
        db3.create_table(schema()).unwrap();
        let stats = replay(&db3, &db.wal().snapshot()).unwrap();
        assert_eq!(applied, stats.applied);
        assert_eq!(
            db2.select_unlocked("t", None).unwrap(),
            db3.select_unlocked("t", None).unwrap()
        );
    }

    #[test]
    fn streaming_replay_skips_unknown_tables_and_reports_granules() {
        use bullfrog_common::TableId;
        use bullfrog_txn::LogRecord;
        let db = Database::new();
        db.create_table(schema()).unwrap();
        let txn = TxnId(7);
        let recs = vec![
            LogRecord::Begin(txn),
            LogRecord::Insert {
                txn,
                table: TableId(99),
                rid: bullfrog_common::RowId::new(0, 0),
                row: row![1, "orphan"],
            },
            LogRecord::MigrationGranule {
                txn,
                migration: 2,
                granule: GranuleKey::Ordinal(4),
            },
            LogRecord::Commit(txn),
        ];
        let mut stream = StreamingReplay::new();
        let mut last = ApplyOutcome::default();
        for rec in &recs {
            last = stream.apply(&db, rec).unwrap();
        }
        assert!(last.committed);
        assert_eq!(last.applied, 0);
        assert_eq!(last.skipped_unknown_table, 1);
        assert_eq!(last.granules, vec![(2, GranuleKey::Ordinal(4))]);
    }
}
