//! Background checkpoint scheduling.
//!
//! [`Database::checkpoint`](crate::Database::checkpoint) is a manual
//! operation; under sustained write traffic somebody has to call it or
//! the WAL's resident tail grows without bound. [`CheckpointScheduler`]
//! is that somebody: a policy thread that watches the WAL and runs a
//! checkpoint cycle whenever the resident log exceeds the configured
//! record or byte thresholds since the last cut.
//!
//! The scheduler holds only a [`Weak`] reference to the database, so it
//! never keeps a dropped database alive; the thread exits on its own
//! when the database goes away, when [`CheckpointScheduler::stop`] is
//! called, or when the scheduler is dropped. Progress counters are
//! readable at any time via [`CheckpointScheduler::status`] — the
//! server's `STATUS` admin opcode reports them to remote clients.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::db::Database;

/// When the background scheduler triggers a checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many WAL records are resident past the last
    /// cut (0 disables the record trigger).
    pub max_resident_records: u64,
    /// Checkpoint once this many bytes have been flushed to the WAL file
    /// since the last cut (0 disables the byte trigger; in-memory WALs
    /// never flush, so only the record trigger applies to them).
    pub max_flushed_bytes: u64,
    /// How often the policy thread re-examines the WAL.
    pub poll_interval: Duration,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            max_resident_records: 10_000,
            max_flushed_bytes: 4 << 20,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Monotonic counters describing what the scheduler has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStatus {
    /// Checkpoints completed successfully.
    pub checkpoints: u64,
    /// Checkpoint attempts that returned an error.
    pub errors: u64,
    /// Cut LSN of the most recent successful checkpoint.
    pub last_cut_lsn: u64,
    /// Records absorbed into the image by the most recent checkpoint.
    pub last_absorbed: u64,
}

#[derive(Default)]
struct Counters {
    checkpoints: AtomicU64,
    errors: AtomicU64,
    last_cut_lsn: AtomicU64,
    last_absorbed: AtomicU64,
}

/// Handle to the background policy thread. Dropping it stops the thread.
pub struct CheckpointScheduler {
    counters: Arc<Counters>,
    stop_tx: mpsc::Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl CheckpointScheduler {
    /// Spawns the policy thread against `db`. The thread keeps only a
    /// weak reference: it does not prevent the database from being
    /// dropped, and exits when that happens.
    pub fn start(db: &Arc<Database>, policy: CheckpointPolicy) -> Self {
        let weak: Weak<Database> = Arc::downgrade(db);
        let counters = Arc::new(Counters::default());
        let thread_counters = Arc::clone(&counters);
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("bf-ckpt-sched".into())
            .spawn(move || run(weak, policy, thread_counters, stop_rx))
            .expect("spawn checkpoint scheduler");
        CheckpointScheduler {
            counters,
            stop_tx,
            handle: Some(handle),
        }
    }

    /// Spawns a scheduler if `db`'s configuration carries a policy
    /// ([`DbConfig::checkpoint_policy`](crate::DbConfig)).
    pub fn from_config(db: &Arc<Database>) -> Option<Self> {
        db.config()
            .checkpoint_policy
            .clone()
            .map(|p| Self::start(db, p))
    }

    /// Current progress counters.
    pub fn status(&self) -> SchedulerStatus {
        SchedulerStatus {
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            last_cut_lsn: self.counters.last_cut_lsn.load(Ordering::Relaxed),
            last_absorbed: self.counters.last_absorbed.load(Ordering::Relaxed),
        }
    }

    /// Stops the policy thread and waits for it to exit. Idempotent.
    pub fn stop(&mut self) {
        let _ = self.stop_tx.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CheckpointScheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run(
    weak: Weak<Database>,
    policy: CheckpointPolicy,
    counters: Arc<Counters>,
    stop_rx: mpsc::Receiver<()>,
) {
    // Bytes flushed as of the last cut; deltas against it drive the byte
    // trigger.
    let mut bytes_at_cut = match weak.upgrade() {
        Some(db) => db.wal().stats().flushed_bytes,
        None => return,
    };
    loop {
        match stop_rx.recv_timeout(policy.poll_interval) {
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
        let Some(db) = weak.upgrade() else { return };
        let resident = db.wal().resident_records() as u64;
        let flushed = db.wal().stats().flushed_bytes;
        let by_records = policy.max_resident_records > 0 && resident >= policy.max_resident_records;
        let by_bytes = policy.max_flushed_bytes > 0
            && flushed.saturating_sub(bytes_at_cut) >= policy.max_flushed_bytes;
        if !(by_records || by_bytes) {
            continue;
        }
        match db.checkpoint() {
            Ok(stats) => {
                bytes_at_cut = db.wal().stats().flushed_bytes;
                counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                counters
                    .last_cut_lsn
                    .store(stats.cut_lsn, Ordering::Relaxed);
                counters
                    .last_absorbed
                    .store(stats.absorbed_records as u64, Ordering::Relaxed);
            }
            Err(_) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use bullfrog_common::{row, ColumnDef, DataType, TableSchema};

    fn writable_db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db
    }

    #[test]
    fn record_threshold_triggers_checkpoint() {
        let db = writable_db();
        let sched = CheckpointScheduler::start(
            &db,
            CheckpointPolicy {
                max_resident_records: 50,
                max_flushed_bytes: 0,
                poll_interval: Duration::from_millis(5),
            },
        );
        for i in 0..200 {
            db.with_txn(|txn| db.insert(txn, "t", row![i, i])).unwrap();
        }
        // The scheduler should cut at least once and keep the resident
        // tail bounded near the threshold.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sched.status().checkpoints == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = sched.status();
        assert!(status.checkpoints >= 1, "no checkpoint ran: {status:?}");
        assert_eq!(status.errors, 0);
        assert!(status.last_cut_lsn > 0);
        // All 200 rows survive the cut.
        assert_eq!(db.table("t").unwrap().live_count(), 200);
    }

    #[test]
    fn from_config_respects_knob() {
        let db = writable_db();
        assert!(CheckpointScheduler::from_config(&db).is_none());
        let db2 = Arc::new(Database::with_config(DbConfig {
            checkpoint_policy: Some(CheckpointPolicy::default()),
            ..DbConfig::default()
        }));
        assert!(CheckpointScheduler::from_config(&db2).is_some());
    }

    #[test]
    fn thread_exits_when_database_dropped() {
        let db = writable_db();
        let mut sched = CheckpointScheduler::start(
            &db,
            CheckpointPolicy {
                poll_interval: Duration::from_millis(1),
                ..CheckpointPolicy::default()
            },
        );
        drop(db);
        // The thread notices the dead Weak on its next poll; join must
        // not hang.
        std::thread::sleep(Duration::from_millis(10));
        sched.stop();
    }
}
