//! The `Database` facade: DDL, transactional DML, and commit/abort.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{Error, Result, Row, RowId, TableSchema, Value};
use bullfrog_query::{pred, Expr, Scope};
use bullfrog_storage::{Catalog, Table};
use bullfrog_txn::{
    CommitTicket, LockKey, LockManager, LockMode, LogRecord, Transaction, TxnManager, UndoRecord,
    Wal,
};

/// Tuning knobs for a [`Database`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// How long a lock request may wait before the transaction is told to
    /// abort (deadlock avoidance).
    pub lock_timeout: Duration,
    /// Slots per heap page for newly created tables.
    pub slots_per_page: u16,
    /// Whether deletes check that no row still references the deleted key
    /// (full referential integrity; TPC-C never deletes parents, so
    /// workloads may disable this).
    pub enforce_fk_on_delete: bool,
    /// Background checkpoint policy. `None` leaves checkpointing manual;
    /// `Some` lets [`CheckpointScheduler::from_config`]
    /// (crate::scheduler::CheckpointScheduler::from_config) spawn a
    /// policy thread that cuts the WAL on these thresholds.
    pub checkpoint_policy: Option<crate::scheduler::CheckpointPolicy>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            lock_timeout: Duration::from_millis(200),
            slots_per_page: bullfrog_storage::DEFAULT_SLOTS_PER_PAGE,
            enforce_fk_on_delete: true,
            checkpoint_policy: None,
        }
    }
}

/// Row-lock policy for read paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPolicy {
    /// No locks: the caller guarantees the table is frozen (e.g. the old
    /// schema after a big-flip migration) or tolerates read-uncommitted.
    #[default]
    None,
    /// S row locks, re-validated after acquisition (read committed).
    Shared,
    /// X row locks (`SELECT ... FOR UPDATE`).
    Exclusive,
}

/// The database: catalog + lock manager + transaction manager + WAL.
///
/// `Database` is `Send + Sync`; share it behind an `Arc` and drive each
/// [`Transaction`] from a single worker thread.
pub struct Database {
    catalog: Catalog,
    lm: LockManager,
    tm: TxnManager,
    wal: Wal,
    ckpt: crate::checkpoint::Checkpointer,
    config: DbConfig,
}

impl Database {
    /// Creates an empty database with default configuration.
    pub fn new() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// Creates an empty database with the given configuration.
    pub fn with_config(config: DbConfig) -> Self {
        Database {
            catalog: Catalog::new(),
            lm: LockManager::new(config.lock_timeout),
            tm: TxnManager::new(),
            wal: Wal::new(),
            ckpt: crate::checkpoint::Checkpointer::new(None),
            config,
        }
    }

    /// Creates an empty database whose WAL is durably mirrored to `path`
    /// (see [`Wal::with_file`]), with checkpoints persisted to the
    /// sidecar path derived by
    /// [`checkpoint_path_for`](crate::checkpoint::checkpoint_path_for).
    /// Recovery flow: re-create the schema, replay the old files via
    /// [`crate::recovery::recover_from_files`], then open a fresh database
    /// on a new file.
    pub fn with_wal_file(
        config: DbConfig,
        path: impl AsRef<std::path::Path>,
    ) -> bullfrog_common::Result<Self> {
        Self::with_wal_file_opts(config, path, bullfrog_txn::WalOptions::default())
    }

    /// As [`Database::with_wal_file`], with explicit WAL tuning — most
    /// usefully a non-zero [`WalOptions::group_window`](bullfrog_txn::WalOptions)
    /// so concurrent commits coalesce into fewer fsyncs.
    pub fn with_wal_file_opts(
        config: DbConfig,
        path: impl AsRef<std::path::Path>,
        opts: bullfrog_txn::WalOptions,
    ) -> bullfrog_common::Result<Self> {
        let path = path.as_ref();
        Ok(Database {
            catalog: Catalog::new(),
            lm: LockManager::new(config.lock_timeout),
            tm: TxnManager::new(),
            wal: Wal::with_file_opts(path, opts)?,
            ckpt: crate::checkpoint::Checkpointer::new(Some(
                crate::checkpoint::checkpoint_path_for(path),
            )),
            config,
        })
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The WAL.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The lock manager.
    pub fn lock_manager(&self) -> &LockManager {
        &self.lm
    }

    /// The configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    // --- DDL --------------------------------------------------------------

    /// Creates a table, validating that FK targets exist and are unique.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        self.create_table_with_slots(schema, self.config.slots_per_page)
    }

    /// Creates a table with an explicit page slot count.
    pub fn create_table_with_slots(
        &self,
        schema: TableSchema,
        slots_per_page: u16,
    ) -> Result<Arc<Table>> {
        for fk in &schema.foreign_keys {
            let target = self.catalog.get(&fk.ref_table)?;
            crate::fk::referenced_index(&target, &fk.ref_columns).ok_or_else(|| {
                Error::SchemaMismatch(format!(
                    "foreign key {} references non-unique columns {:?} of {}",
                    fk.name, fk.ref_columns, fk.ref_table
                ))
            })?;
        }
        self.catalog.create_table_with_slots(schema, slots_per_page)
    }

    /// Adds a secondary index.
    pub fn create_index(
        &self,
        table: &str,
        name: &str,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        self.catalog.get(table)?.create_index(name, columns, unique)
    }

    /// Drops a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.catalog.drop_table(name).map(|_| ())
    }

    /// Renames a table.
    pub fn rename_table(&self, from: &str, to: &str) -> Result<()> {
        self.catalog.rename_table(from, to)
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog.get(name)
    }

    // --- transaction lifecycle --------------------------------------------

    /// Begins a transaction.
    pub fn begin(&self) -> Transaction {
        self.tm.begin()
    }

    /// Commits: appends the redo batch + `Commit` atomically to the WAL,
    /// waits on the group-commit barrier until the batch is on disk
    /// (no-op for in-memory databases), marks the transaction committed,
    /// and releases its locks.
    ///
    /// Read-only transactions (empty redo) skip the WAL entirely: there
    /// is nothing to replay, so appending a lone `Commit` and parking on
    /// the commit barrier would buy no durability — just an fsync and a
    /// stall behind unrelated writers.
    pub fn commit(&self, txn: &mut Transaction) -> Result<()> {
        txn.assert_active()?;
        if !txn.redo.is_empty() {
            let mut batch = std::mem::take(&mut txn.redo);
            batch.push(LogRecord::Commit(txn.id()));
            self.wal.append_batch_durable(batch);
        }
        txn.mark_committed()?;
        self.release_locks(txn);
        Ok(())
    }

    /// Asynchronous commit: appends the redo batch + `Commit` atomically
    /// and returns a [`CommitTicket`] **at enqueue time**, without waiting
    /// for the flush. The caller keeps running (and may start its next
    /// transaction) while the WAL shard makes the batch durable; call
    /// [`CommitTicket::wait`] before acknowledging the commit to anyone
    /// who needs durability. Locks are released immediately — sound
    /// because every durability acknowledgement (synchronous commits and
    /// ticket waits alike) parks on the WAL's **merged** durable horizon,
    /// which covers all shards: a later transaction that read this data
    /// appends at a higher LSN, so its ack transitively covers this
    /// batch even when the two transactions hash to different shards.
    /// If no dependent commit is ever acknowledged, recovery replays
    /// only the gap-free on-disk prefix, so a crash can lose this
    /// unacknowledged batch together with everything that depended on
    /// it — never a dependent commit alone.
    ///
    /// Read-only transactions get a trivially-durable ticket.
    pub fn commit_nowait(&self, txn: &mut Transaction) -> Result<CommitTicket> {
        txn.assert_active()?;
        let ticket = if txn.redo.is_empty() {
            self.wal.durable_ticket()
        } else {
            let mut batch = std::mem::take(&mut txn.redo);
            batch.push(LogRecord::Commit(txn.id()));
            self.wal.append_batch_enqueue(batch)
        };
        txn.mark_committed()?;
        self.release_locks(txn);
        Ok(ticket)
    }

    /// Runs one checkpoint cycle: snapshots the committed log prefix into
    /// the (persisted) checkpoint image and truncates the WAL, bounding
    /// its resident memory and the recovery tail. See
    /// [`crate::checkpoint`].
    pub fn checkpoint(&self) -> Result<crate::checkpoint::CheckpointStats> {
        self.ckpt.run(self)
    }

    /// The checkpointer (its running image and sidecar path).
    pub fn checkpointer(&self) -> &crate::checkpoint::Checkpointer {
        &self.ckpt
    }

    /// Aborts: applies the undo log in reverse, writes an `Abort` record,
    /// and releases locks. Safe to call on an already-aborted transaction
    /// (idempotent no-op) so error paths can abort unconditionally.
    pub fn abort(&self, txn: &mut Transaction) {
        if txn.assert_active().is_err() {
            return;
        }
        let wrote = !txn.redo.is_empty() || !txn.undo.is_empty();
        for rec in std::mem::take(&mut txn.undo).into_iter().rev() {
            // Undo application must not fail: the operations below only
            // reverse changes this transaction itself made while holding
            // X locks. A failure indicates corruption, so surface loudly.
            match rec {
                UndoRecord::Insert { table, rid } => {
                    let t = self.catalog.get_by_id(table).expect("undo: table exists");
                    t.undo_insert(rid).expect("undo insert");
                }
                UndoRecord::Update { table, rid, old } => {
                    let t = self.catalog.get_by_id(table).expect("undo: table exists");
                    t.undo_update(rid, old).expect("undo update");
                }
                UndoRecord::Delete { table, rid, old } => {
                    let t = self.catalog.get_by_id(table).expect("undo: table exists");
                    t.undo_delete(rid, old).expect("undo delete");
                }
            }
        }
        txn.redo.clear();
        // A transaction that never wrote leaves no trace to disclaim.
        if wrote {
            self.wal.append(LogRecord::Abort(txn.id()));
        }
        txn.mark_aborted().expect("active checked above");
        self.release_locks(txn);
    }

    fn release_locks(&self, txn: &mut Transaction) {
        let keys = std::mem::take(&mut txn.locks);
        self.lm.release_all(txn.id(), keys);
    }

    /// Runs `f` inside a transaction: commit on `Ok`, abort on `Err`.
    pub fn with_txn<T>(&self, f: impl FnOnce(&mut Transaction) -> Result<T>) -> Result<T> {
        let mut txn = self.begin();
        match f(&mut txn) {
            Ok(v) => {
                self.commit(&mut txn)?;
                Ok(v)
            }
            Err(e) => {
                self.abort(&mut txn);
                Err(e)
            }
        }
    }

    /// As [`Database::with_txn`], retrying (with a fresh transaction) while
    /// `f` fails with a retryable error, up to `max_attempts`.
    pub fn with_txn_retry<T>(
        &self,
        max_attempts: usize,
        mut f: impl FnMut(&mut Transaction) -> Result<T>,
    ) -> Result<T> {
        let mut last = None;
        for _ in 0..max_attempts {
            match self.with_txn(&mut f) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| Error::Internal("retry limit with no attempt".into())))
    }

    // --- locking helpers ---------------------------------------------------

    /// Acquires a lock and records it on the transaction. A declared ally
    /// (`Transaction::ally`) never conflicts with the request.
    pub fn lock(&self, txn: &mut Transaction, key: LockKey, mode: LockMode) -> Result<()> {
        txn.assert_active()?;
        if self
            .lm
            .acquire_deadline_ally(txn.id(), key, mode, self.lm.timeout(), txn.ally())?
        {
            txn.record_lock(key);
        }
        Ok(())
    }

    fn lock_row_for(
        &self,
        txn: &mut Transaction,
        table: &Table,
        rid: RowId,
        policy: LockPolicy,
    ) -> Result<()> {
        match policy {
            LockPolicy::None => Ok(()),
            LockPolicy::Shared => {
                self.lock(txn, LockKey::Table(table.id()), LockMode::IS)?;
                self.lock(txn, LockKey::Row(table.id(), rid), LockMode::S)
            }
            LockPolicy::Exclusive => {
                self.lock(txn, LockKey::Table(table.id()), LockMode::IX)?;
                self.lock(txn, LockKey::Row(table.id(), rid), LockMode::X)
            }
        }
    }

    // --- DML ----------------------------------------------------------------

    /// Inserts a row transactionally: IX table lock, FK checks (S locks on
    /// referenced rows), uniqueness via the table's indexes, X lock on the
    /// new row, undo + redo records.
    pub fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<RowId> {
        self.insert_with(txn, table, row, true)
    }

    /// As [`Database::insert`] with explicit control over FK S-locking.
    /// Migration transactions pass `fk_lock = false` — see
    /// [`crate::fk::check_outgoing_with`].
    pub fn insert_with(
        &self,
        txn: &mut Transaction,
        table: &str,
        row: Row,
        fk_lock: bool,
    ) -> Result<RowId> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?;
        crate::fk::check_outgoing_with(self, txn, &t, &row, fk_lock)?;
        let rid = t.insert(row.clone())?;
        self.lock(txn, LockKey::Row(t.id(), rid), LockMode::X)?;
        txn.push_undo(UndoRecord::Insert { table: t.id(), rid });
        txn.push_redo(LogRecord::Insert {
            txn: txn.id(),
            table: t.id(),
            rid,
            row,
        });
        Ok(rid)
    }

    /// Inserts unless a uniqueness constraint rejects the row; `Ok(None)`
    /// on conflict. This is `INSERT ... ON CONFLICT DO NOTHING`, the
    /// alternative duplicate-migration guard of paper §3.7.
    pub fn insert_or_ignore(
        &self,
        txn: &mut Transaction,
        table: &str,
        row: Row,
    ) -> Result<Option<RowId>> {
        self.insert_or_ignore_with(txn, table, row, true)
    }

    /// As [`Database::insert_or_ignore`] with explicit FK S-lock control.
    pub fn insert_or_ignore_with(
        &self,
        txn: &mut Transaction,
        table: &str,
        row: Row,
        fk_lock: bool,
    ) -> Result<Option<RowId>> {
        match self.insert_with(txn, table, row, fk_lock) {
            Ok(rid) => Ok(Some(rid)),
            Err(Error::UniqueViolation { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Unlogged, unlocked bulk insert for initial data loading only.
    pub fn insert_unlogged(&self, table: &str, row: Row) -> Result<RowId> {
        self.catalog.get(table)?.insert(row)
    }

    /// Updates the row at `rid` transactionally.
    pub fn update(
        &self,
        txn: &mut Transaction,
        table: &str,
        rid: RowId,
        new_row: Row,
    ) -> Result<()> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?;
        self.lock(txn, LockKey::Row(t.id(), rid), LockMode::X)?;
        crate::fk::check_outgoing(self, txn, &t, &new_row)?;
        let old = t.update(rid, new_row.clone())?;
        txn.push_undo(UndoRecord::Update {
            table: t.id(),
            rid,
            old,
        });
        txn.push_redo(LogRecord::Update {
            txn: txn.id(),
            table: t.id(),
            rid,
            after: new_row,
        });
        Ok(())
    }

    /// Deletes the row at `rid` transactionally, returning it.
    pub fn delete(&self, txn: &mut Transaction, table: &str, rid: RowId) -> Result<Row> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?;
        self.lock(txn, LockKey::Row(t.id(), rid), LockMode::X)?;
        if self.config.enforce_fk_on_delete {
            crate::fk::check_incoming(self, txn, &t, rid)?;
        }
        let old = t.delete(rid)?;
        txn.push_undo(UndoRecord::Delete {
            table: t.id(),
            rid,
            old: old.clone(),
        });
        txn.push_redo(LogRecord::Delete {
            txn: txn.id(),
            table: t.id(),
            rid,
        });
        Ok(old)
    }

    /// Point read of `rid` under the given lock policy.
    pub fn get(
        &self,
        txn: &mut Transaction,
        table: &str,
        rid: RowId,
        policy: LockPolicy,
    ) -> Result<Option<Row>> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.lock_row_for(txn, &t, rid, policy)?;
        Ok(t.heap().get(rid))
    }

    /// Point read through the primary key.
    pub fn get_by_pk(
        &self,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        policy: LockPolicy,
    ) -> Result<Option<(RowId, Row)>> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        let Some((rid, _)) = t.get_by_pk(key) else {
            return Ok(None);
        };
        self.lock_row_for(txn, &t, rid, policy)?;
        // Re-read after locking: the row may have changed or vanished while
        // we waited.
        Ok(t.heap().get(rid).map(|row| (rid, row)))
    }

    /// Predicate select over one table. Uses an index for `col = literal`
    /// conjuncts when one covers them, otherwise scans; each candidate is
    /// locked per `policy` and then re-checked against the predicate.
    pub fn select(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: Option<&Expr>,
        policy: LockPolicy,
    ) -> Result<Vec<(RowId, Row)>> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        match policy {
            LockPolicy::None => {}
            LockPolicy::Shared => self.lock(txn, LockKey::Table(t.id()), LockMode::IS)?,
            LockPolicy::Exclusive => self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?,
        }
        let scope = table_scope(&t);
        let candidates = self.candidates(&t, predicate, &scope)?;
        let mut out = Vec::new();
        for rid in candidates {
            if policy != LockPolicy::None {
                self.lock_row_for(txn, &t, rid, policy)?;
            }
            let Some(row) = t.heap().get(rid) else {
                continue; // vanished while we waited for the lock
            };
            let keep = match predicate {
                Some(p) => p.matches(&scope, &row)?,
                None => true,
            };
            if keep {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    /// Candidate row ids for a predicate: an index point/prefix lookup when
    /// the predicate's `col = literal` conjuncts cover an index prefix,
    /// otherwise a heap scan filtered by the predicate.
    fn candidates(&self, t: &Table, predicate: Option<&Expr>, scope: &Scope) -> Result<Vec<RowId>> {
        if let Some(p) = predicate {
            let eqs = pred::sargable_equalities(p);
            let ranges = pred::sargable_ranges(p);
            if !eqs.is_empty() || !ranges.is_empty() {
                // Resolve the equality columns to positions.
                let mut by_pos: Vec<(usize, Value)> = Vec::new();
                for (col, v) in &eqs {
                    if let Ok(i) = t.schema().col_index(&col.column) {
                        by_pos.push((i, v.clone()));
                    }
                }
                let mut positions: Vec<usize> = by_pos.iter().map(|(i, _)| *i).collect();
                // Range columns also make an index eligible.
                let mut range_by_pos: Vec<(
                    usize,
                    Option<pred::RangeBound>,
                    Option<pred::RangeBound>,
                )> = Vec::new();
                for (col, lo, hi) in &ranges {
                    if let Ok(i) = t.schema().col_index(&col.column) {
                        range_by_pos.push((i, lo.clone(), hi.clone()));
                        positions.push(i);
                    }
                }
                if let Some(idx) = t.index_for_columns(&positions) {
                    // Build the longest usable equality prefix.
                    let mut key = Vec::new();
                    let mut next_kc = None;
                    for kc in &idx.def().key_columns {
                        match by_pos.iter().find(|(i, _)| i == kc) {
                            Some((_, v)) => key.push(v.clone()),
                            None => {
                                next_kc = Some(*kc);
                                break;
                            }
                        }
                    }
                    // A range bound on the key column right after the
                    // prefix turns the prefix lookup into a range scan
                    // (TPC-C StockLevel's "last 20 orders" window).
                    if let Some(kc) = next_kc {
                        if let Some((_, lo, hi)) = range_by_pos.iter().find(|(i, _, _)| *i == kc) {
                            if !key.is_empty() || lo.is_some() {
                                return Ok(idx.range_scan(&key, lo.as_ref(), hi.as_ref()));
                            }
                        }
                    }
                    if !key.is_empty() {
                        return Ok(idx.get_prefix(&key));
                    }
                }
            }
            // Fallback: filtered heap scan.
            let mut rids = Vec::new();
            let mut err = None;
            t.heap().scan(|rid, row| match p.matches(scope, row) {
                Ok(true) => {
                    rids.push(rid);
                    true
                }
                Ok(false) => true,
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok(rids)
        } else {
            let mut rids = Vec::new();
            t.heap().scan(|rid, _| {
                rids.push(rid);
                true
            });
            Ok(rids)
        }
    }

    /// Unlocked, untransactional select (frozen tables / diagnostics).
    pub fn select_unlocked(
        &self,
        table: &str,
        predicate: Option<&Expr>,
    ) -> Result<Vec<(RowId, Row)>> {
        let t = self.catalog.get(table)?;
        let scope = table_scope(&t);
        let candidates = self.candidates(&t, predicate, &scope)?;
        let mut out = Vec::new();
        for rid in candidates {
            if let Some(row) = t.heap().get(rid) {
                let keep = match predicate {
                    Some(p) => p.matches(&scope, &row)?,
                    None => true,
                };
                if keep {
                    out.push((rid, row));
                }
            }
        }
        Ok(out)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_names())
            .field("wal_records", &self.wal.len())
            .finish()
    }
}

/// Scope for single-table predicates: columns visible both bare and
/// qualified by the table's catalog name.
pub fn table_scope(t: &Table) -> Scope {
    let cols: Vec<String> = t.schema().columns.iter().map(|c| c.name.clone()).collect();
    Scope::table(t.name(), &cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{row, ColumnDef, DataType};

    fn db_with_accounts() -> Database {
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("owner", DataType::Text),
                    ColumnDef::new("balance", DataType::Decimal),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_commit_visible() {
        let db = db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "alice", 1000]))
            .unwrap();
        let mut txn = db.begin();
        let got = db
            .get(&mut txn, "accounts", rid, LockPolicy::Shared)
            .unwrap();
        assert_eq!(got, Some(row![1, "alice", 1000]));
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn abort_rolls_back_insert_update_delete() {
        let db = db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "alice", 1000]))
            .unwrap();

        let mut txn = db.begin();
        db.insert(&mut txn, "accounts", row![2, "bob", 5]).unwrap();
        db.update(&mut txn, "accounts", rid, row![1, "alice", 900])
            .unwrap();
        db.abort(&mut txn);

        let mut txn = db.begin();
        assert!(db
            .get_by_pk(&mut txn, "accounts", &[Value::Int(2)], LockPolicy::Shared)
            .unwrap()
            .is_none());
        let (_, row) = db
            .get_by_pk(&mut txn, "accounts", &[Value::Int(1)], LockPolicy::Shared)
            .unwrap()
            .unwrap();
        assert_eq!(row, row![1, "alice", 1000]);
        db.commit(&mut txn).unwrap();

        // Delete + abort restores.
        let mut txn = db.begin();
        db.delete(&mut txn, "accounts", rid).unwrap();
        db.abort(&mut txn);
        let mut txn = db.begin();
        assert!(db
            .get(&mut txn, "accounts", rid, LockPolicy::Shared)
            .unwrap()
            .is_some());
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn unique_violation_inside_txn_is_clean() {
        let db = db_with_accounts();
        db.with_txn(|txn| db.insert(txn, "accounts", row![1, "a", 0]))
            .unwrap();
        let err = db
            .with_txn(|txn| {
                db.insert(txn, "accounts", row![2, "b", 0])?;
                db.insert(txn, "accounts", row![1, "dup", 0])
            })
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
        // The first insert of the failed txn rolled back.
        let mut txn = db.begin();
        assert!(db
            .get_by_pk(&mut txn, "accounts", &[Value::Int(2)], LockPolicy::Shared)
            .unwrap()
            .is_none());
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn insert_or_ignore_swallows_conflicts() {
        let db = db_with_accounts();
        db.with_txn(|txn| {
            assert!(db
                .insert_or_ignore(txn, "accounts", row![1, "a", 0])?
                .is_some());
            assert!(db
                .insert_or_ignore(txn, "accounts", row![1, "dup", 0])?
                .is_none());
            Ok(())
        })
        .unwrap();
        assert_eq!(db.table("accounts").unwrap().live_count(), 1);
    }

    #[test]
    fn select_uses_pk_index_and_rechecks() {
        let db = db_with_accounts();
        db.with_txn(|txn| {
            for i in 0..100 {
                db.insert(txn, "accounts", row![i, format!("o{i}"), i * 10])?;
            }
            Ok(())
        })
        .unwrap();
        let mut txn = db.begin();
        let p = Expr::column("id").eq(Expr::lit(42));
        let got = db
            .select(&mut txn, "accounts", Some(&p), LockPolicy::Shared)
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, row![42, "o42", 420]);
        // Scan path: non-indexed predicate.
        let p = Expr::column("balance").ge(Expr::lit(Value::Decimal(980)));
        let got = db
            .select(&mut txn, "accounts", Some(&p), LockPolicy::Shared)
            .unwrap();
        assert_eq!(got.len(), 2); // balances 980, 990
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn write_conflict_times_out() {
        let db = Arc::new(Database::with_config(DbConfig {
            lock_timeout: Duration::from_millis(30),
            ..DbConfig::default()
        }));
        db.create_table(
            TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
        )
        .unwrap();
        let rid = db.with_txn(|txn| db.insert(txn, "t", row![1])).unwrap();

        let mut holder = db.begin();
        db.update(&mut holder, "t", rid, row![2]).unwrap();

        // A second writer cannot get the X lock.
        let mut other = db.begin();
        let err = db.update(&mut other, "t", rid, row![3]).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
        db.abort(&mut other);

        // A reader with S policy also blocks (no dirty read) and times out.
        let mut reader = db.begin();
        assert!(db.get(&mut reader, "t", rid, LockPolicy::Shared).is_err());
        db.abort(&mut reader);

        db.commit(&mut holder).unwrap();
        // Now the read sees the committed value.
        let mut reader = db.begin();
        assert_eq!(
            db.get(&mut reader, "t", rid, LockPolicy::Shared).unwrap(),
            Some(row![2])
        );
        db.commit(&mut reader).unwrap();
    }

    #[test]
    fn with_txn_retry_retries_lock_timeouts() {
        let db = Arc::new(Database::with_config(DbConfig {
            lock_timeout: Duration::from_millis(20),
            ..DbConfig::default()
        }));
        db.create_table(
            TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
        )
        .unwrap();
        let rid = db.with_txn(|txn| db.insert(txn, "t", row![1])).unwrap();

        let mut holder = db.begin();
        db.update(&mut holder, "t", rid, row![2]).unwrap();
        let db2 = Arc::clone(&db);
        let t = std::thread::spawn(move || {
            db2.with_txn_retry(50, |txn| db2.update(txn, "t", rid, row![3]))
        });
        std::thread::sleep(Duration::from_millis(60));
        db.commit(&mut holder).unwrap();
        t.join().unwrap().unwrap();
        let mut txn = db.begin();
        assert_eq!(
            db.get(&mut txn, "t", rid, LockPolicy::Shared).unwrap(),
            Some(row![3])
        );
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn commit_writes_atomic_wal_batch() {
        let db = db_with_accounts();
        db.with_txn(|txn| {
            db.insert(txn, "accounts", row![1, "a", 0])?;
            db.insert(txn, "accounts", row![2, "b", 0])
        })
        .unwrap();
        let records = db.wal().snapshot();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], LogRecord::Insert { .. }));
        assert!(matches!(records[2], LogRecord::Commit(_)));
    }

    #[test]
    fn concurrent_transfers_conserve_balance() {
        // Classic bank-transfer stress: total balance is invariant.
        let db = Arc::new(db_with_accounts());
        db.with_txn(|txn| {
            for i in 0..10 {
                db.insert(txn, "accounts", row![i, format!("o{i}"), 1000])?;
            }
            Ok(())
        })
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut rng = t;
                for _ in 0..50 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (rng >> 33) % 10;
                    let to = (from + 1 + (rng >> 20) % 9) % 10;
                    let _ = db.with_txn_retry(20, |txn| {
                        let (rid_a, a) = db
                            .get_by_pk(
                                txn,
                                "accounts",
                                &[Value::Int(from as i64)],
                                LockPolicy::Exclusive,
                            )?
                            .ok_or(Error::RowNotFound)?;
                        let (rid_b, b) = db
                            .get_by_pk(
                                txn,
                                "accounts",
                                &[Value::Int(to as i64)],
                                LockPolicy::Exclusive,
                            )?
                            .ok_or(Error::RowNotFound)?;
                        let amount = Value::Decimal(7);
                        let new_a =
                            Row(vec![a[0].clone(), a[1].clone(), a[2].sub(&amount).unwrap()]);
                        let new_b =
                            Row(vec![b[0].clone(), b[1].clone(), b[2].add(&amount).unwrap()]);
                        db.update(txn, "accounts", rid_a, new_a)?;
                        db.update(txn, "accounts", rid_b, new_b)?;
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = db
            .select_unlocked("accounts", None)
            .unwrap()
            .iter()
            .map(|(_, r)| r[2].as_i64().unwrap())
            .sum();
        assert_eq!(total, 10_000);
    }
}
