//! The `Database` facade: DDL, transactional DML, and commit/abort.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{Error, Result, Row, RowId, TableSchema, Value};
use bullfrog_query::{pred, Expr, Scope};
use bullfrog_storage::{Catalog, Table};
use bullfrog_txn::{
    AckOutcome, CommitTicket, LockKey, LockManager, LockMode, LogRecord, Transaction, TxnManager,
    UndoRecord, Wal,
};

/// Concurrency-control mode of the engine.
///
/// `TwoPL` is the original strict two-phase-locking engine: readers take
/// S row locks and block behind writers. `Snapshot` keeps X locks for
/// writers (write-write conflicts still serialize through the lock
/// manager) but gives readers snapshot isolation: each transaction reads
/// at the commit timestamp that was stable when it began, traversing
/// per-row version chains instead of locking. Writes to a row committed
/// after the snapshot fail with [`Error::WriteConflict`]
/// (first-updater-wins); the caller retries with a fresh snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Strict 2PL, read-committed (the original engine).
    #[default]
    TwoPL,
    /// Multi-version snapshot isolation: lock-free snapshot reads,
    /// X-locked first-updater-wins writes.
    Snapshot,
}

impl EngineMode {
    /// Resolves the mode from `BULLFROG_ENGINE_MODE` (`si`, `snapshot`,
    /// or `mvcc` select [`EngineMode::Snapshot`]; anything else, including
    /// unset, selects [`EngineMode::TwoPL`]). This is how the test suites
    /// and `scripts/verify.sh` run every engine consumer in both modes
    /// without threading a flag through each binary.
    pub fn from_env() -> Self {
        match std::env::var("BULLFROG_ENGINE_MODE") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "si" | "snapshot" | "mvcc" => EngineMode::Snapshot,
                _ => EngineMode::TwoPL,
            },
            Err(_) => EngineMode::TwoPL,
        }
    }

    /// True in [`EngineMode::Snapshot`].
    pub fn is_snapshot(self) -> bool {
        matches!(self, EngineMode::Snapshot)
    }

    /// Stable short name (`"2pl"` / `"si"`), used by STATUS reporting.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineMode::TwoPL => "2pl",
            EngineMode::Snapshot => "si",
        }
    }
}

/// Tuning knobs for a [`Database`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// How long a lock request may wait before the transaction is told to
    /// abort (deadlock avoidance).
    pub lock_timeout: Duration,
    /// Slots per heap page for newly created tables.
    pub slots_per_page: u16,
    /// Whether deletes check that no row still references the deleted key
    /// (full referential integrity; TPC-C never deletes parents, so
    /// workloads may disable this).
    pub enforce_fk_on_delete: bool,
    /// Background checkpoint policy. `None` leaves checkpointing manual;
    /// `Some` lets [`CheckpointScheduler::from_config`]
    /// (crate::scheduler::CheckpointScheduler::from_config) spawn a
    /// policy thread that cuts the WAL on these thresholds.
    pub checkpoint_policy: Option<crate::scheduler::CheckpointPolicy>,
    /// Concurrency-control mode. Defaults from `BULLFROG_ENGINE_MODE`.
    pub mode: EngineMode,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            lock_timeout: Duration::from_millis(200),
            slots_per_page: bullfrog_storage::DEFAULT_SLOTS_PER_PAGE,
            enforce_fk_on_delete: true,
            checkpoint_policy: None,
            mode: EngineMode::from_env(),
        }
    }
}

/// Row-lock policy for read paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockPolicy {
    /// No locks: the caller guarantees the table is frozen (e.g. the old
    /// schema after a big-flip migration) or tolerates read-uncommitted.
    #[default]
    None,
    /// S row locks, re-validated after acquisition (read committed).
    Shared,
    /// X row locks (`SELECT ... FOR UPDATE`).
    Exclusive,
}

/// The database: catalog + lock manager + transaction manager + WAL.
///
/// `Database` is `Send + Sync`; share it behind an `Arc` and drive each
/// [`Transaction`] from a single worker thread.
pub struct Database {
    catalog: Catalog,
    lm: LockManager,
    tm: TxnManager,
    wal: Wal,
    ckpt: crate::checkpoint::Checkpointer,
    config: DbConfig,
    /// Snapshot-mode commits since the last amortized version GC.
    si_commits: AtomicU64,
    /// Version-chain nodes reclaimed by GC over the database's lifetime.
    gc_reclaimed: AtomicU64,
    /// This instance's metrics registry. Per-database (tests and
    /// `loadgen` run several servers in one process), shared with the
    /// WAL at construction and with every layer above via [`Database::obs`].
    obs: Arc<bullfrog_obs::Registry>,
    /// End-to-end commit latency (append + group-commit wait + version
    /// install), microseconds. Cached handle off `obs`.
    commit_hist: Arc<bullfrog_obs::Histogram>,
}

impl Database {
    /// Creates an empty database with default configuration.
    pub fn new() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// Creates an empty database with the given configuration.
    pub fn with_config(config: DbConfig) -> Self {
        let obs = Arc::new(bullfrog_obs::Registry::new());
        let wal = Wal::new();
        wal.attach_obs(&obs);
        Database {
            catalog: Catalog::new(),
            lm: LockManager::new(config.lock_timeout),
            tm: TxnManager::new(),
            wal,
            ckpt: crate::checkpoint::Checkpointer::new(None),
            config,
            si_commits: AtomicU64::new(0),
            gc_reclaimed: AtomicU64::new(0),
            commit_hist: obs.histogram("engine.commit_us"),
            obs,
        }
    }

    /// Creates an empty database whose WAL is durably mirrored to `path`
    /// (see [`Wal::with_file`]), with checkpoints persisted to the
    /// sidecar path derived by
    /// [`checkpoint_path_for`](crate::checkpoint::checkpoint_path_for).
    /// Recovery flow: re-create the schema, replay the old files via
    /// [`crate::recovery::recover_from_files`], then open a fresh database
    /// on a new file.
    pub fn with_wal_file(
        config: DbConfig,
        path: impl AsRef<std::path::Path>,
    ) -> bullfrog_common::Result<Self> {
        Self::with_wal_file_opts(config, path, bullfrog_txn::WalOptions::default())
    }

    /// As [`Database::with_wal_file`], with explicit WAL tuning — most
    /// usefully a non-zero [`WalOptions::group_window`](bullfrog_txn::WalOptions)
    /// so concurrent commits coalesce into fewer fsyncs.
    pub fn with_wal_file_opts(
        config: DbConfig,
        path: impl AsRef<std::path::Path>,
        opts: bullfrog_txn::WalOptions,
    ) -> bullfrog_common::Result<Self> {
        let path = path.as_ref();
        let obs = Arc::new(bullfrog_obs::Registry::new());
        let wal = Wal::with_file_opts(path, opts)?;
        wal.attach_obs(&obs);
        Ok(Database {
            catalog: Catalog::new(),
            lm: LockManager::new(config.lock_timeout),
            tm: TxnManager::new(),
            wal,
            ckpt: crate::checkpoint::Checkpointer::new(Some(
                crate::checkpoint::checkpoint_path_for(path),
            )),
            config,
            si_commits: AtomicU64::new(0),
            gc_reclaimed: AtomicU64::new(0),
            commit_hist: obs.histogram("engine.commit_us"),
            obs,
        })
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The WAL.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The lock manager.
    pub fn lock_manager(&self) -> &LockManager {
        &self.lm
    }

    /// The configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// This database's metrics registry. Every layer above (sessions,
    /// migration controller, replication, cluster membership) registers
    /// its counters and histograms here, so one `METRICS` snapshot
    /// covers the whole instance.
    pub fn obs(&self) -> &Arc<bullfrog_obs::Registry> {
        &self.obs
    }

    // --- DDL --------------------------------------------------------------

    /// Creates a table, validating that FK targets exist and are unique.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        self.create_table_with_slots(schema, self.config.slots_per_page)
    }

    /// Creates a table with an explicit page slot count.
    pub fn create_table_with_slots(
        &self,
        schema: TableSchema,
        slots_per_page: u16,
    ) -> Result<Arc<Table>> {
        for fk in &schema.foreign_keys {
            let target = self.catalog.get(&fk.ref_table)?;
            crate::fk::referenced_index(&target, &fk.ref_columns).ok_or_else(|| {
                Error::SchemaMismatch(format!(
                    "foreign key {} references non-unique columns {:?} of {}",
                    fk.name, fk.ref_columns, fk.ref_table
                ))
            })?;
        }
        self.catalog.create_table_with_slots(schema, slots_per_page)
    }

    /// Adds a secondary index.
    pub fn create_index(
        &self,
        table: &str,
        name: &str,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        self.catalog.get(table)?.create_index(name, columns, unique)
    }

    /// Drops a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.catalog.drop_table(name).map(|_| ())
    }

    /// Renames a table.
    pub fn rename_table(&self, from: &str, to: &str) -> Result<()> {
        self.catalog.rename_table(from, to)
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog.get(name)
    }

    // --- transaction lifecycle --------------------------------------------

    /// Begins a transaction. Under [`EngineMode::Snapshot`] the
    /// transaction registers a read snapshot at the oracle's stable
    /// timestamp; the registration pins the version-GC horizon until
    /// commit or abort releases it.
    pub fn begin(&self) -> Transaction {
        let mut txn = self.tm.begin();
        if self.config.mode.is_snapshot() {
            txn.set_snapshot(self.wal.oracle().begin_snapshot());
        }
        txn
    }

    /// Replaces the transaction's snapshot with a fresh one at the current
    /// stable timestamp — but only while the old one is still *unused* (no
    /// read or write ran at it) so repeatable reads are never broken. Lazy
    /// migration calls this after committing granule work on a client's
    /// behalf: the client transaction began (and took its snapshot) before
    /// that work existed, and its first read must see the rows it just
    /// forced into the new schema. No-op under 2PL.
    pub fn refresh_snapshot(&self, txn: &mut Transaction) {
        if txn.snapshot().is_some() && !txn.snapshot_used() && txn.undo.is_empty() {
            txn.set_snapshot(self.wal.oracle().begin_snapshot());
        }
    }

    /// Commits: appends the redo batch + `Commit` atomically to the WAL,
    /// waits on the group-commit barrier until the batch is on disk
    /// (no-op for in-memory databases), marks the transaction committed,
    /// and releases its locks.
    ///
    /// Read-only transactions (empty redo) skip the WAL entirely: there
    /// is nothing to replay, so appending a lone `Commit` and parking on
    /// the commit barrier would buy no durability — just an fsync and a
    /// stall behind unrelated writers.
    ///
    /// When synchronous replication is armed (`SET SYNC_REPLICAS`), the
    /// acknowledgement additionally waits on the WAL's [`SyncGate`]
    /// (local durability first, replica quorum second). A fenced node
    /// completes the local commit — the batch is already in the log and
    /// locks must not leak — but returns [`Error::Fenced`] so the client
    /// is never acked and re-routes to the current primary.
    pub fn commit(&self, txn: &mut Transaction) -> Result<()> {
        txn.assert_active()?;
        let started = std::time::Instant::now();
        if txn.snapshot().is_some() {
            let r = self.commit_snapshot(txn);
            self.commit_hist.record_micros(started.elapsed());
            return r;
        }
        let mut outcome = AckOutcome::Synced;
        if !txn.redo.is_empty() {
            let mut batch = std::mem::take(&mut txn.redo);
            batch.push(LogRecord::Commit(txn.id()));
            (_, outcome) = self.wal.append_batch_acked(batch);
        }
        txn.mark_committed()?;
        self.release_locks(txn);
        self.commit_hist.record_micros(started.elapsed());
        if outcome == AckOutcome::Fenced {
            return Err(Error::Fenced {
                leader: self.wal.sync_gate().leader_hint(),
            });
        }
        Ok(())
    }

    /// Snapshot-mode commit: the redo batch is appended together with a
    /// `CommitTs` record whose timestamp is drawn under the WAL core
    /// mutex (so timestamp order equals LSN order), the batch is made
    /// durable, and only then are this transaction's in-place writes
    /// published by installing chain versions at that timestamp. The
    /// oracle's stable horizon advances past the timestamp only after
    /// installation finishes, so no reader can snapshot at a timestamp
    /// whose versions are still being installed.
    fn commit_snapshot(&self, txn: &mut Transaction) -> Result<()> {
        if txn.redo.is_empty() {
            txn.release_snapshot();
            txn.mark_committed()?;
            self.release_locks(txn);
            return Ok(());
        }
        let batch = std::mem::take(&mut txn.redo);
        let (_first_lsn, ts, outcome) = self.wal.append_commit_acked(batch, txn.id());
        self.install_versions(txn, ts);
        self.wal.oracle().finish(ts);
        txn.release_snapshot();
        txn.mark_committed()?;
        self.release_locks(txn);
        // A commit is acknowledged only once it is visible to new
        // snapshots: with concurrent committers, our `finish` may not
        // advance the stable horizon past `ts` while an older timestamp
        // is still installing, and returning early would let the caller
        // publish state (migration granule marks, replies to clients)
        // that a fresh snapshot then contradicts.
        self.wal.oracle().wait_stable(ts, Duration::from_secs(5));
        self.maybe_gc();
        // The fence outcome is checked after the oracle bookkeeping —
        // the timestamp must be finished either way or the stable
        // horizon stalls for every other session.
        if outcome == AckOutcome::Fenced {
            return Err(Error::Fenced {
                leader: self.wal.sync_gate().leader_hint(),
            });
        }
        Ok(())
    }

    /// Installs this transaction's pending writes as committed chain
    /// versions at timestamp `ts`. The undo log is the write set: every
    /// written rid appears there exactly once per touch, and
    /// `install_version` is a no-op once the pending-writer mark is
    /// cleared, so double-touched rids install a single version.
    fn install_versions(&self, txn: &Transaction, ts: u64) {
        for rec in &txn.undo {
            let (table, rid) = match rec {
                UndoRecord::Insert { table, rid } => (*table, *rid),
                UndoRecord::Update { table, rid, .. } => (*table, *rid),
                UndoRecord::Delete { table, rid, .. } => (*table, *rid),
            };
            if let Ok(t) = self.catalog.get_by_id(table) {
                t.heap().install_version(rid, txn.id().0, ts);
            }
        }
    }

    /// Asynchronous commit: appends the redo batch + `Commit` atomically
    /// and returns a [`CommitTicket`] **at enqueue time**, without waiting
    /// for the flush. The caller keeps running (and may start its next
    /// transaction) while the WAL shard makes the batch durable; call
    /// [`CommitTicket::wait`] before acknowledging the commit to anyone
    /// who needs durability. Locks are released immediately — sound
    /// because every durability acknowledgement (synchronous commits and
    /// ticket waits alike) parks on the WAL's **merged** durable horizon,
    /// which covers all shards: a later transaction that read this data
    /// appends at a higher LSN, so its ack transitively covers this
    /// batch even when the two transactions hash to different shards.
    /// If no dependent commit is ever acknowledged, recovery replays
    /// only the gap-free on-disk prefix, so a crash can lose this
    /// unacknowledged batch together with everything that depended on
    /// it — never a dependent commit alone.
    ///
    /// Read-only transactions get a trivially-durable ticket.
    pub fn commit_nowait(&self, txn: &mut Transaction) -> Result<CommitTicket> {
        txn.assert_active()?;
        let started = std::time::Instant::now();
        let mut visible_ts = None;
        let ticket = if txn.redo.is_empty() {
            txn.release_snapshot();
            self.wal.durable_ticket()
        } else if txn.snapshot().is_some() {
            // Snapshot-mode async commit: versions are installed at
            // enqueue time, before durability — the same contract as the
            // 2PL NOWAIT path, which releases X locks at enqueue. A crash
            // may lose the batch, but never an acknowledged dependent.
            let batch = std::mem::take(&mut txn.redo);
            let (ticket, ts) = self.wal.append_commit_enqueue(batch, txn.id());
            self.install_versions(txn, ts);
            self.wal.oracle().finish(ts);
            txn.release_snapshot();
            self.maybe_gc();
            visible_ts = Some(ts);
            ticket
        } else {
            let mut batch = std::mem::take(&mut txn.redo);
            batch.push(LogRecord::Commit(txn.id()));
            self.wal.append_batch_enqueue(batch)
        };
        txn.mark_committed()?;
        self.release_locks(txn);
        // NOWAIT defers durability, not visibility: same stable-horizon
        // wait as the synchronous snapshot commit, so callers never
        // publish state a fresh snapshot contradicts.
        if let Some(ts) = visible_ts {
            self.wal.oracle().wait_stable(ts, Duration::from_secs(5));
        }
        // NOWAIT commit latency is the enqueue cost, not durability —
        // the deliberately-absent fsync wait is the point of the mode.
        self.commit_hist.record_micros(started.elapsed());
        Ok(ticket)
    }

    /// Runs one checkpoint cycle: snapshots the committed log prefix into
    /// the (persisted) checkpoint image and truncates the WAL, bounding
    /// its resident memory and the recovery tail. See
    /// [`crate::checkpoint`].
    pub fn checkpoint(&self) -> Result<crate::checkpoint::CheckpointStats> {
        self.ckpt.run(self)
    }

    /// The checkpointer (its running image and sidecar path).
    pub fn checkpointer(&self) -> &crate::checkpoint::Checkpointer {
        &self.ckpt
    }

    /// Aborts: applies the undo log in reverse, writes an `Abort` record,
    /// and releases locks. Safe to call on an already-aborted transaction
    /// (idempotent no-op) so error paths can abort unconditionally.
    pub fn abort(&self, txn: &mut Transaction) {
        if txn.assert_active().is_err() {
            return;
        }
        let wrote = !txn.redo.is_empty() || !txn.undo.is_empty();
        let mut touched: Vec<(bullfrog_common::TableId, RowId)> = Vec::new();
        for rec in std::mem::take(&mut txn.undo).into_iter().rev() {
            // Undo application must not fail: the operations below only
            // reverse changes this transaction itself made while holding
            // X locks. A failure indicates corruption, so surface loudly.
            match rec {
                UndoRecord::Insert { table, rid } => {
                    let t = self.catalog.get_by_id(table).expect("undo: table exists");
                    t.undo_insert(rid).expect("undo insert");
                    touched.push((table, rid));
                }
                UndoRecord::Update { table, rid, old } => {
                    let t = self.catalog.get_by_id(table).expect("undo: table exists");
                    t.undo_update(rid, old).expect("undo update");
                    touched.push((table, rid));
                }
                UndoRecord::Delete { table, rid, old } => {
                    let t = self.catalog.get_by_id(table).expect("undo: table exists");
                    t.undo_delete(rid, old).expect("undo delete");
                    touched.push((table, rid));
                }
            }
        }
        // Snapshot mode: undo restored each slot to its pre-transaction
        // state (the newest committed chain version), so dropping the
        // pending-writer marks re-establishes the writer-free invariant.
        if txn.snapshot().is_some() {
            for (table, rid) in touched {
                if let Ok(t) = self.catalog.get_by_id(table) {
                    t.heap().clear_pending(rid, txn.id().0);
                }
            }
            txn.release_snapshot();
        }
        txn.redo.clear();
        // A transaction that never wrote leaves no trace to disclaim.
        if wrote {
            self.wal.append(LogRecord::Abort(txn.id()));
        }
        txn.mark_aborted().expect("active checked above");
        self.release_locks(txn);
    }

    fn release_locks(&self, txn: &mut Transaction) {
        let keys = std::mem::take(&mut txn.locks);
        self.lm.release_all(txn.id(), keys);
    }

    /// Runs `f` inside a transaction: commit on `Ok`, abort on `Err`.
    pub fn with_txn<T>(&self, f: impl FnOnce(&mut Transaction) -> Result<T>) -> Result<T> {
        let mut txn = self.begin();
        match f(&mut txn) {
            Ok(v) => {
                self.commit(&mut txn)?;
                Ok(v)
            }
            Err(e) => {
                self.abort(&mut txn);
                Err(e)
            }
        }
    }

    /// As [`Database::with_txn`], retrying (with a fresh transaction) while
    /// `f` fails with a retryable error, up to `max_attempts`.
    pub fn with_txn_retry<T>(
        &self,
        max_attempts: usize,
        mut f: impl FnMut(&mut Transaction) -> Result<T>,
    ) -> Result<T> {
        let mut last = None;
        for _ in 0..max_attempts {
            match self.with_txn(&mut f) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| Error::Internal("retry limit with no attempt".into())))
    }

    // --- locking helpers ---------------------------------------------------

    /// Acquires a lock and records it on the transaction. A declared ally
    /// (`Transaction::ally`) never conflicts with the request.
    pub fn lock(&self, txn: &mut Transaction, key: LockKey, mode: LockMode) -> Result<()> {
        txn.assert_active()?;
        if self
            .lm
            .acquire_deadline_ally(txn.id(), key, mode, self.lm.timeout(), txn.ally())?
        {
            txn.record_lock(key);
        }
        Ok(())
    }

    fn lock_row_for(
        &self,
        txn: &mut Transaction,
        table: &Table,
        rid: RowId,
        policy: LockPolicy,
    ) -> Result<()> {
        match policy {
            LockPolicy::None => Ok(()),
            LockPolicy::Shared => {
                self.lock(txn, LockKey::Table(table.id()), LockMode::IS)?;
                self.lock(txn, LockKey::Row(table.id(), rid), LockMode::S)
            }
            LockPolicy::Exclusive => {
                self.lock(txn, LockKey::Table(table.id()), LockMode::IX)?;
                self.lock(txn, LockKey::Row(table.id(), rid), LockMode::X)
            }
        }
    }

    /// Snapshot-mode write admission for an in-place update/delete of
    /// `rid` (no-op under 2PL, returning `false`). Enforces
    /// first-updater-wins — if a version of the row committed after this
    /// transaction's snapshot, the write loses with a retryable
    /// [`Error::WriteConflict`] — then marks the transaction as the row's
    /// pending writer. Returns whether this call was the transaction's
    /// first touch of the row (the caller must `clear_pending` on an
    /// immediately-following mutation failure in that case; later touches
    /// are cleaned up through the undo log).
    fn prepare_si_write(&self, txn: &mut Transaction, t: &Table, rid: RowId) -> Result<bool> {
        let Some(snap) = txn.snapshot() else {
            return Ok(false);
        };
        let first_touch = !txn.undo.iter().any(|u| match u {
            UndoRecord::Insert { table, rid: r } => *table == t.id() && *r == rid,
            UndoRecord::Update { table, rid: r, .. } => *table == t.id() && *r == rid,
            UndoRecord::Delete { table, rid: r, .. } => *table == t.id() && *r == rid,
        });
        if first_touch && t.heap().newest_version_ts(rid) > snap.ts() {
            return Err(Error::WriteConflict {
                txn: txn.id(),
                table: t.id(),
            });
        }
        snap.mark_writer();
        txn.mark_snapshot_used();
        t.heap().prepare_write(rid, txn.id().0);
        Ok(first_touch)
    }

    // --- DML ----------------------------------------------------------------

    /// Inserts a row transactionally: IX table lock, FK checks (S locks on
    /// referenced rows), uniqueness via the table's indexes, X lock on the
    /// new row, undo + redo records.
    pub fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<RowId> {
        self.insert_with(txn, table, row, true)
    }

    /// As [`Database::insert`] with explicit control over FK S-locking.
    /// Migration transactions pass `fk_lock = false` — see
    /// [`crate::fk::check_outgoing_with`].
    pub fn insert_with(
        &self,
        txn: &mut Transaction,
        table: &str,
        row: Row,
        fk_lock: bool,
    ) -> Result<RowId> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?;
        crate::fk::check_outgoing_with(self, txn, &t, &row, fk_lock)?;
        let rid = if let Some(snap) = txn.snapshot() {
            // Snapshot mode: the new slot carries a pending-writer mark so
            // concurrent snapshot readers skip it until commit installs
            // its first version.
            snap.mark_writer();
            t.insert_versioned(row.clone(), txn.id().0)?
        } else {
            t.insert(row.clone())?
        };
        txn.mark_snapshot_used();
        self.lock(txn, LockKey::Row(t.id(), rid), LockMode::X)?;
        txn.push_undo(UndoRecord::Insert { table: t.id(), rid });
        txn.push_redo(LogRecord::Insert {
            txn: txn.id(),
            table: t.id(),
            rid,
            row,
        });
        Ok(rid)
    }

    /// Inserts unless a uniqueness constraint rejects the row; `Ok(None)`
    /// on conflict. This is `INSERT ... ON CONFLICT DO NOTHING`, the
    /// alternative duplicate-migration guard of paper §3.7.
    pub fn insert_or_ignore(
        &self,
        txn: &mut Transaction,
        table: &str,
        row: Row,
    ) -> Result<Option<RowId>> {
        self.insert_or_ignore_with(txn, table, row, true)
    }

    /// As [`Database::insert_or_ignore`] with explicit FK S-lock control.
    pub fn insert_or_ignore_with(
        &self,
        txn: &mut Transaction,
        table: &str,
        row: Row,
        fk_lock: bool,
    ) -> Result<Option<RowId>> {
        match self.insert_with(txn, table, row, fk_lock) {
            Ok(rid) => Ok(Some(rid)),
            Err(Error::UniqueViolation { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Unlogged, unlocked bulk insert for initial data loading only.
    pub fn insert_unlogged(&self, table: &str, row: Row) -> Result<RowId> {
        self.catalog.get(table)?.insert(row)
    }

    /// Updates the row at `rid` transactionally.
    pub fn update(
        &self,
        txn: &mut Transaction,
        table: &str,
        rid: RowId,
        new_row: Row,
    ) -> Result<()> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?;
        self.lock(txn, LockKey::Row(t.id(), rid), LockMode::X)?;
        crate::fk::check_outgoing(self, txn, &t, &new_row)?;
        let first_touch = self.prepare_si_write(txn, &t, rid)?;
        let old = match t.update(rid, new_row.clone()) {
            Ok(old) => old,
            Err(e) => {
                if first_touch {
                    t.heap().clear_pending(rid, txn.id().0);
                }
                return Err(e);
            }
        };
        txn.push_undo(UndoRecord::Update {
            table: t.id(),
            rid,
            old,
        });
        txn.push_redo(LogRecord::Update {
            txn: txn.id(),
            table: t.id(),
            rid,
            after: new_row,
        });
        Ok(())
    }

    /// Deletes the row at `rid` transactionally, returning it.
    pub fn delete(&self, txn: &mut Transaction, table: &str, rid: RowId) -> Result<Row> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?;
        self.lock(txn, LockKey::Row(t.id(), rid), LockMode::X)?;
        if self.config.enforce_fk_on_delete {
            crate::fk::check_incoming(self, txn, &t, rid)?;
        }
        let first_touch = self.prepare_si_write(txn, &t, rid)?;
        let old = match t.delete(rid) {
            Ok(old) => old,
            Err(e) => {
                if first_touch {
                    t.heap().clear_pending(rid, txn.id().0);
                }
                return Err(e);
            }
        };
        txn.push_undo(UndoRecord::Delete {
            table: t.id(),
            rid,
            old: old.clone(),
        });
        txn.push_redo(LogRecord::Delete {
            txn: txn.id(),
            table: t.id(),
            rid,
        });
        Ok(old)
    }

    /// Point read of `rid` under the given lock policy.
    pub fn get(
        &self,
        txn: &mut Transaction,
        table: &str,
        rid: RowId,
        policy: LockPolicy,
    ) -> Result<Option<Row>> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        self.read_row(txn, &t, rid, policy)
    }

    /// Point read of `rid` in `t` under `policy`. Under
    /// [`EngineMode::Snapshot`], `Shared` reads take no locks: they
    /// traverse the row's version chain at the transaction's snapshot
    /// timestamp (seeing their own uncommitted writes). `Exclusive` and
    /// `None` behave as under 2PL.
    pub fn read_row(
        &self,
        txn: &mut Transaction,
        t: &Table,
        rid: RowId,
        policy: LockPolicy,
    ) -> Result<Option<Row>> {
        if policy == LockPolicy::Shared {
            if let Some(snap) = txn.snapshot_ts() {
                txn.mark_snapshot_used();
                return Ok(t.heap().get_visible(rid, Some(txn.id().0), snap));
            }
        }
        self.lock_row_for(txn, t, rid, policy)?;
        Ok(t.heap().get(rid))
    }

    /// Point read through the primary key.
    pub fn get_by_pk(
        &self,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        policy: LockPolicy,
    ) -> Result<Option<(RowId, Row)>> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        if policy == LockPolicy::Shared {
            if let Some(snap) = txn.snapshot_ts() {
                txn.mark_snapshot_used();
                return self.get_by_pk_visible(txn, &t, key, snap);
            }
        }
        let Some((rid, _)) = t.get_by_pk(key) else {
            return Ok(None);
        };
        self.lock_row_for(txn, &t, rid, policy)?;
        // Re-read after locking: the row may have changed or vanished while
        // we waited.
        Ok(t.heap().get(rid).map(|row| (rid, row)))
    }

    /// Snapshot-mode pk lookup. Indexes track the *latest* state (entries
    /// are removed at delete time and moved at update time), so a probe
    /// alone can miss a row that is still visible at an older snapshot.
    /// Probe first — when the hit's visible row still carries the key, it
    /// is authoritative — and otherwise fall back to a visible scan.
    fn get_by_pk_visible(
        &self,
        txn: &Transaction,
        t: &Table,
        key: &[Value],
        snap: u64,
    ) -> Result<Option<(RowId, Row)>> {
        let pk = t.schema().pk_indices()?;
        let matches_key =
            |row: &Row| pk.len() == key.len() && pk.iter().zip(key).all(|(&i, v)| &row[i] == v);
        if let Some((rid, _)) = t.get_by_pk(key) {
            if let Some(row) = t.heap().get_visible(rid, Some(txn.id().0), snap) {
                if matches_key(&row) {
                    return Ok(Some((rid, row)));
                }
            }
        }
        // The probe missed (or its row no longer carries the key). When the
        // heap's latest state matches the snapshot — checked *after* the
        // probe — the pk index is authoritative for this snapshot too, so
        // the miss is final and the O(n) fallback scan can be skipped.
        if t.heap().current_matches_snapshot(snap) {
            return Ok(None);
        }
        let mut found = None;
        t.heap().scan_visible(Some(txn.id().0), snap, |rid, row| {
            if matches_key(row) {
                found = Some((rid, row.clone()));
                false
            } else {
                true
            }
        });
        Ok(found)
    }

    /// Predicate select over one table. Uses an index for `col = literal`
    /// conjuncts when one covers them, otherwise scans; each candidate is
    /// locked per `policy` and then re-checked against the predicate.
    pub fn select(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: Option<&Expr>,
        policy: LockPolicy,
    ) -> Result<Vec<(RowId, Row)>> {
        txn.assert_active()?;
        let t = self.catalog.get(table)?;
        if policy == LockPolicy::Shared {
            if let Some(snap) = txn.snapshot_ts() {
                txn.mark_snapshot_used();
                let scope = table_scope(&t);
                // Indexes track the *latest* state, so in general an old
                // snapshot must scan version chains. But when an index
                // covers the predicate AND the table has no committed
                // version newer than the snapshot and no write in flight,
                // latest == snapshot and the index lookup is exact.
                // Re-validate the gate after the candidate walk: a racing
                // writer either still holds its pending marker or has
                // installed a version above the snapshot, so it cannot
                // slip through (see `TableHeap::current_matches_snapshot`).
                // This is the hot path for background migration, whose
                // granule reads run against a frozen old table.
                if t.heap().current_matches_snapshot(snap) {
                    if let Some(candidates) = self.index_candidates(&t, predicate) {
                        let mut out = Vec::with_capacity(candidates.len());
                        for rid in candidates {
                            let Some(row) = t.heap().get_visible(rid, Some(txn.id().0), snap)
                            else {
                                continue;
                            };
                            let keep = match predicate {
                                Some(p) => p.matches(&scope, &row)?,
                                None => true,
                            };
                            if keep {
                                out.push((rid, row));
                            }
                        }
                        if t.heap().current_matches_snapshot(snap) {
                            return Ok(out);
                        }
                        // A writer raced the walk: discard, take the scan.
                    }
                }
                let mut out = Vec::new();
                let mut err = None;
                t.heap()
                    .scan_visible(Some(txn.id().0), snap, |rid, row| match predicate {
                        None => {
                            out.push((rid, row.clone()));
                            true
                        }
                        Some(p) => match p.matches(&scope, row) {
                            Ok(true) => {
                                out.push((rid, row.clone()));
                                true
                            }
                            Ok(false) => true,
                            Err(e) => {
                                err = Some(e);
                                false
                            }
                        },
                    });
                if let Some(e) = err {
                    return Err(e);
                }
                return Ok(out);
            }
        }
        match policy {
            LockPolicy::None => {}
            LockPolicy::Shared => self.lock(txn, LockKey::Table(t.id()), LockMode::IS)?,
            LockPolicy::Exclusive => self.lock(txn, LockKey::Table(t.id()), LockMode::IX)?,
        }
        let scope = table_scope(&t);
        let candidates = self.candidates(&t, predicate, &scope)?;
        let mut out = Vec::new();
        for rid in candidates {
            if policy != LockPolicy::None {
                self.lock_row_for(txn, &t, rid, policy)?;
            }
            let Some(row) = t.heap().get(rid) else {
                continue; // vanished while we waited for the lock
            };
            let keep = match predicate {
                Some(p) => p.matches(&scope, &row)?,
                None => true,
            };
            if keep {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    /// Index-assisted candidate lookup: `Some(rids)` when the predicate's
    /// sargable conjuncts cover an index prefix (point/prefix lookup or
    /// range scan), `None` when no index applies and the caller must scan.
    fn index_candidates(&self, t: &Table, predicate: Option<&Expr>) -> Option<Vec<RowId>> {
        let p = predicate?;
        let eqs = pred::sargable_equalities(p);
        let ranges = pred::sargable_ranges(p);
        if eqs.is_empty() && ranges.is_empty() {
            return None;
        }
        // Resolve the equality columns to positions.
        let mut by_pos: Vec<(usize, Value)> = Vec::new();
        for (col, v) in &eqs {
            if let Ok(i) = t.schema().col_index(&col.column) {
                by_pos.push((i, v.clone()));
            }
        }
        let mut positions: Vec<usize> = by_pos.iter().map(|(i, _)| *i).collect();
        // Range columns also make an index eligible.
        let mut range_by_pos: Vec<(usize, Option<pred::RangeBound>, Option<pred::RangeBound>)> =
            Vec::new();
        for (col, lo, hi) in &ranges {
            if let Ok(i) = t.schema().col_index(&col.column) {
                range_by_pos.push((i, lo.clone(), hi.clone()));
                positions.push(i);
            }
        }
        let idx = t.index_for_columns(&positions)?;
        // Build the longest usable equality prefix.
        let mut key = Vec::new();
        let mut next_kc = None;
        for kc in &idx.def().key_columns {
            match by_pos.iter().find(|(i, _)| i == kc) {
                Some((_, v)) => key.push(v.clone()),
                None => {
                    next_kc = Some(*kc);
                    break;
                }
            }
        }
        // A range bound on the key column right after the prefix turns
        // the prefix lookup into a range scan (TPC-C StockLevel's
        // "last 20 orders" window).
        if let Some(kc) = next_kc {
            if let Some((_, lo, hi)) = range_by_pos.iter().find(|(i, _, _)| *i == kc) {
                if !key.is_empty() || lo.is_some() {
                    return Some(idx.range_scan(&key, lo.as_ref(), hi.as_ref()));
                }
            }
        }
        if !key.is_empty() {
            return Some(idx.get_prefix(&key));
        }
        None
    }

    /// Candidate row ids for a predicate: an index point/prefix lookup when
    /// the predicate's `col = literal` conjuncts cover an index prefix,
    /// otherwise a heap scan filtered by the predicate.
    fn candidates(&self, t: &Table, predicate: Option<&Expr>, scope: &Scope) -> Result<Vec<RowId>> {
        if let Some(rids) = self.index_candidates(t, predicate) {
            return Ok(rids);
        }
        if let Some(p) = predicate {
            // Fallback: filtered heap scan.
            let mut rids = Vec::new();
            let mut err = None;
            t.heap().scan(|rid, row| match p.matches(scope, row) {
                Ok(true) => {
                    rids.push(rid);
                    true
                }
                Ok(false) => true,
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok(rids)
        } else {
            let mut rids = Vec::new();
            t.heap().scan(|rid, _| {
                rids.push(rid);
                true
            });
            Ok(rids)
        }
    }

    /// Unlocked, untransactional select (frozen tables / diagnostics).
    pub fn select_unlocked(
        &self,
        table: &str,
        predicate: Option<&Expr>,
    ) -> Result<Vec<(RowId, Row)>> {
        let t = self.catalog.get(table)?;
        let scope = table_scope(&t);
        let candidates = self.candidates(&t, predicate, &scope)?;
        let mut out = Vec::new();
        for rid in candidates {
            if let Some(row) = t.heap().get(rid) {
                let keep = match predicate {
                    Some(p) => p.matches(&scope, &row)?,
                    None => true,
                };
                if keep {
                    out.push((rid, row));
                }
            }
        }
        Ok(out)
    }

    // --- version GC (Snapshot engine mode) ---------------------------------

    /// Amortized inline GC: every 64th snapshot-mode commit prunes
    /// version chains below the oracle's horizon on its own thread.
    fn maybe_gc(&self) {
        if self.si_commits.fetch_add(1, Ordering::Relaxed) % 64 == 63 {
            self.version_gc();
        }
    }

    /// Prunes every table's version chains below the GC horizon (the
    /// oldest active snapshot, capped by the stable timestamp). Returns
    /// the number of chain nodes freed.
    pub fn version_gc(&self) -> usize {
        let horizon = self.wal.oracle().gc_horizon();
        let mut freed = 0;
        for name in self.catalog.table_names() {
            if let Ok(t) = self.catalog.get(&name) {
                freed += t.heap().gc_versions(horizon);
            }
        }
        self.gc_reclaimed.fetch_add(freed as u64, Ordering::Relaxed);
        freed
    }

    /// Retained version-chain nodes across all tables (O(pages)).
    pub fn version_count(&self) -> usize {
        let mut n = 0;
        for name in self.catalog.table_names() {
            if let Ok(t) = self.catalog.get(&name) {
                n += t.heap().version_count();
            }
        }
        n
    }

    /// Chain nodes reclaimed by GC since this database opened.
    pub fn gc_reclaimed(&self) -> u64 {
        self.gc_reclaimed.load(Ordering::Relaxed)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_names())
            .field("wal_records", &self.wal.len())
            .finish()
    }
}

/// Scope for single-table predicates: columns visible both bare and
/// qualified by the table's catalog name.
pub fn table_scope(t: &Table) -> Scope {
    let cols: Vec<String> = t.schema().columns.iter().map(|c| c.name.clone()).collect();
    Scope::table(t.name(), &cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{row, ColumnDef, DataType};

    fn db_with_accounts() -> Database {
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("owner", DataType::Text),
                    ColumnDef::new("balance", DataType::Decimal),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_commit_visible() {
        let db = db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "alice", 1000]))
            .unwrap();
        let mut txn = db.begin();
        let got = db
            .get(&mut txn, "accounts", rid, LockPolicy::Shared)
            .unwrap();
        assert_eq!(got, Some(row![1, "alice", 1000]));
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn abort_rolls_back_insert_update_delete() {
        let db = db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "alice", 1000]))
            .unwrap();

        let mut txn = db.begin();
        db.insert(&mut txn, "accounts", row![2, "bob", 5]).unwrap();
        db.update(&mut txn, "accounts", rid, row![1, "alice", 900])
            .unwrap();
        db.abort(&mut txn);

        let mut txn = db.begin();
        assert!(db
            .get_by_pk(&mut txn, "accounts", &[Value::Int(2)], LockPolicy::Shared)
            .unwrap()
            .is_none());
        let (_, row) = db
            .get_by_pk(&mut txn, "accounts", &[Value::Int(1)], LockPolicy::Shared)
            .unwrap()
            .unwrap();
        assert_eq!(row, row![1, "alice", 1000]);
        db.commit(&mut txn).unwrap();

        // Delete + abort restores.
        let mut txn = db.begin();
        db.delete(&mut txn, "accounts", rid).unwrap();
        db.abort(&mut txn);
        let mut txn = db.begin();
        assert!(db
            .get(&mut txn, "accounts", rid, LockPolicy::Shared)
            .unwrap()
            .is_some());
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn unique_violation_inside_txn_is_clean() {
        let db = db_with_accounts();
        db.with_txn(|txn| db.insert(txn, "accounts", row![1, "a", 0]))
            .unwrap();
        let err = db
            .with_txn(|txn| {
                db.insert(txn, "accounts", row![2, "b", 0])?;
                db.insert(txn, "accounts", row![1, "dup", 0])
            })
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
        // The first insert of the failed txn rolled back.
        let mut txn = db.begin();
        assert!(db
            .get_by_pk(&mut txn, "accounts", &[Value::Int(2)], LockPolicy::Shared)
            .unwrap()
            .is_none());
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn insert_or_ignore_swallows_conflicts() {
        let db = db_with_accounts();
        db.with_txn(|txn| {
            assert!(db
                .insert_or_ignore(txn, "accounts", row![1, "a", 0])?
                .is_some());
            assert!(db
                .insert_or_ignore(txn, "accounts", row![1, "dup", 0])?
                .is_none());
            Ok(())
        })
        .unwrap();
        assert_eq!(db.table("accounts").unwrap().live_count(), 1);
    }

    #[test]
    fn select_uses_pk_index_and_rechecks() {
        let db = db_with_accounts();
        db.with_txn(|txn| {
            for i in 0..100 {
                db.insert(txn, "accounts", row![i, format!("o{i}"), i * 10])?;
            }
            Ok(())
        })
        .unwrap();
        let mut txn = db.begin();
        let p = Expr::column("id").eq(Expr::lit(42));
        let got = db
            .select(&mut txn, "accounts", Some(&p), LockPolicy::Shared)
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, row![42, "o42", 420]);
        // Scan path: non-indexed predicate.
        let p = Expr::column("balance").ge(Expr::lit(Value::Decimal(980)));
        let got = db
            .select(&mut txn, "accounts", Some(&p), LockPolicy::Shared)
            .unwrap();
        assert_eq!(got.len(), 2); // balances 980, 990
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn write_conflict_times_out() {
        // Asserts 2PL blocking-reader semantics; pin the mode so the
        // suite also passes under BULLFROG_ENGINE_MODE=si.
        let db = Arc::new(Database::with_config(DbConfig {
            lock_timeout: Duration::from_millis(30),
            mode: EngineMode::TwoPL,
            ..DbConfig::default()
        }));
        db.create_table(
            TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
        )
        .unwrap();
        let rid = db.with_txn(|txn| db.insert(txn, "t", row![1])).unwrap();

        let mut holder = db.begin();
        db.update(&mut holder, "t", rid, row![2]).unwrap();

        // A second writer cannot get the X lock.
        let mut other = db.begin();
        let err = db.update(&mut other, "t", rid, row![3]).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
        db.abort(&mut other);

        // A reader with S policy also blocks (no dirty read) and times out.
        let mut reader = db.begin();
        assert!(db.get(&mut reader, "t", rid, LockPolicy::Shared).is_err());
        db.abort(&mut reader);

        db.commit(&mut holder).unwrap();
        // Now the read sees the committed value.
        let mut reader = db.begin();
        assert_eq!(
            db.get(&mut reader, "t", rid, LockPolicy::Shared).unwrap(),
            Some(row![2])
        );
        db.commit(&mut reader).unwrap();
    }

    #[test]
    fn with_txn_retry_retries_lock_timeouts() {
        let db = Arc::new(Database::with_config(DbConfig {
            lock_timeout: Duration::from_millis(20),
            ..DbConfig::default()
        }));
        db.create_table(
            TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
        )
        .unwrap();
        let rid = db.with_txn(|txn| db.insert(txn, "t", row![1])).unwrap();

        let mut holder = db.begin();
        db.update(&mut holder, "t", rid, row![2]).unwrap();
        let db2 = Arc::clone(&db);
        let t = std::thread::spawn(move || {
            db2.with_txn_retry(50, |txn| db2.update(txn, "t", rid, row![3]))
        });
        std::thread::sleep(Duration::from_millis(60));
        db.commit(&mut holder).unwrap();
        t.join().unwrap().unwrap();
        let mut txn = db.begin();
        assert_eq!(
            db.get(&mut txn, "t", rid, LockPolicy::Shared).unwrap(),
            Some(row![3])
        );
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn commit_writes_atomic_wal_batch() {
        // Asserts the 2PL commit-record shape (`Commit`, not `CommitTs`).
        let db = Database::with_config(DbConfig {
            mode: EngineMode::TwoPL,
            ..DbConfig::default()
        });
        db.create_table(
            TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("owner", DataType::Text),
                    ColumnDef::new("balance", DataType::Decimal),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db.with_txn(|txn| {
            db.insert(txn, "accounts", row![1, "a", 0])?;
            db.insert(txn, "accounts", row![2, "b", 0])
        })
        .unwrap();
        let records = db.wal().snapshot();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], LogRecord::Insert { .. }));
        assert!(matches!(records[2], LogRecord::Commit(_)));
    }

    fn si_db_with_accounts() -> Database {
        let db = Database::with_config(DbConfig {
            mode: EngineMode::Snapshot,
            lock_timeout: Duration::from_millis(50),
            ..DbConfig::default()
        });
        db.create_table(
            TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("owner", DataType::Text),
                    ColumnDef::new("balance", DataType::Decimal),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        db
    }

    #[test]
    fn si_readers_never_block_on_writers() {
        let db = si_db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "alice", 100]))
            .unwrap();

        let mut writer = db.begin();
        db.update(&mut writer, "accounts", rid, row![1, "alice", 999])
            .unwrap();

        // The writer holds the X lock, but a snapshot reader sees the old
        // committed value immediately — no S lock, no timeout.
        let mut reader = db.begin();
        assert_eq!(
            db.get(&mut reader, "accounts", rid, LockPolicy::Shared)
                .unwrap(),
            Some(row![1, "alice", 100])
        );
        // Same through the pk index and through a predicate select.
        let (_, r) = db
            .get_by_pk(
                &mut reader,
                "accounts",
                &[Value::Int(1)],
                LockPolicy::Shared,
            )
            .unwrap()
            .unwrap();
        assert_eq!(r, row![1, "alice", 100]);
        db.commit(&mut writer).unwrap();
        // The reader's snapshot predates the commit: still the old value.
        assert_eq!(
            db.get(&mut reader, "accounts", rid, LockPolicy::Shared)
                .unwrap(),
            Some(row![1, "alice", 100])
        );
        db.commit(&mut reader).unwrap();
        // A fresh snapshot sees the new value.
        let mut late = db.begin();
        assert_eq!(
            db.get(&mut late, "accounts", rid, LockPolicy::Shared)
                .unwrap(),
            Some(row![1, "alice", 999])
        );
        db.commit(&mut late).unwrap();
    }

    #[test]
    fn si_first_updater_wins() {
        let db = si_db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "a", 10]))
            .unwrap();

        let mut loser = db.begin(); // snapshot taken before the winner commits
        db.with_txn(|txn| db.update(txn, "accounts", rid, row![1, "a", 20]))
            .unwrap();
        let err = db
            .update(&mut loser, "accounts", rid, row![1, "a", 30])
            .unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
        assert!(err.is_retryable());
        db.abort(&mut loser);

        // The retry (fresh snapshot) succeeds.
        db.with_txn_retry(3, |txn| db.update(txn, "accounts", rid, row![1, "a", 30]))
            .unwrap();
        let mut txn = db.begin();
        assert_eq!(
            db.get(&mut txn, "accounts", rid, LockPolicy::Shared)
                .unwrap(),
            Some(row![1, "a", 30])
        );
        db.commit(&mut txn).unwrap();
    }

    #[test]
    fn si_uncommitted_insert_invisible_deleted_row_visible() {
        let db = si_db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "a", 10]))
            .unwrap();

        let mut reader = db.begin();
        // Uncommitted insert by another txn: invisible to the reader but
        // visible to its own transaction.
        let mut writer = db.begin();
        db.insert(&mut writer, "accounts", row![2, "b", 20])
            .unwrap();
        assert!(db
            .get_by_pk(
                &mut reader,
                "accounts",
                &[Value::Int(2)],
                LockPolicy::Shared
            )
            .unwrap()
            .is_none());
        let all = db
            .select(&mut writer, "accounts", None, LockPolicy::Shared)
            .unwrap();
        assert_eq!(all.len(), 2, "writer reads its own insert");
        db.commit(&mut writer).unwrap();

        // Committed delete: still visible at the reader's snapshot, even
        // though the index entry is gone.
        db.with_txn(|txn| db.delete(txn, "accounts", rid).map(|_| ()))
            .unwrap();
        let (got_rid, got) = db
            .get_by_pk(
                &mut reader,
                "accounts",
                &[Value::Int(1)],
                LockPolicy::Shared,
            )
            .unwrap()
            .expect("snapshot still sees the deleted row");
        assert_eq!((got_rid, got), (rid, row![1, "a", 10]));
        assert_eq!(
            db.select(&mut reader, "accounts", None, LockPolicy::Shared)
                .unwrap()
                .len(),
            1,
            "reader's snapshot predates both the insert of 2 and the delete of 1"
        );
        db.commit(&mut reader).unwrap();
        let mut late = db.begin();
        assert!(db
            .get_by_pk(&mut late, "accounts", &[Value::Int(1)], LockPolicy::Shared)
            .unwrap()
            .is_none());
        db.commit(&mut late).unwrap();
    }

    #[test]
    fn si_abort_clears_pending_writes() {
        let db = si_db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "a", 10]))
            .unwrap();
        let mut t = db.begin();
        db.update(&mut t, "accounts", rid, row![1, "a", 99])
            .unwrap();
        db.insert(&mut t, "accounts", row![2, "b", 0]).unwrap();
        db.abort(&mut t);

        let mut txn = db.begin();
        assert_eq!(
            db.select(&mut txn, "accounts", None, LockPolicy::Shared)
                .unwrap(),
            vec![(rid, row![1, "a", 10])]
        );
        db.commit(&mut txn).unwrap();
        // The aborted writer left no pending marks: a new writer wins
        // immediately.
        db.with_txn(|txn| db.update(txn, "accounts", rid, row![1, "a", 11]))
            .unwrap();
    }

    #[test]
    fn si_version_gc_respects_active_snapshots() {
        let db = si_db_with_accounts();
        let rid = db
            .with_txn(|txn| db.insert(txn, "accounts", row![1, "a", 0]))
            .unwrap();
        let mut pinner = db.begin(); // pins the horizon at its snapshot
        for i in 1..=5 {
            db.with_txn(|txn| db.update(txn, "accounts", rid, row![1, "a", i]))
                .unwrap();
        }
        assert!(db.version_count() > 1);
        db.version_gc();
        // The pinner can still read its version.
        assert_eq!(
            db.get(&mut pinner, "accounts", rid, LockPolicy::Shared)
                .unwrap(),
            Some(row![1, "a", 0])
        );
        db.commit(&mut pinner).unwrap();
        let freed = db.version_gc();
        assert!(freed > 0, "releasing the snapshot unlocks GC");
        assert!(db.gc_reclaimed() >= freed as u64);
        assert_eq!(
            db.version_count(),
            0,
            "fully collapsed back to slot-only storage"
        );
    }

    #[test]
    fn si_concurrent_transfers_conserve_balance() {
        let db = Arc::new(si_db_with_accounts());
        db.with_txn(|txn| {
            for i in 0..10 {
                db.insert(txn, "accounts", row![i, format!("o{i}"), 1000])?;
            }
            Ok(())
        })
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut rng = t;
                for _ in 0..50 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (rng >> 33) % 10;
                    let to = (from + 1 + (rng >> 20) % 9) % 10;
                    let _ = db.with_txn_retry(50, |txn| {
                        let (rid_a, a) = db
                            .get_by_pk(
                                txn,
                                "accounts",
                                &[Value::Int(from as i64)],
                                LockPolicy::Exclusive,
                            )?
                            .ok_or(Error::RowNotFound)?;
                        let (rid_b, b) = db
                            .get_by_pk(
                                txn,
                                "accounts",
                                &[Value::Int(to as i64)],
                                LockPolicy::Exclusive,
                            )?
                            .ok_or(Error::RowNotFound)?;
                        let amount = Value::Decimal(7);
                        let new_a =
                            Row(vec![a[0].clone(), a[1].clone(), a[2].sub(&amount).unwrap()]);
                        let new_b =
                            Row(vec![b[0].clone(), b[1].clone(), b[2].add(&amount).unwrap()]);
                        db.update(txn, "accounts", rid_a, new_a)?;
                        db.update(txn, "accounts", rid_b, new_b)?;
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = db
            .select_unlocked("accounts", None)
            .unwrap()
            .iter()
            .map(|(_, r)| r[2].as_i64().unwrap())
            .sum();
        assert_eq!(total, 10_000);
        // The WAL's timestamp oracle converged: nothing in flight.
        let oracle = db.wal().oracle();
        assert_eq!(oracle.stable(), oracle.last_drawn());
    }

    #[test]
    fn concurrent_transfers_conserve_balance() {
        // Classic bank-transfer stress: total balance is invariant.
        let db = Arc::new(db_with_accounts());
        db.with_txn(|txn| {
            for i in 0..10 {
                db.insert(txn, "accounts", row![i, format!("o{i}"), 1000])?;
            }
            Ok(())
        })
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut rng = t;
                for _ in 0..50 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (rng >> 33) % 10;
                    let to = (from + 1 + (rng >> 20) % 9) % 10;
                    let _ = db.with_txn_retry(20, |txn| {
                        let (rid_a, a) = db
                            .get_by_pk(
                                txn,
                                "accounts",
                                &[Value::Int(from as i64)],
                                LockPolicy::Exclusive,
                            )?
                            .ok_or(Error::RowNotFound)?;
                        let (rid_b, b) = db
                            .get_by_pk(
                                txn,
                                "accounts",
                                &[Value::Int(to as i64)],
                                LockPolicy::Exclusive,
                            )?
                            .ok_or(Error::RowNotFound)?;
                        let amount = Value::Decimal(7);
                        let new_a =
                            Row(vec![a[0].clone(), a[1].clone(), a[2].sub(&amount).unwrap()]);
                        let new_b =
                            Row(vec![b[0].clone(), b[1].clone(), b[2].add(&amount).unwrap()]);
                        db.update(txn, "accounts", rid_a, new_a)?;
                        db.update(txn, "accounts", rid_b, new_b)?;
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = db
            .select_unlocked("accounts", None)
            .unwrap()
            .iter()
            .map(|(_, r)| r[2].as_i64().unwrap())
            .sum();
        assert_eq!(total, 10_000);
    }
}
