//! Foreign-key enforcement.
//!
//! Outgoing checks (insert/update) verify the referenced key exists and
//! take an S lock on the referenced row so it cannot be deleted before this
//! transaction commits. Incoming checks (delete) verify no live row still
//! references the deleted key, using an index on the referencing columns
//! when one exists and a scan otherwise.
//!
//! This module matters to BullFrog beyond plain integrity: when the *new*
//! schema declares foreign keys, an insert into a new table can only be
//! checked after the referenced rows have been migrated — `bullfrog-core`
//! widens migration scope accordingly (paper §4.5), then relies on these
//! checks.

use bullfrog_common::{Error, Result, Row, RowId, Value};
use bullfrog_storage::{BTreeIndex, Table};
use bullfrog_txn::{LockKey, LockMode, Transaction};
use std::sync::Arc;

use crate::db::Database;

/// Finds a unique index of `table` covering exactly the named columns (in
/// order); FK targets must have one.
pub fn referenced_index(table: &Table, ref_columns: &[String]) -> Option<Arc<BTreeIndex>> {
    let positions = table.schema().col_indices(ref_columns).ok()?;
    table
        .indexes()
        .into_iter()
        .find(|idx| idx.def().unique && idx.def().key_columns == positions)
}

/// Checks every outgoing FK of `row` (being written to `table`), locking
/// the referenced rows S. Rows with any NULL in the FK columns pass (SQL
/// `MATCH SIMPLE`).
pub fn check_outgoing(
    db: &Database,
    txn: &mut Transaction,
    table: &Table,
    row: &Row,
) -> Result<()> {
    check_outgoing_with(db, txn, table, row, true)
}

/// As [`check_outgoing`], optionally without taking S locks on the
/// referenced rows (`lock = false`).
///
/// Migration transactions use the lock-free variant: a client transaction
/// may hold locks on the referenced rows *while waiting for this very
/// migration*, so locking here would live-lock (the paper avoids the
/// situation by running migration work in separate transactions; we
/// additionally keep those transactions from blocking on client locks).
/// The relaxation only affects concurrent parent deletion, which the
/// migration workloads never do.
pub fn check_outgoing_with(
    db: &Database,
    txn: &mut Transaction,
    table: &Table,
    row: &Row,
    lock: bool,
) -> Result<()> {
    for fk in &table.schema().foreign_keys {
        let cols = table.schema().col_indices(&fk.columns)?;
        let key: Vec<Value> = row.key(&cols);
        if key.iter().any(Value::is_null) {
            continue;
        }
        let target = db.catalog().get(&fk.ref_table)?;
        let idx = referenced_index(&target, &fk.ref_columns).ok_or_else(|| {
            Error::Internal(format!(
                "fk {} target index missing (validated at DDL)",
                fk.name
            ))
        })?;
        let mut found = false;
        for rid in idx.get(&key) {
            // Lock before trusting: the referenced row may be an
            // uncommitted insert or about to be deleted.
            if lock {
                db.lock(txn, LockKey::Table(target.id()), LockMode::IS)?;
                db.lock(txn, LockKey::Row(target.id(), rid), LockMode::S)?;
            }
            if target.heap().get(rid).is_some() {
                found = true;
                break;
            }
        }
        if !found {
            return Err(Error::ForeignKeyViolation {
                table: table.name().to_owned(),
                references: fk.ref_table.clone(),
            });
        }
    }
    Ok(())
}

/// Checks that deleting `rid` from `table` leaves no dangling references:
/// scans every table whose FKs point at `table` for rows matching the
/// deleted key (index-assisted when the referencing columns are indexed).
pub fn check_incoming(
    db: &Database,
    txn: &mut Transaction,
    table: &Table,
    rid: RowId,
) -> Result<()> {
    let Some(victim) = table.heap().get(rid) else {
        return Ok(()); // nothing to protect
    };
    for name in db.catalog().table_names() {
        let referencing = db.catalog().get(&name)?;
        for fk in &referencing.schema().foreign_keys {
            // Match the FK target by catalog identity, not by the schema's
            // embedded name — the catalog name is authoritative and a
            // renamed table keeps its historical schema name.
            let Ok(target) = db.catalog().get(&fk.ref_table) else {
                continue;
            };
            if target.id() != table.id() {
                continue;
            }
            let ref_positions = table.schema().col_indices(&fk.ref_columns)?;
            let key = victim.key(&ref_positions);
            if key.iter().any(Value::is_null) {
                continue;
            }
            let fk_positions = referencing.schema().col_indices(&fk.columns)?;
            let hit = match referencing.index_for_columns(&fk_positions) {
                Some(idx) if idx.def().key_columns == fk_positions => !idx.get(&key).is_empty(),
                _ => {
                    let mut found = false;
                    referencing.heap().scan(|_, r| {
                        if r.key(&fk_positions) == key {
                            found = true;
                            false
                        } else {
                            true
                        }
                    });
                    found
                }
            };
            if hit {
                // Make sure the hit is real under locking? A referencing
                // row inserted by a concurrent uncommitted txn would block
                // on the S lock we hold... we conservatively reject.
                let _ = txn; // locks on `rid` already held by the caller
                return Err(Error::ForeignKeyViolation {
                    table: referencing.name().to_owned(),
                    references: table.name().to_owned(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Database, LockPolicy};
    use bullfrog_common::{row, ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "district",
                vec![
                    ColumnDef::new("d_id", DataType::Int),
                    ColumnDef::new("d_name", DataType::Text),
                ],
            )
            .with_primary_key(&["d_id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "customer",
                vec![
                    ColumnDef::new("c_id", DataType::Int),
                    ColumnDef::nullable("c_d_id", DataType::Int),
                ],
            )
            .with_primary_key(&["c_id"])
            .with_foreign_key("customer_d_fk", &["c_d_id"], "district", &["d_id"]),
        )
        .unwrap();
        db.with_txn(|txn| db.insert(txn, "district", row![1, "d1"]))
            .unwrap();
        db
    }

    #[test]
    fn fk_requires_unique_target_at_ddl() {
        let d = Database::new();
        d.create_table(TableSchema::new(
            "parent",
            vec![ColumnDef::new("x", DataType::Int)], // no PK/unique on x
        ))
        .unwrap();
        let err = d
            .create_table(
                TableSchema::new("child", vec![ColumnDef::new("x", DataType::Int)])
                    .with_foreign_key("fk", &["x"], "parent", &["x"]),
            )
            .unwrap_err();
        assert!(matches!(err, Error::SchemaMismatch(_)));
    }

    #[test]
    fn insert_with_valid_fk_passes() {
        let db = db();
        db.with_txn(|txn| db.insert(txn, "customer", row![10, 1]))
            .unwrap();
    }

    #[test]
    fn insert_with_dangling_fk_fails() {
        let db = db();
        let err = db
            .with_txn(|txn| db.insert(txn, "customer", row![10, 99]))
            .unwrap_err();
        assert!(matches!(err, Error::ForeignKeyViolation { .. }));
    }

    #[test]
    fn null_fk_passes() {
        let db = db();
        db.with_txn(|txn| db.insert(txn, "customer", Row(vec![Value::Int(10), Value::Null])))
            .unwrap();
    }

    #[test]
    fn delete_of_referenced_row_fails() {
        let db = db();
        db.with_txn(|txn| db.insert(txn, "customer", row![10, 1]))
            .unwrap();
        let err = db
            .with_txn(|txn| {
                let (rid, _) = db
                    .get_by_pk(txn, "district", &[Value::Int(1)], LockPolicy::Exclusive)?
                    .unwrap();
                db.delete(txn, "district", rid)
            })
            .unwrap_err();
        assert!(matches!(err, Error::ForeignKeyViolation { .. }));
    }

    #[test]
    fn delete_of_unreferenced_row_succeeds() {
        let db = db();
        db.with_txn(|txn| db.insert(txn, "district", row![2, "d2"]))
            .unwrap();
        db.with_txn(|txn| {
            let (rid, _) = db
                .get_by_pk(txn, "district", &[Value::Int(2)], LockPolicy::Exclusive)?
                .unwrap();
            db.delete(txn, "district", rid)
        })
        .unwrap();
    }

    #[test]
    fn referenced_row_locked_until_commit() {
        use std::sync::Arc;
        use std::time::Duration;
        let db = Arc::new(Database::with_config(crate::db::DbConfig {
            lock_timeout: Duration::from_millis(30),
            ..Default::default()
        }));
        db.create_table(
            TableSchema::new("p", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("c", vec![ColumnDef::new("pid", DataType::Int)]).with_foreign_key(
                "c_fk",
                &["pid"],
                "p",
                &["id"],
            ),
        )
        .unwrap();
        let prid = db.with_txn(|txn| db.insert(txn, "p", row![1])).unwrap();

        // txn1 inserts a child (S-locks the parent) and stays open.
        let mut child_txn = db.begin();
        db.insert(&mut child_txn, "c", row![1]).unwrap();
        // txn2 cannot delete the parent while txn1 is open.
        let mut del_txn = db.begin();
        assert!(db.delete(&mut del_txn, "p", prid).is_err());
        db.abort(&mut del_txn);
        db.abort(&mut child_txn);
        // After the child txn aborted, the delete goes through.
        db.with_txn(|txn| db.delete(txn, "p", prid)).unwrap();
    }
}
