//! Execution of [`SelectSpec`]s: filters, inner equi-joins, aggregation.
//!
//! The executor serves two masters:
//!
//! - **client read queries** (e.g. TPC-C StockLevel's join + COUNT
//!   DISTINCT), run with shared locks;
//! - **the migration engine** in `bullfrog-core`, which evaluates a
//!   migration statement restricted to a small scope: per-alias extra
//!   filters (the transposed client predicate) and/or a pinned set of
//!   *driving rows* (the exact granules being migrated).
//!
//! Join strategy: the driving table's rows are joined to each remaining
//! input in turn, via **index nested-loop** when the next table has an
//! index on its join columns and **hash join** otherwise. Single-alias
//! filter conjuncts are pushed down to the scans.

use std::collections::{BTreeMap, HashMap, HashSet};

use bullfrog_common::{Error, Result, Row, RowId, Value};
use bullfrog_query::{conjoin, conjuncts, AggFunc, ColRef, Expr, OutputColumn, Scope, SelectSpec};
use bullfrog_txn::Transaction;

use crate::db::{Database, LockPolicy};

/// Result of executing a spec: output column names and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Output column names (spec order).
    pub names: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

/// Scope restrictions for spec execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Additional per-alias filters (e.g. the transposed client predicate).
    pub extra_filters: BTreeMap<String, Expr>,
    /// Pin aliases to explicit row sets instead of scanning them (the
    /// migration engine pins the granule being migrated; pairwise n:n
    /// tracking pins both join sides).
    pub driving: Vec<(String, Vec<(RowId, Row)>)>,
    /// Row-lock policy for the scans.
    pub lock: LockPolicy,
}

/// Rewrites every column reference to a bare (unqualified) reference, for
/// evaluation against a single table's scope.
pub fn strip_aliases(e: &Expr) -> Expr {
    e.map_columns(&|c: &ColRef| Some(Expr::Col(ColRef::bare(c.column.clone()))))
}

/// Executes `spec` under the given options.
pub fn execute_spec(
    db: &Database,
    txn: &mut Transaction,
    spec: &SelectSpec,
    opts: &ExecOptions,
) -> Result<QueryOutput> {
    if spec.inputs.is_empty() {
        return Err(Error::InvalidMigration("spec has no inputs".into()));
    }

    // Split the residual filter into single-alias pushdowns and the rest.
    let mut pushdown: BTreeMap<String, Vec<Expr>> = BTreeMap::new();
    let mut residual: Vec<Expr> = Vec::new();
    if let Some(f) = &spec.filter {
        for c in conjuncts(f) {
            let mut cols = Vec::new();
            c.columns(&mut cols);
            let mut aliases: Vec<String> = cols
                .iter()
                .map(|cr| cr.table.clone().unwrap_or_default())
                .collect();
            aliases.sort();
            aliases.dedup();
            match aliases.as_slice() {
                [one] if spec.input(one).is_some() => {
                    pushdown.entry(one.clone()).or_default().push(c)
                }
                _ => residual.push(c),
            }
        }
    }
    for (alias, f) in &opts.extra_filters {
        pushdown.entry(alias.clone()).or_default().push(f.clone());
    }

    // Join order: driving aliases first, then the spec order.
    let mut order: Vec<&str> = Vec::new();
    for (alias, _) in &opts.driving {
        if spec.input(alias).is_none() {
            return Err(Error::InvalidMigration(format!(
                "driving alias {alias} is not an input"
            )));
        }
        if !order.contains(&alias.as_str()) {
            order.push(alias);
        }
    }
    for t in &spec.inputs {
        if !order.contains(&t.alias.as_str()) {
            order.push(&t.alias);
        }
    }

    // Seed with the first table's rows.
    let first_alias = order[0];
    let mut combined_scope = alias_scope(db, spec, first_alias)?;
    let mut combined: Vec<Row> = rows_for_alias(db, txn, spec, opts, &pushdown, first_alias)?
        .into_iter()
        .map(|(_, r)| r)
        .collect();

    // Fold in the remaining inputs.
    for &alias in &order[1..] {
        let next_scope = alias_scope(db, spec, alias)?;
        // Join conditions connecting `alias` to what we have so far.
        let mut probe_cols: Vec<ColRef> = Vec::new(); // over combined
        let mut build_cols: Vec<ColRef> = Vec::new(); // over next table
        for (a, b) in &spec.join_conds {
            let (a_alias, b_alias) = (
                a.table.as_deref().unwrap_or_default(),
                b.table.as_deref().unwrap_or_default(),
            );
            if a_alias == alias && combined_scope.resolve(b).is_ok() {
                build_cols.push(a.clone());
                probe_cols.push(b.clone());
            } else if b_alias == alias && combined_scope.resolve(a).is_ok() {
                build_cols.push(b.clone());
                probe_cols.push(a.clone());
            }
        }

        let table_name = &spec.input(alias).expect("alias validated").table;
        let table = db.table(table_name)?;
        let next_filter = conjoin(
            pushdown
                .get(alias)
                .cloned()
                .unwrap_or_default()
                .iter()
                .map(strip_aliases)
                .collect(),
        );

        let mut new_combined = Vec::new();
        if build_cols.is_empty() {
            // No connecting condition: cartesian product (rare; supported
            // for completeness).
            let rows = rows_for_alias(db, txn, spec, opts, &pushdown, alias)?;
            for left in &combined {
                for (_, right) in &rows {
                    new_combined.push(left.concat(right));
                }
            }
        } else {
            let build_positions: Vec<usize> = build_cols
                .iter()
                .map(|c| table.schema().col_index(&c.column))
                .collect::<Result<_>>()?;
            let probe_positions: Vec<usize> = probe_cols
                .iter()
                .map(|c| combined_scope.resolve(c))
                .collect::<Result<_>>()?;
            let pinned = opts.driving.iter().any(|(a, _)| a == alias);
            let index = if pinned {
                None
            } else {
                table
                    .index_for_columns(&build_positions)
                    .filter(|idx| idx.def().key_columns == build_positions)
            };
            let next_table_scope = crate::db::table_scope(&table);

            if let Some(idx) = index {
                // Index nested-loop join.
                for left in &combined {
                    let key: Vec<Value> =
                        probe_positions.iter().map(|&i| left[i].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    for rid in idx.get(&key) {
                        // `read_row` takes the policy's locks under 2PL
                        // and reads the version chain at the transaction's
                        // snapshot (lock-free) in Snapshot mode.
                        let right = if opts.lock == LockPolicy::None {
                            table.heap().get(rid)
                        } else {
                            db.read_row(txn, &table, rid, opts.lock)?
                        };
                        let Some(right) = right else {
                            continue;
                        };
                        if let Some(f) = &next_filter {
                            if !f.matches(&next_table_scope, &right)? {
                                continue;
                            }
                        }
                        new_combined.push(left.concat(&right));
                    }
                }
            } else {
                // Hash join: build on the next table's (filtered) rows.
                let rows = rows_for_alias(db, txn, spec, opts, &pushdown, alias)?;
                let mut ht: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
                for (_, r) in &rows {
                    let key: Vec<Value> = build_positions.iter().map(|&i| r[i].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    ht.entry(key).or_default().push(r);
                }
                for left in &combined {
                    let key: Vec<Value> =
                        probe_positions.iter().map(|&i| left[i].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = ht.get(&key) {
                        for right in matches {
                            new_combined.push(left.concat(right));
                        }
                    }
                }
            }
        }
        combined = new_combined;
        combined_scope = combined_scope.concat(&next_scope);
    }

    // Residual filter.
    if let Some(f) = conjoin(residual) {
        let mut kept = Vec::with_capacity(combined.len());
        for r in combined {
            if f.matches(&combined_scope, &r)? {
                kept.push(r);
            }
        }
        combined = kept;
    }

    // Projection / aggregation.
    let names = spec.output_names();
    let rows = if spec.is_aggregate() {
        aggregate(spec, &combined_scope, &combined)?
    } else {
        let mut out = Vec::with_capacity(combined.len());
        for r in &combined {
            let mut vals = Vec::with_capacity(spec.columns.len());
            for c in &spec.columns {
                match c {
                    OutputColumn::Scalar { expr, .. } => vals.push(expr.eval(&combined_scope, r)?),
                    OutputColumn::Agg { .. } => unreachable!("is_aggregate() was false"),
                }
            }
            out.push(Row(vals));
        }
        out
    };
    Ok(QueryOutput { names, rows })
}

/// Scope of one input alias.
fn alias_scope(db: &Database, spec: &SelectSpec, alias: &str) -> Result<Scope> {
    let tref = spec
        .input(alias)
        .ok_or_else(|| Error::InvalidMigration(format!("unknown alias {alias}")))?;
    let table = db.table(&tref.table)?;
    let cols: Vec<String> = table
        .schema()
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    Ok(Scope::table(alias, &cols))
}

/// Rows of one alias: pinned driving rows, or a (pushdown-filtered) scan.
fn rows_for_alias(
    db: &Database,
    txn: &mut Transaction,
    spec: &SelectSpec,
    opts: &ExecOptions,
    pushdown: &BTreeMap<String, Vec<Expr>>,
    alias: &str,
) -> Result<Vec<(RowId, Row)>> {
    if let Some((_, rows)) = opts.driving.iter().find(|(drv, _)| drv == alias) {
        // Apply pushdown filters to the pinned rows too.
        let filter = conjoin(
            pushdown
                .get(alias)
                .cloned()
                .unwrap_or_default()
                .iter()
                .map(strip_aliases)
                .collect(),
        );
        let tref = spec.input(alias).expect("validated");
        let table = db.table(&tref.table)?;
        let scope = crate::db::table_scope(&table);
        let mut out = Vec::with_capacity(rows.len());
        for (rid, r) in rows {
            let keep = match &filter {
                Some(f) => f.matches(&scope, r)?,
                None => true,
            };
            if keep {
                out.push((*rid, r.clone()));
            }
        }
        return Ok(out);
    }
    let tref = spec
        .input(alias)
        .ok_or_else(|| Error::InvalidMigration(format!("unknown alias {alias}")))?;
    let filter = conjoin(
        pushdown
            .get(alias)
            .cloned()
            .unwrap_or_default()
            .iter()
            .map(strip_aliases)
            .collect(),
    );
    match opts.lock {
        LockPolicy::None => db.select_unlocked(&tref.table, filter.as_ref()),
        policy => db.select(txn, &tref.table, filter.as_ref(), policy),
    }
}

/// Grouped aggregation: group key = the scalar outputs, in order.
fn aggregate(spec: &SelectSpec, scope: &Scope, rows: &[Row]) -> Result<Vec<Row>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
    let aggs: Vec<(&AggFunc, &Expr)> = spec
        .columns
        .iter()
        .filter_map(|c| match c {
            OutputColumn::Agg { func, arg, .. } => Some((func, arg)),
            _ => None,
        })
        .collect();
    let key_exprs = spec.group_key_exprs();
    let global = key_exprs.is_empty();

    if global {
        // A global aggregate has exactly one group, even over zero rows.
        groups.insert(
            Vec::new(),
            aggs.iter().map(|(f, _)| AggState::new(**f)).collect(),
        );
    }
    for r in rows {
        let key: Vec<Value> = key_exprs
            .iter()
            .map(|e| e.eval(scope, r))
            .collect::<Result<_>>()?;
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|(f, _)| AggState::new(**f)).collect());
        for (state, (_, arg)) in states.iter_mut().zip(&aggs) {
            state.update(arg.eval(scope, r)?)?;
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut key_iter = key.into_iter();
        let mut state_iter = states.into_iter();
        let mut vals = Vec::with_capacity(spec.columns.len());
        for c in &spec.columns {
            match c {
                OutputColumn::Scalar { .. } => vals.push(
                    key_iter
                        .next()
                        .ok_or_else(|| Error::Internal("group key arity".into()))?,
                ),
                OutputColumn::Agg { .. } => vals.push(
                    state_iter
                        .next()
                        .ok_or_else(|| Error::Internal("agg arity".into()))?
                        .finish(),
                ),
            }
        }
        out.push(Row(vals));
    }
    Ok(out)
}

/// Incremental aggregate state.
enum AggState {
    Count(i64),
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    CountDistinct(HashSet<Value>),
}

impl AggState {
    fn new(f: AggFunc) -> Self {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(None),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::CountDistinct => AggState::CountDistinct(HashSet::new()),
        }
    }

    fn update(&mut self, v: Value) -> Result<()> {
        if v.is_null() {
            return Ok(()); // SQL aggregates skip NULLs
        }
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(acc) => {
                *acc = Some(match acc.take() {
                    None => v,
                    Some(a) => a
                        .add(&v)
                        .ok_or_else(|| Error::Eval(format!("SUM overflow/type on {v}")))?,
                });
            }
            AggState::Min(acc) => {
                let replace = match acc {
                    None => true,
                    Some(cur) => v < *cur,
                };
                if replace {
                    *acc = Some(v);
                }
            }
            AggState::Max(acc) => {
                let replace = match acc {
                    None => true,
                    Some(cur) => v > *cur,
                };
                if replace {
                    *acc = Some(v);
                }
            }
            AggState::CountDistinct(set) => {
                set.insert(v);
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum(v) | AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{row, ColumnDef, DataType, TableSchema};

    /// Builds the §2.1 flights/flewon database.
    fn flights_db() -> Database {
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "flights",
                vec![
                    ColumnDef::new("flightid", DataType::Text),
                    ColumnDef::new("source", DataType::Text),
                    ColumnDef::new("dest", DataType::Text),
                    ColumnDef::new("capacity", DataType::Int),
                ],
            )
            .with_primary_key(&["flightid"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "flewon",
                vec![
                    ColumnDef::new("flightid", DataType::Text),
                    ColumnDef::new("flightdate", DataType::Date),
                    ColumnDef::nullable("passenger_count", DataType::Int),
                ],
            )
            .with_primary_key(&["flightid", "flightdate"]),
        )
        .unwrap();
        db.with_txn(|txn| {
            db.insert(txn, "flights", row!["AA101", "JFK", "SFO", 180])?;
            db.insert(txn, "flights", row!["UA007", "LAX", "ORD", 120])?;
            for day in 1..=3 {
                db.insert(
                    txn,
                    "flewon",
                    Row(vec![
                        Value::text("AA101"),
                        Value::Date(day),
                        Value::Int(100 + day as i64),
                    ]),
                )?;
                db.insert(
                    txn,
                    "flewon",
                    Row(vec![
                        Value::text("UA007"),
                        Value::Date(day),
                        Value::Int(50 + day as i64),
                    ]),
                )?;
            }
            Ok(())
        })
        .unwrap();
        db
    }

    fn flewoninfo_spec() -> SelectSpec {
        SelectSpec::new()
            .from_table("flights", "f")
            .from_table("flewon", "fi")
            .join_on(ColRef::new("f", "flightid"), ColRef::new("fi", "flightid"))
            .select("fid", Expr::col("f", "flightid"))
            .select("flightdate", Expr::col("fi", "flightdate"))
            .select("passenger_count", Expr::col("fi", "passenger_count"))
            .select(
                "empty_seats",
                Expr::col("f", "capacity").sub(Expr::col("fi", "passenger_count")),
            )
    }

    #[test]
    fn join_projects_derived_columns() {
        let db = flights_db();
        let mut txn = db.begin();
        let out = execute_spec(&db, &mut txn, &flewoninfo_spec(), &ExecOptions::default()).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(
            out.names,
            vec!["fid", "flightdate", "passenger_count", "empty_seats"]
        );
        assert_eq!(out.rows.len(), 6);
        let aa_day1 = out
            .rows
            .iter()
            .find(|r| r[0] == Value::text("AA101") && r[1] == Value::Date(1))
            .unwrap();
        assert_eq!(aa_day1[3], Value::Int(180 - 101));
    }

    #[test]
    fn extra_filters_restrict_scope() {
        let db = flights_db();
        let mut txn = db.begin();
        let mut opts = ExecOptions::default();
        opts.extra_filters.insert(
            "fi".into(),
            Expr::col("fi", "flightid").eq(Expr::lit("AA101")),
        );
        let out = execute_spec(&db, &mut txn, &flewoninfo_spec(), &opts).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows.len(), 3);
        assert!(out.rows.iter().all(|r| r[0] == Value::text("AA101")));
    }

    #[test]
    fn driving_rows_pin_the_scan() {
        let db = flights_db();
        let fi_rows = db
            .select_unlocked(
                "flewon",
                Some(&Expr::column("flightdate").eq(Expr::lit(Value::Date(2)))),
            )
            .unwrap();
        assert_eq!(fi_rows.len(), 2);
        let mut txn = db.begin();
        let opts = ExecOptions {
            driving: vec![("fi".into(), fi_rows)],
            ..Default::default()
        };
        let out = execute_spec(&db, &mut txn, &flewoninfo_spec(), &opts).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows.iter().all(|r| r[1] == Value::Date(2)));
    }

    #[test]
    fn spec_filter_pushdown_and_residual() {
        let db = flights_db();
        // Single-alias conjunct (pushdown) + cross-alias conjunct (residual).
        let spec = flewoninfo_spec().filter(
            Expr::col("f", "capacity")
                .gt(Expr::lit(150))
                .and(Expr::col("f", "capacity").gt(Expr::col("fi", "passenger_count"))),
        );
        let mut txn = db.begin();
        let out = execute_spec(&db, &mut txn, &spec, &ExecOptions::default()).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows.len(), 3); // only AA101 rows (capacity 180)
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let db = flights_db();
        let spec = SelectSpec::new()
            .from_table("flewon", "fi")
            .filter(Expr::col("fi", "flightid").eq(Expr::lit("NOPE")))
            .select_agg("total", AggFunc::Sum, Expr::col("fi", "passenger_count"))
            .select_agg("n", AggFunc::Count, Expr::lit(1));
        let mut txn = db.begin();
        let out = execute_spec(&db, &mut txn, &spec, &ExecOptions::default()).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0], Row(vec![Value::Null, Value::Int(0)]));
    }

    #[test]
    fn group_by_aggregation() {
        let db = flights_db();
        let spec = SelectSpec::new()
            .from_table("flewon", "fi")
            .select("flightid", Expr::col("fi", "flightid"))
            .select_agg("total", AggFunc::Sum, Expr::col("fi", "passenger_count"))
            .select_agg("days", AggFunc::Count, Expr::col("fi", "flightdate"))
            .select_agg("best", AggFunc::Max, Expr::col("fi", "passenger_count"));
        let mut txn = db.begin();
        let out = execute_spec(&db, &mut txn, &spec, &ExecOptions::default()).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows.len(), 2);
        let aa = out
            .rows
            .iter()
            .find(|r| r[0] == Value::text("AA101"))
            .unwrap();
        assert_eq!(aa[1], Value::Int(101 + 102 + 103));
        assert_eq!(aa[2], Value::Int(3));
        assert_eq!(aa[3], Value::Int(103));
    }

    #[test]
    fn count_distinct() {
        let db = flights_db();
        let spec = SelectSpec::new().from_table("flewon", "fi").select_agg(
            "n_flights",
            AggFunc::CountDistinct,
            Expr::col("fi", "flightid"),
        );
        let mut txn = db.begin();
        let out = execute_spec(&db, &mut txn, &spec, &ExecOptions::default()).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows[0][0], Value::Int(2));
    }

    #[test]
    fn aggregates_skip_nulls() {
        let db = flights_db();
        db.with_txn(|txn| {
            db.insert(
                txn,
                "flewon",
                Row(vec![Value::text("AA101"), Value::Date(9), Value::Null]),
            )
        })
        .unwrap();
        let spec = SelectSpec::new()
            .from_table("flewon", "fi")
            .filter(Expr::col("fi", "flightid").eq(Expr::lit("AA101")))
            .select_agg("total", AggFunc::Sum, Expr::col("fi", "passenger_count"))
            .select_agg("n", AggFunc::Count, Expr::col("fi", "passenger_count"))
            .select_agg("lo", AggFunc::Min, Expr::col("fi", "passenger_count"));
        let mut txn = db.begin();
        let out = execute_spec(&db, &mut txn, &spec, &ExecOptions::default()).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows[0][0], Value::Int(306));
        assert_eq!(out.rows[0][1], Value::Int(3), "NULL not counted");
        assert_eq!(out.rows[0][2], Value::Int(101));
    }

    #[test]
    fn index_nested_loop_used_for_pk_join() {
        // flights joined from flewon driving rows goes through the flights
        // pkey; verify correctness (the path is exercised by driving).
        let db = flights_db();
        let fi_rows = db.select_unlocked("flewon", None).unwrap();
        let mut txn = db.begin();
        let opts = ExecOptions {
            driving: vec![("fi".into(), fi_rows)],
            ..Default::default()
        };
        let out = execute_spec(&db, &mut txn, &flewoninfo_spec(), &opts).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(out.rows.len(), 6);
    }

    #[test]
    fn join_skips_null_keys() {
        let db = flights_db();
        db.with_txn(|txn| {
            // A flewon row with NULL passenger_count still joins; what must
            // NOT join is a NULL join key — emulate by a flights row the
            // flewon side never references.
            db.insert(txn, "flights", row!["ZZ999", "AAA", "BBB", 10])
        })
        .unwrap();
        let mut txn = db.begin();
        let out = execute_spec(&db, &mut txn, &flewoninfo_spec(), &ExecOptions::default()).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(
            out.rows.len(),
            6,
            "unmatched flights row contributes nothing"
        );
    }

    #[test]
    fn unknown_driving_alias_rejected() {
        let db = flights_db();
        let mut txn = db.begin();
        let opts = ExecOptions {
            driving: vec![("nope".into(), vec![])],
            ..Default::default()
        };
        assert!(execute_spec(&db, &mut txn, &flewoninfo_spec(), &opts).is_err());
        db.abort(&mut txn);
    }
}
