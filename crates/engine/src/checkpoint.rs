//! Checkpointing: bound the WAL by snapshotting its committed prefix.
//!
//! A checkpoint turns the log prefix below a transaction-safe cut (see
//! [`Wal::safe_cut`]) into a [`CheckpointImage`] — the rows every table
//! would hold after replaying that prefix, plus the migration granules
//! whose migration committed in it. The image is **built by replay, not by
//! scanning live heaps**, so it needs no table locks and is trivially
//! consistent: it is exactly what recovery would have produced.
//!
//! Images are incremental. Each checkpoint absorbs only the log delta
//! since the previous cut into the running image, persists the image to a
//! sidecar file (temp + rename, so a crash never leaves a half-written
//! image), and only then truncates the log ([`Wal::truncate_to`]).
//! Crashing between those steps is safe in both orders: recovery replays
//! `image + tail records at or above the image's base LSN`, and
//! [`recovery::recover_from_files`](crate::recovery::recover_from_files)
//! skips the already-absorbed file prefix using the rotation header.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use bullfrog_common::{Error, Result, Row, RowId, TableId, TxnId};
use bullfrog_txn::wal::{codec, GranuleKey};
use bullfrog_txn::LogRecord;
pub use bytes::Bytes;

use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;

use crate::db::Database;

/// Magic prefix of checkpoint sidecar files (v2: carries `base_ts`).
const CKPT_MAGIC: [u8; 7] = *b"BFCKPT2";
/// Previous sidecar format, still accepted on open. v1 images predate
/// commit timestamps, so they decode with `base_ts = 0` — correct, since
/// a v1 image can only have been written by a 2PL-only build whose log
/// never drew a timestamp.
const CKPT_MAGIC_V1: [u8; 7] = *b"BFCKPT1";

/// The effect of replaying the committed log prefix below `base_lsn`:
/// every table's rows (at their original row ids) and the committed
/// migration granules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointImage {
    /// Records below this LSN are covered by the image.
    pub base_lsn: u64,
    /// Highest commit timestamp folded into the image (0 when the
    /// absorbed prefix held no `CommitTs` records). Recovery resumes the
    /// timestamp oracle past this, so post-restart commits never reuse a
    /// timestamp the image already covers.
    pub base_ts: u64,
    /// Surviving rows per table.
    pub tables: BTreeMap<TableId, BTreeMap<RowId, Row>>,
    /// `(migration id, granule)` pairs whose migration committed.
    pub migrated: Vec<(u32, GranuleKey)>,
}

impl CheckpointImage {
    /// An empty image covering nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows in the image, across all tables.
    pub fn row_count(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Folds a log delta into the image. The delta must be the records in
    /// `[self.base_lsn, cut)` for a transaction-safe `cut`: every
    /// transaction in it is then fully contained, so commit status is
    /// decidable from the slice alone (exactly like recovery's two-pass
    /// replay, applied to maps instead of heaps).
    pub fn absorb(&mut self, delta: &[LogRecord], cut: u64) {
        let committed: std::collections::HashSet<TxnId> = delta
            .iter()
            .filter_map(|r| if r.is_commit() { Some(r.txn()) } else { None })
            .collect();
        if let Some(max_ts) = delta.iter().filter_map(|r| r.commit_ts()).max() {
            self.base_ts = self.base_ts.max(max_ts);
        }
        for rec in delta {
            if !committed.contains(&rec.txn()) {
                continue;
            }
            match rec {
                LogRecord::Insert {
                    table, rid, row, ..
                } => {
                    self.tables
                        .entry(*table)
                        .or_default()
                        .insert(*rid, row.clone());
                }
                LogRecord::Update {
                    table, rid, after, ..
                } => {
                    self.tables
                        .entry(*table)
                        .or_default()
                        .insert(*rid, after.clone());
                }
                LogRecord::Delete { table, rid, .. } => {
                    self.tables.entry(*table).or_default().remove(rid);
                }
                LogRecord::MigrationGranule {
                    migration, granule, ..
                } => {
                    self.migrated.push((*migration, granule.clone()));
                }
                // The epoch's durable home is its sidecar (and the
                // retained log tail); the image does not carry it.
                LogRecord::Epoch { .. } => {}
                LogRecord::Begin(_)
                | LogRecord::Commit(_)
                | LogRecord::CommitTs { .. }
                | LogRecord::Abort(_) => {}
            }
        }
        self.base_lsn = cut;
    }

    /// Places the image's rows into `db` (whose catalog must already hold
    /// the same tables, like [`crate::recovery::replay`]). Returns rows
    /// applied.
    pub fn apply_to(&self, db: &Database) -> Result<usize> {
        let mut applied = 0;
        for (table, rows) in &self.tables {
            let t = db.catalog().get_by_id(*table)?;
            for (rid, row) in rows {
                t.place(*rid, row.clone())?;
                applied += 1;
            }
        }
        // Keep the timestamp oracle past the image's commit horizon
        // (no-op for v1/2PL images, whose base_ts is 0).
        db.wal().oracle().resume_past(self.base_ts);
        Ok(applied)
    }

    /// Serializes the image (rows in deterministic table/rid order).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(&CKPT_MAGIC);
        buf.put_u64(self.base_lsn);
        buf.put_u64(self.base_ts);
        buf.put_u32(self.tables.len() as u32);
        for (table, rows) in &self.tables {
            buf.put_u32(table.0);
            buf.put_u32(rows.len() as u32);
            for (rid, row) in rows {
                codec::put_rid(&mut buf, *rid);
                codec::put_row(&mut buf, row);
            }
        }
        buf.put_u32(self.migrated.len() as u32);
        for (migration, granule) in &self.migrated {
            buf.put_u32(*migration);
            codec::put_granule(&mut buf, granule);
        }
        buf.freeze()
    }

    /// Parses an image produced by [`CheckpointImage::encode`], current
    /// (v2) or previous (v1, pre-timestamp) format. A v1 sidecar upgrades
    /// transparently: the next checkpoint persists it back as v2.
    pub fn decode(bytes: impl Into<Bytes>) -> Result<Self> {
        let mut bytes = bytes.into();
        if bytes.len() < CKPT_MAGIC.len() {
            return Err(Error::Wal("bad checkpoint magic".into()));
        }
        let v1 = match &bytes[..CKPT_MAGIC.len()] {
            m if *m == CKPT_MAGIC => false,
            m if *m == CKPT_MAGIC_V1 => true,
            _ => return Err(Error::Wal("bad checkpoint magic".into())),
        };
        bytes.advance(CKPT_MAGIC.len());
        let base_lsn = codec::get_u64(&mut bytes)?;
        let base_ts = if v1 { 0 } else { codec::get_u64(&mut bytes)? };
        let mut tables = BTreeMap::new();
        let ntables = codec::get_u32(&mut bytes)?;
        for _ in 0..ntables {
            let table = TableId(codec::get_u32(&mut bytes)?);
            let nrows = codec::get_u32(&mut bytes)?;
            let mut rows = BTreeMap::new();
            for _ in 0..nrows {
                let rid = codec::get_rid(&mut bytes)?;
                let row = codec::get_row(&mut bytes)?;
                rows.insert(rid, row);
            }
            tables.insert(table, rows);
        }
        let nmigrated = codec::get_u32(&mut bytes)?;
        let mut migrated = Vec::with_capacity(nmigrated as usize);
        for _ in 0..nmigrated {
            let migration = codec::get_u32(&mut bytes)?;
            migrated.push((migration, codec::get_granule(&mut bytes)?));
        }
        Ok(CheckpointImage {
            base_lsn,
            base_ts,
            tables,
            migrated,
        })
    }
}

/// Outcome of one [`Database::checkpoint`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The transaction-safe cut the checkpoint covered up to.
    pub cut_lsn: u64,
    /// Log records folded into the image this round.
    pub absorbed_records: usize,
    /// Records dropped from WAL memory by the truncation.
    pub dropped_records: u64,
    /// Records still resident in the WAL afterwards.
    pub resident_records: usize,
}

/// The sidecar path convention for a WAL at `wal_path`.
pub fn checkpoint_path_for(wal_path: &Path) -> PathBuf {
    wal_path.with_extension("ckpt")
}

/// Owns the running image and drives the checkpoint cycle. One per
/// [`Database`]; the internal mutex serializes concurrent checkpoints.
pub struct Checkpointer {
    image: Mutex<CheckpointImage>,
    /// Sidecar file (durable databases); `None` keeps the image in memory
    /// only, which still bounds WAL memory for in-memory databases.
    path: Option<PathBuf>,
}

impl Checkpointer {
    /// A checkpointer persisting to `path` (or memory-only for `None`).
    pub fn new(path: Option<PathBuf>) -> Self {
        Checkpointer {
            image: Mutex::new(CheckpointImage::new()),
            path,
        }
    }

    /// The sidecar path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// A consistent clone of the running image. Used by replication to
    /// serve snapshot bootstraps without re-reading the sidecar file.
    pub fn image_snapshot(&self) -> CheckpointImage {
        self.image.lock().clone()
    }

    /// Replaces the running image. Used when restoring a primary from
    /// files: the restored image must seed the checkpointer, or the next
    /// checkpoint would absorb from LSN 0 and miss the truncated prefix.
    pub fn seed(&self, image: CheckpointImage) {
        *self.image.lock() = image;
    }

    /// Runs one checkpoint cycle against `db`: pick the cut, absorb the
    /// delta, persist the image, truncate the log.
    pub fn run(&self, db: &Database) -> Result<CheckpointStats> {
        let mut image = self.image.lock();
        let cut = db.wal().safe_cut();
        if cut <= image.base_lsn {
            // Nothing new is coverable (e.g. a long-running transaction
            // pins the cut); report without touching the log.
            return Ok(CheckpointStats {
                cut_lsn: image.base_lsn,
                absorbed_records: 0,
                dropped_records: 0,
                resident_records: db.wal().resident_records(),
            });
        }
        let delta = db.wal().records_in(image.base_lsn, cut);
        image.absorb(&delta, cut);
        if let Some(path) = &self.path {
            write_sidecar(path, &image.encode())?;
        }
        let dropped = db.wal().truncate_to(cut)?;
        Ok(CheckpointStats {
            cut_lsn: cut,
            absorbed_records: delta.len(),
            dropped_records: dropped,
            resident_records: db.wal().resident_records(),
        })
    }
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let image = self.image.lock();
        f.debug_struct("Checkpointer")
            .field("base_lsn", &image.base_lsn)
            .field("rows", &image.row_count())
            .field("path", &self.path)
            .finish()
    }
}

/// Writes `bytes` to `path` atomically: temp file, fsync, rename.
fn write_sidecar(path: &Path, bytes: &Bytes) -> Result<()> {
    let tmp = path.with_extension("ckpt-tmp");
    (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })()
    .map_err(|e| Error::Wal(format!("write checkpoint sidecar: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{row, Value};

    fn sample_image() -> CheckpointImage {
        let mut img = CheckpointImage::new();
        img.absorb(
            &[
                LogRecord::Begin(TxnId(1)),
                LogRecord::Insert {
                    txn: TxnId(1),
                    table: TableId(0),
                    rid: RowId::new(0, 0),
                    row: row![1, "one"],
                },
                LogRecord::Insert {
                    txn: TxnId(1),
                    table: TableId(0),
                    rid: RowId::new(0, 1),
                    row: row![2, "two"],
                },
                LogRecord::MigrationGranule {
                    txn: TxnId(1),
                    migration: 3,
                    granule: GranuleKey::Group(vec![Value::Int(9)]),
                },
                LogRecord::Commit(TxnId(1)),
                // Uncommitted noise that must not surface.
                LogRecord::Begin(TxnId(2)),
                LogRecord::Insert {
                    txn: TxnId(2),
                    table: TableId(0),
                    rid: RowId::new(0, 2),
                    row: row![3, "ghost"],
                },
                LogRecord::Abort(TxnId(2)),
            ],
            8,
        );
        img
    }

    #[test]
    fn absorb_applies_committed_only() {
        let img = sample_image();
        assert_eq!(img.base_lsn, 8);
        assert_eq!(img.row_count(), 2);
        assert_eq!(
            img.migrated,
            vec![(3, GranuleKey::Group(vec![Value::Int(9)]))]
        );
    }

    #[test]
    fn absorb_folds_updates_and_deletes() {
        let mut img = sample_image();
        img.absorb(
            &[
                LogRecord::Update {
                    txn: TxnId(4),
                    table: TableId(0),
                    rid: RowId::new(0, 0),
                    after: row![1, "uno"],
                },
                LogRecord::Delete {
                    txn: TxnId(4),
                    table: TableId(0),
                    rid: RowId::new(0, 1),
                },
                LogRecord::Commit(TxnId(4)),
            ],
            11,
        );
        assert_eq!(img.base_lsn, 11);
        let rows = &img.tables[&TableId(0)];
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[&RowId::new(0, 0)], row![1, "uno"]);
    }

    #[test]
    fn image_encoding_round_trips() {
        let img = sample_image();
        let decoded = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(CheckpointImage::decode(Bytes::from_static(b"nope")).is_err());
        let good = sample_image().encode();
        assert!(CheckpointImage::decode(good.slice(..good.len() - 1)).is_err());
        // A future/unknown version must be rejected, not misparsed.
        let mut bad = good.to_vec();
        bad[..7].copy_from_slice(b"BFCKPT9");
        assert!(CheckpointImage::decode(Bytes::from(bad)).is_err());
    }

    /// Encodes `img` in the previous (v1, pre-`base_ts`) sidecar format.
    fn encode_v1(img: &CheckpointImage) -> Bytes {
        let v2 = img.encode();
        let mut buf = BytesMut::new();
        buf.put_slice(&CKPT_MAGIC_V1);
        buf.put_u64(img.base_lsn);
        // Everything after (magic, base_lsn, base_ts) is format-identical.
        buf.put_slice(&v2[CKPT_MAGIC.len() + 16..]);
        buf.freeze()
    }

    #[test]
    fn stale_v1_image_upgrades_on_open() {
        let img = sample_image();
        let decoded = CheckpointImage::decode(encode_v1(&img)).unwrap();
        assert_eq!(decoded.base_lsn, img.base_lsn);
        assert_eq!(decoded.base_ts, 0, "v1 images predate timestamps");
        assert_eq!(decoded.tables, img.tables);
        assert_eq!(decoded.migrated, img.migrated);
        // Re-encoding persists the current format.
        let reencoded = CheckpointImage::decode(decoded.encode()).unwrap();
        assert_eq!(reencoded, decoded);
    }

    #[test]
    fn absorb_tracks_commit_ts_horizon_and_apply_resumes_oracle() {
        let mut img = CheckpointImage::new();
        img.absorb(
            &[
                LogRecord::Insert {
                    txn: TxnId(1),
                    table: TableId(1), // catalog ids start at 1
                    rid: RowId::new(0, 0),
                    row: row![1, "one"],
                },
                LogRecord::CommitTs {
                    txn: TxnId(1),
                    ts: 17,
                },
            ],
            2,
        );
        assert_eq!(img.base_ts, 17);
        assert_eq!(img.row_count(), 1, "CommitTs marks the txn committed");
        let round = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(round.base_ts, 17);

        let db = Database::new();
        db.create_table(
            bullfrog_common::TableSchema::new(
                "t",
                vec![
                    bullfrog_common::ColumnDef::new("id", bullfrog_common::DataType::Int),
                    bullfrog_common::ColumnDef::new("v", bullfrog_common::DataType::Text),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        img.apply_to(&db).unwrap();
        assert!(
            db.wal().oracle().stable() >= 17,
            "oracle resumed past the image's commit horizon"
        );
    }
}
