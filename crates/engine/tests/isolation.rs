//! Engine isolation tests: no dirty reads, strict-2PL write visibility,
//! clean rollback of multi-table transactions, and lock release on abort.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{row, ColumnDef, DataType, Error, TableSchema, Value};
use bullfrog_engine::{Database, DbConfig, LockPolicy};

fn db() -> Arc<Database> {
    let db = Arc::new(Database::with_config(DbConfig {
        lock_timeout: Duration::from_millis(40),
        ..Default::default()
    }));
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    db
}

#[test]
fn no_dirty_reads_through_shared_locks() {
    let db = db();
    let rid = db.with_txn(|txn| db.insert(txn, "t", row![1, 10])).unwrap();

    // Writer updates but does not commit.
    let mut writer = db.begin();
    db.update(&mut writer, "t", rid, row![1, 99]).unwrap();

    // Neither engine mode lets the reader observe v=99: under 2PL the
    // S-lock request blocks and times out; under snapshot isolation the
    // read is lock-free and returns the last committed version.
    let mut reader = db.begin();
    if db.config().mode.is_snapshot() {
        assert_eq!(
            db.get(&mut reader, "t", rid, LockPolicy::Shared).unwrap(),
            Some(row![1, 10])
        );
    } else {
        let err = db
            .get(&mut reader, "t", rid, LockPolicy::Shared)
            .unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
    }
    db.abort(&mut reader);

    // Writer aborts; the reader then sees the original value.
    db.abort(&mut writer);
    let mut reader = db.begin();
    assert_eq!(
        db.get(&mut reader, "t", rid, LockPolicy::Shared).unwrap(),
        Some(row![1, 10])
    );
    db.commit(&mut reader).unwrap();
}

#[test]
fn select_recheck_skips_rows_that_vanish() {
    let db = db();
    db.with_txn(|txn| {
        for i in 0..10 {
            db.insert(txn, "t", row![i, i])?;
        }
        Ok(())
    })
    .unwrap();
    // Delete row 5 concurrently-ish (before the reader locks it).
    db.with_txn(|txn| {
        let (rid, _) = db
            .get_by_pk(txn, "t", &[Value::Int(5)], LockPolicy::Exclusive)?
            .unwrap();
        db.delete(txn, "t", rid).map(|_| ())
    })
    .unwrap();
    let mut txn = db.begin();
    let rows = db.select(&mut txn, "t", None, LockPolicy::Shared).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 9);
}

#[test]
fn abort_releases_all_locks_immediately() {
    let db = db();
    let rid = db.with_txn(|txn| db.insert(txn, "t", row![1, 10])).unwrap();
    let mut t1 = db.begin();
    db.update(&mut t1, "t", rid, row![1, 11]).unwrap();
    db.abort(&mut t1);
    // No residual locks: an immediate exclusive access succeeds.
    db.with_txn(|txn| db.update(txn, "t", rid, row![1, 12]))
        .unwrap();
    assert_eq!(db.lock_manager().locked_key_count(), 0);
}

#[test]
fn multi_table_rollback_is_atomic() {
    let db = db();
    db.create_table(
        TableSchema::new(
            "u",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    let rid = db.with_txn(|txn| db.insert(txn, "t", row![1, 10])).unwrap();

    let mut txn = db.begin();
    db.insert(&mut txn, "u", row![100, 0]).unwrap();
    db.update(&mut txn, "t", rid, row![1, 20]).unwrap();
    db.insert(&mut txn, "u", row![101, 0]).unwrap();
    db.delete(&mut txn, "t", rid).unwrap();
    db.abort(&mut txn);

    assert_eq!(db.table("u").unwrap().live_count(), 0);
    let mut txn = db.begin();
    assert_eq!(
        db.get(&mut txn, "t", rid, LockPolicy::Shared).unwrap(),
        Some(row![1, 10])
    );
    db.commit(&mut txn).unwrap();
}

#[test]
fn undo_applies_in_reverse_order() {
    // Update the same row repeatedly inside one txn; abort must restore
    // the ORIGINAL image, not an intermediate one.
    let db = db();
    let rid = db.with_txn(|txn| db.insert(txn, "t", row![1, 0])).unwrap();
    let mut txn = db.begin();
    for v in 1..=5 {
        db.update(&mut txn, "t", rid, row![1, v]).unwrap();
    }
    db.abort(&mut txn);
    let mut txn = db.begin();
    assert_eq!(
        db.get(&mut txn, "t", rid, LockPolicy::Shared).unwrap(),
        Some(row![1, 0])
    );
    db.commit(&mut txn).unwrap();
}

#[test]
fn committed_writes_are_immediately_visible_to_new_readers() {
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..100 {
                let id = t * 1000 + i;
                db.with_txn(|txn| db.insert(txn, "t", row![id, id]))
                    .unwrap();
                // Immediately readable by a fresh transaction.
                let mut txn = db.begin();
                let got = db
                    .get_by_pk(&mut txn, "t", &[Value::Int(id)], LockPolicy::Shared)
                    .unwrap();
                db.commit(&mut txn).unwrap();
                assert!(got.is_some());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.table("t").unwrap().live_count(), 400);
}
