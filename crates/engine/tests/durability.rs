//! Durability-path integration tests for the sharded WAL: read-only
//! commits, async commit tickets, crash-recovery equivalence between
//! shard counts, and the checkpoint-vs-commit race.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{row, ColumnDef, DataType, TableSchema, Value};
use bullfrog_engine::checkpoint::checkpoint_path_for;
use bullfrog_engine::{recovery, Database, DbConfig, LockPolicy};
use bullfrog_txn::wal::{shard_file_path, shard_of};
use bullfrog_txn::WalOptions;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bullfrog-durability-{tag}-{}.wal",
        std::process::id()
    ))
}

fn remove_wal_shards(wal_path: &Path) {
    let _ = std::fs::remove_file(wal_path);
    for shard in 1.. {
        if std::fs::remove_file(shard_file_path(wal_path, shard)).is_err() {
            break;
        }
    }
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ],
    )
    .with_primary_key(&["id"])
}

fn file_db(tag: &str, shards: usize) -> (Database, PathBuf, PathBuf) {
    let wal_path = temp_path(tag);
    remove_wal_shards(&wal_path);
    let ckpt_path = checkpoint_path_for(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
    let db = Database::with_wal_file_opts(
        DbConfig::default(),
        &wal_path,
        WalOptions {
            group_window: Duration::ZERO,
            shards,
        },
    )
    .expect("file-backed db");
    db.create_table(schema()).unwrap();
    (db, wal_path, ckpt_path)
}

/// Replays `wal_path` + sidecar into a fresh catalog-matched database and
/// returns the sorted live rows of `t`.
fn recovered_rows(wal_path: &Path, ckpt_path: &Path) -> Vec<(i64, i64)> {
    let db = Database::new();
    db.create_table(schema()).unwrap();
    recovery::recover_from_files(&db, wal_path, ckpt_path).expect("recovery");
    let mut rows: Vec<(i64, i64)> = db
        .select_unlocked("t", None)
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r.0[0].as_i64().unwrap(), r.0[1].as_i64().unwrap()))
        .collect();
    rows.sort_unstable();
    rows
}

/// Regression for the read-only commit bug: a transaction that never
/// wrote used to append a lone `Commit` record and park on the group
/// commit barrier — an fsync (or a full group window of latency) for a
/// transaction with nothing to make durable.
#[test]
fn read_only_commit_issues_zero_flushes() {
    let (db, wal_path, ckpt_path) = file_db("readonly", 2);
    db.with_txn(|txn| db.insert(txn, "t", row![1, 10]).map(|_| ()))
        .unwrap();
    db.wal().sync();
    let len_before = db.wal().len();
    let flushes_before = db.wal().stats().flushes;

    // Read-only commit: select under shared locks, then commit.
    let mut txn = db.begin();
    let got = db
        .get_by_pk(&mut txn, "t", &[Value::Int(1)], LockPolicy::Shared)
        .unwrap();
    assert!(got.is_some());
    db.commit(&mut txn).unwrap();

    // Read-only abort writes nothing either.
    let mut txn = db.begin();
    let _ = db
        .get_by_pk(&mut txn, "t", &[Value::Int(1)], LockPolicy::Shared)
        .unwrap();
    db.abort(&mut txn);

    db.wal().sync();
    assert_eq!(db.wal().len(), len_before, "read-only txns must not log");
    assert_eq!(
        db.wal().stats().flushes,
        flushes_before,
        "read-only commit must not force a flush"
    );

    // And the nowait path hands back an already-durable ticket.
    let mut txn = db.begin();
    let _ = db
        .get_by_pk(&mut txn, "t", &[Value::Int(1)], LockPolicy::Shared)
        .unwrap();
    let ticket = db.commit_nowait(&mut txn).unwrap();
    assert!(ticket.is_durable());

    drop(db);
    remove_wal_shards(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
}

/// The same single-threaded workload — inserts, updates, deletes, an
/// abort, and a mid-way checkpoint — must recover to the same rows
/// whether durability ran on one flusher or four.
#[test]
fn sharded_log_recovers_identically_to_single_flusher() {
    let run = |shards: usize| -> Vec<(i64, i64)> {
        let (db, wal_path, ckpt_path) = file_db(&format!("equiv{shards}"), shards);
        for i in 0..40i64 {
            db.with_txn(|txn| db.insert(txn, "t", row![i, i * 10]).map(|_| ()))
                .unwrap();
        }
        // Fold the prefix into the checkpoint image; recovery must stitch
        // image + sharded tail back together.
        db.checkpoint().unwrap();
        for i in 0..40i64 {
            if i % 3 == 0 {
                db.with_txn(|txn| {
                    let (rid, _) = db
                        .get_by_pk(txn, "t", &[Value::Int(i)], LockPolicy::Exclusive)?
                        .unwrap();
                    db.update(txn, "t", rid, row![i, i * 10 + 1]).map(|_| ())
                })
                .unwrap();
            } else if i % 3 == 1 {
                db.with_txn(|txn| {
                    let (rid, _) = db
                        .get_by_pk(txn, "t", &[Value::Int(i)], LockPolicy::Exclusive)?
                        .unwrap();
                    db.delete(txn, "t", rid).map(|_| ())
                })
                .unwrap();
            }
        }
        // An aborted write leaves no trace.
        let mut txn = db.begin();
        db.insert(&mut txn, "t", row![999, 999]).unwrap();
        db.abort(&mut txn);
        db.wal().sync();
        drop(db);

        let rows = recovered_rows(&wal_path, &ckpt_path);
        remove_wal_shards(&wal_path);
        let _ = std::fs::remove_file(&ckpt_path);
        rows
    };

    let single = run(1);
    let sharded = run(4);
    assert!(!single.is_empty());
    assert_eq!(
        single, sharded,
        "shard count must not change recovered state"
    );
}

/// Every `commit_nowait` whose ticket was awaited must survive recovery:
/// an acknowledged-durable commit is a promise.
#[test]
fn acked_nowait_commits_survive_recovery() {
    let (db, wal_path, ckpt_path) = file_db("nowait", 4);
    let db = Arc::new(db);
    let handles: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..25i64 {
                    let id = (w as i64) * 100 + i;
                    let mut txn = db.begin();
                    db.insert(&mut txn, "t", row![id, id]).unwrap();
                    tickets.push(db.commit_nowait(&mut txn).unwrap());
                }
                // Await durability only after enqueueing the whole batch,
                // so flushes overlap with later commits.
                for t in &tickets {
                    t.wait();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // No sync: every awaited ticket already guarantees its commit is on
    // disk, so recovery sees all 100 rows even without a drain.
    let rows = recovered_rows(&wal_path, &ckpt_path);
    assert_eq!(rows.len(), 100, "an acked-durable commit was lost");

    drop(db);
    remove_wal_shards(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
}

/// Regression for the cross-shard dependency hole: a crash can lose one
/// shard's unflushed batch while a later-LSN, dependent commit on
/// another shard is already on disk. Replay used to apply that commit's
/// `Update` against the vanished row, fail with `RowNotFound`, and
/// leave the whole database unrecoverable. Recovery now keeps only the
/// gap-free LSN prefix — dropping the dependent (never-acknowledged)
/// commit together with the lost batch it read from.
#[test]
fn lost_shard_batch_does_not_poison_recovery() {
    let (db, wal_path, ckpt_path) = file_db("lostshard", 2);
    // Transaction ids are assigned sequentially; spin until we hold one
    // on the shard we want (discarded ones never wrote, so they leave
    // no trace in the log).
    let begin_on_shard = |want: usize| loop {
        let txn = db.begin();
        if shard_of(txn.id(), 2) == want {
            return txn;
        }
    };

    // Survivor: a shard-0 insert.
    let mut t0 = begin_on_shard(0);
    db.insert(&mut t0, "t", row![1, 10]).unwrap();
    db.commit(&mut t0).unwrap();
    // Casualty: a shard-1 insert (its file will vanish with the crash).
    let mut t1 = begin_on_shard(1);
    db.insert(&mut t1, "t", row![2, 20]).unwrap();
    db.commit(&mut t1).unwrap();
    // Dependent: a shard-0 update of the shard-1 row.
    let mut t2 = begin_on_shard(0);
    let (rid, _) = db
        .get_by_pk(&mut t2, "t", &[Value::Int(2)], LockPolicy::Exclusive)
        .unwrap()
        .unwrap();
    db.update(&mut t2, "t", rid, row![2, 21]).unwrap();
    db.commit(&mut t2).unwrap();
    db.wal().sync();
    drop(db);

    // Simulate the crash artifact: shard 1's flush never reached disk,
    // so the merged stream has a gap where the insert of row 2 was.
    std::fs::remove_file(shard_file_path(&wal_path, 1)).unwrap();
    let rows = recovered_rows(&wal_path, &ckpt_path);
    assert_eq!(
        rows,
        vec![(1, 10)],
        "recovery must replay exactly the gap-free prefix"
    );

    remove_wal_shards(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
}

/// Checkpoints racing live committers: the rotation must keep every
/// staged-but-unflushed commit (the `truncate_to` bugfix), so recovery
/// sees exactly the committed rows no matter where the cut landed.
#[test]
fn checkpoint_racing_commits_loses_nothing() {
    let (db, wal_path, ckpt_path) = file_db("ckptrace", 4);
    let db = Arc::new(db);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let ckpt = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut cuts = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                db.checkpoint().unwrap();
                cuts += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            cuts
        })
    };

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..50i64 {
                    let id = (w as i64) * 100 + i;
                    db.with_txn(|txn| db.insert(txn, "t", row![id, id]).map(|_| ()))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let cuts = ckpt.join().unwrap();
    assert!(cuts > 0, "checkpointer never ran");
    db.wal().sync();
    drop(db);

    let rows = recovered_rows(&wal_path, &ckpt_path);
    assert_eq!(
        rows.len(),
        200,
        "a checkpoint cut dropped a committed write"
    );

    remove_wal_shards(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
}

/// A registered retain horizon (a replication subscription's resume
/// point) must pin checkpoint truncation: the tail at or above the
/// horizon stays readable until the consumer releases it.
#[test]
fn checkpoint_truncation_respects_retain_horizon() {
    let (db, wal_path, ckpt_path) = file_db("retain", 2);
    for i in 0..30i64 {
        db.with_txn(|txn| db.insert(txn, "t", row![i, i]).map(|_| ()))
            .unwrap();
    }
    db.wal().sync();
    let mid = db.wal().frontier() / 2;
    let (retain_id, granted) = db.wal().register_retain(mid);
    assert_eq!(
        granted, mid,
        "nothing truncated yet: horizon granted as asked"
    );

    for i in 30..60i64 {
        db.with_txn(|txn| db.insert(txn, "t", row![i, i]).map(|_| ()))
            .unwrap();
    }
    db.wal().sync();
    db.checkpoint().unwrap();
    assert_eq!(
        db.wal().base_lsn(),
        mid,
        "truncation must clamp to the registered retain horizon"
    );
    let (tail, _) = db.wal().durable_records_from(mid, usize::MAX);
    assert!(
        !tail.is_empty() && tail[0].0 == mid,
        "the retained tail must still be streamable from the horizon"
    );

    // Release, write a little more (so the next safe cut moves), and the
    // next checkpoint reclaims the formerly pinned tail.
    db.wal().release_retain(retain_id);
    for i in 60..70i64 {
        db.with_txn(|txn| db.insert(txn, "t", row![i, i]).map(|_| ()))
            .unwrap();
    }
    db.wal().sync();
    db.checkpoint().unwrap();
    assert!(
        db.wal().base_lsn() > mid,
        "released horizon must stop pinning truncation"
    );

    drop(db);
    remove_wal_shards(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
}
