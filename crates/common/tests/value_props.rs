//! Property tests for the `Value` total order and hash consistency.
//!
//! These invariants matter downstream: B-tree index keys require a total
//! order, and the hashmap migration tracker requires `a == b ⇒ hash(a) ==
//! hash(b)` across the numeric types.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use bullfrog_common::Value;
use proptest::prelude::*;

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<i64>().prop_map(Value::Decimal),
        "[a-zA-Z0-9]{0,12}".prop_map(Value::text),
        any::<i32>().prop_map(Value::Date),
        any::<i64>().prop_map(Value::Timestamp),
        // Small integers in several carriers maximize cross-type collisions.
        (-5i64..5).prop_map(Value::Int),
        (-5i64..5).prop_map(Value::Decimal),
        (-5i64..5).prop_map(|i| Value::Float(i as f64)),
    ]
}

proptest! {
    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "{:?} == {:?} but hashes differ", a, b);
        }
    }

    #[test]
    fn ord_is_antisymmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    #[test]
    fn ord_is_reflexive_equal(a in arb_value()) {
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn ord_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        // A broken transitivity tends to make sort produce out-of-order
        // output; verify pairwise order of the sorted result.
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        prop_assert!(v[0] <= v[2]);
    }

    #[test]
    fn sql_cmp_agrees_with_ord_when_not_null(a in arb_value(), b in arb_value()) {
        match a.sql_cmp(&b) {
            None => prop_assert!(a.is_null() || b.is_null()),
            Some(ord) => prop_assert_eq!(ord, a.cmp(&b)),
        }
    }

    #[test]
    fn add_commutes(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn row_macro_roundtrip(i in any::<i64>(), s in "[a-z]{0,8}") {
        let r = bullfrog_common::row![i, s.clone()];
        prop_assert_eq!(r.get(0), &Value::Int(i));
        prop_assert_eq!(r.get(1), &Value::text(s));
    }
}
