//! Table schemas and declarative constraints.
//!
//! Schemas are deliberately self-contained (no dependency on the query
//! crate's expression AST): CHECK constraints use the small [`CheckExpr`]
//! language, which covers everything the paper's workloads declare (e.g.
//! `CHECK (PASSENGER_COUNT > 0)`), while staying evaluable without a query
//! engine.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::types::DataType;
use crate::value::Value;

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive; workloads use lower_snake).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// A NOT NULL column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// A UNIQUE constraint over one or more columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniqueConstraint {
    /// Constraint name, used in error messages.
    pub name: String,
    /// Constrained column names.
    pub columns: Vec<String>,
}

/// A FOREIGN KEY constraint; referenced columns must be unique (the engine
/// validates this at DDL time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Constraint name.
    pub name: String,
    /// Referencing columns in this table.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns (a PK or UNIQUE key of `ref_table`).
    pub ref_columns: Vec<String>,
}

/// Comparison operators usable in CHECK constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CheckOp {
    fn holds(self, ord: Ordering) -> bool {
        match self {
            CheckOp::Eq => ord == Ordering::Equal,
            CheckOp::Ne => ord != Ordering::Equal,
            CheckOp::Lt => ord == Ordering::Less,
            CheckOp::Le => ord != Ordering::Greater,
            CheckOp::Gt => ord == Ordering::Greater,
            CheckOp::Ge => ord != Ordering::Less,
        }
    }
}

/// The restricted boolean expression language for CHECK constraints.
///
/// Follows SQL semantics: a CHECK passes unless it evaluates to **false**
/// (unknown/NULL passes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckExpr {
    /// Compare a column (by name) against a literal.
    Cmp {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CheckOp,
        /// Literal to compare against.
        literal: Value,
    },
    /// Column IS NOT NULL.
    IsNotNull(String),
    /// Conjunction.
    And(Box<CheckExpr>, Box<CheckExpr>),
    /// Disjunction.
    Or(Box<CheckExpr>, Box<CheckExpr>),
    /// Negation (SQL three-valued: NOT unknown = unknown).
    Not(Box<CheckExpr>),
}

impl CheckExpr {
    /// `column > literal` shorthand.
    pub fn gt(column: impl Into<String>, literal: impl Into<Value>) -> Self {
        CheckExpr::Cmp {
            column: column.into(),
            op: CheckOp::Gt,
            literal: literal.into(),
        }
    }

    /// `column >= literal` shorthand.
    pub fn ge(column: impl Into<String>, literal: impl Into<Value>) -> Self {
        CheckExpr::Cmp {
            column: column.into(),
            op: CheckOp::Ge,
            literal: literal.into(),
        }
    }

    /// Three-valued evaluation against a row laid out by `schema`.
    /// `Ok(None)` is unknown.
    pub fn eval(&self, schema: &TableSchema, row: &Row) -> Result<Option<bool>> {
        match self {
            CheckExpr::Cmp {
                column,
                op,
                literal,
            } => {
                let idx = schema.col_index(column)?;
                Ok(row[idx].sql_cmp(literal).map(|o| op.holds(o)))
            }
            CheckExpr::IsNotNull(column) => {
                let idx = schema.col_index(column)?;
                Ok(Some(!row[idx].is_null()))
            }
            CheckExpr::And(a, b) => Ok(match (a.eval(schema, row)?, b.eval(schema, row)?) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }),
            CheckExpr::Or(a, b) => Ok(match (a.eval(schema, row)?, b.eval(schema, row)?) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }),
            CheckExpr::Not(e) => Ok(e.eval(schema, row)?.map(|b| !b)),
        }
    }
}

/// A named CHECK constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConstraint {
    /// Constraint name.
    pub name: String,
    /// The predicate that must not evaluate to false.
    pub expr: CheckExpr,
}

/// A table schema: columns plus declarative constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column declarations.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column names (empty = no PK).
    pub primary_key: Vec<String>,
    /// Additional UNIQUE constraints.
    pub uniques: Vec<UniqueConstraint>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
    /// CHECK constraints.
    pub checks: Vec<CheckConstraint>,
}

impl TableSchema {
    /// A schema with just columns; add constraints with the builder methods.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            uniques: Vec::new(),
            foreign_keys: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Sets the primary key (builder style).
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Adds a UNIQUE constraint (builder style).
    pub fn with_unique(mut self, name: &str, cols: &[&str]) -> Self {
        self.uniques.push(UniqueConstraint {
            name: name.into(),
            columns: cols.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Adds a FOREIGN KEY constraint (builder style).
    pub fn with_foreign_key(
        mut self,
        name: &str,
        cols: &[&str],
        ref_table: &str,
        ref_cols: &[&str],
    ) -> Self {
        self.foreign_keys.push(ForeignKey {
            name: name.into(),
            columns: cols.iter().map(|s| s.to_string()).collect(),
            ref_table: ref_table.into(),
            ref_columns: ref_cols.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Adds a CHECK constraint (builder style).
    pub fn with_check(mut self, name: &str, expr: CheckExpr) -> Self {
        self.checks.push(CheckConstraint {
            name: name.into(),
            expr,
        });
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolves a column name to its position.
    pub fn col_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::ColumnNotFound(format!("{}.{}", self.name, name)))
    }

    /// Resolves several column names at once.
    pub fn col_indices(&self, names: &[String]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.col_index(n)).collect()
    }

    /// Primary-key column positions.
    pub fn pk_indices(&self) -> Result<Vec<usize>> {
        self.col_indices(&self.primary_key)
    }

    /// Validates shape, types, nullability, and CHECK constraints of a row.
    /// Uniqueness and foreign keys need table/catalog state and are enforced
    /// by the engine.
    pub fn validate_row(&self, row: &Row) -> Result<()> {
        if row.arity() != self.arity() {
            return Err(Error::SchemaMismatch(format!(
                "{}: expected {} columns, got {}",
                self.name,
                self.arity(),
                row.arity()
            )));
        }
        for (col, val) in self.columns.iter().zip(row.iter()) {
            match val.data_type() {
                None => {
                    if !col.nullable {
                        return Err(Error::NullViolation {
                            table: self.name.clone(),
                            column: col.name.clone(),
                        });
                    }
                }
                Some(dt) => {
                    if !col.dtype.accepts(dt) {
                        return Err(Error::SchemaMismatch(format!(
                            "{}.{}: expected {}, got {}",
                            self.name, col.name, col.dtype, dt
                        )));
                    }
                }
            }
        }
        for check in &self.checks {
            if check.expr.eval(self, row)? == Some(false) {
                return Err(Error::CheckViolation {
                    table: self.name.clone(),
                    constraint: check.name.clone(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TABLE {} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        if !self.primary_key.is_empty() {
            write!(f, ", PRIMARY KEY ({})", self.primary_key.join(", "))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn flewon() -> TableSchema {
        TableSchema::new(
            "flewon",
            vec![
                ColumnDef::new("flightid", DataType::Text),
                ColumnDef::new("flightdate", DataType::Date),
                ColumnDef::nullable("passenger_count", DataType::Int),
            ],
        )
        .with_primary_key(&["flightid", "flightdate"])
        .with_check("positive_passengers", CheckExpr::gt("passenger_count", 0))
    }

    #[test]
    fn col_resolution() {
        let s = flewon();
        assert_eq!(s.col_index("flightdate").unwrap(), 1);
        assert!(matches!(s.col_index("nope"), Err(Error::ColumnNotFound(_))));
        assert_eq!(s.pk_indices().unwrap(), vec![0, 1]);
    }

    #[test]
    fn validate_accepts_good_row() {
        let s = flewon();
        let r = Row::new(vec![Value::text("AA101"), Value::Date(9), Value::Int(120)]);
        s.validate_row(&r).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let s = flewon();
        assert!(matches!(
            s.validate_row(&row![1]),
            Err(Error::SchemaMismatch(_))
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = flewon();
        let r = Row::new(vec![Value::Int(5), Value::Date(9), Value::Int(1)]);
        assert!(matches!(s.validate_row(&r), Err(Error::SchemaMismatch(_))));
    }

    #[test]
    fn validate_rejects_null_in_not_null() {
        let s = flewon();
        let r = Row::new(vec![Value::Null, Value::Date(9), Value::Int(1)]);
        assert!(matches!(
            s.validate_row(&r),
            Err(Error::NullViolation { .. })
        ));
    }

    #[test]
    fn check_constraint_enforced() {
        let s = flewon();
        let r = Row::new(vec![Value::text("AA101"), Value::Date(9), Value::Int(0)]);
        assert!(matches!(
            s.validate_row(&r),
            Err(Error::CheckViolation { .. })
        ));
        // NULL passenger_count: check is unknown, which passes (SQL).
        let r = Row::new(vec![Value::text("AA101"), Value::Date(9), Value::Null]);
        s.validate_row(&r).unwrap();
    }

    #[test]
    fn check_expr_three_valued_logic() {
        let s = flewon();
        let null_row = Row::new(vec![Value::text("a"), Value::Date(1), Value::Null]);
        let gt = CheckExpr::gt("passenger_count", 0);
        assert_eq!(gt.eval(&s, &null_row).unwrap(), None);
        let not = CheckExpr::Not(Box::new(gt.clone()));
        assert_eq!(not.eval(&s, &null_row).unwrap(), None);
        let or = CheckExpr::Or(
            Box::new(gt.clone()),
            Box::new(CheckExpr::IsNotNull("flightid".into())),
        );
        assert_eq!(or.eval(&s, &null_row).unwrap(), Some(true));
        let and = CheckExpr::And(Box::new(gt), Box::new(CheckExpr::ge("passenger_count", 0)));
        assert_eq!(and.eval(&s, &null_row).unwrap(), None);
    }

    #[test]
    fn int_accepted_in_decimal_column() {
        let s = TableSchema::new("t", vec![ColumnDef::new("amount", DataType::Decimal)]);
        s.validate_row(&row![5]).unwrap();
    }

    #[test]
    fn display_contains_pk() {
        let s = flewon();
        let d = s.to_string();
        assert!(d.contains("PRIMARY KEY (flightid, flightdate)"), "{d}");
    }
}
