//! The workspace-wide error type.

use std::fmt;

use crate::ids::{TableId, TxnId};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the storage, transaction, query, and migration layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Named table does not exist (or was retired by a big-flip migration).
    TableNotFound(String),
    /// Named column does not exist in the referenced table.
    ColumnNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Row id does not address a live row.
    RowNotFound,
    /// The tuple shape or a value type does not match the schema.
    SchemaMismatch(String),
    /// A uniqueness constraint (primary key or UNIQUE) would be violated.
    UniqueViolation {
        /// Table the constraint is declared on.
        table: String,
        /// Constraint description (e.g. index name or column list).
        constraint: String,
    },
    /// A foreign-key constraint would be violated.
    ForeignKeyViolation {
        /// Referencing table.
        table: String,
        /// Referenced table.
        references: String,
    },
    /// A CHECK constraint evaluated to false.
    CheckViolation {
        /// Table the constraint is declared on.
        table: String,
        /// Constraint name.
        constraint: String,
    },
    /// NOT NULL column received a NULL.
    NullViolation {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Lock could not be acquired before the deadline; the transaction
    /// should abort and may retry (deadlock-avoidance policy).
    LockTimeout {
        /// The transaction that timed out.
        txn: TxnId,
        /// The table whose lock was contended.
        table: TableId,
    },
    /// Snapshot-isolation write-write conflict: the row was committed by
    /// another transaction after this transaction's snapshot
    /// (first-updater-wins). Abort and retry with a fresh snapshot.
    WriteConflict {
        /// The transaction that lost the conflict.
        txn: TxnId,
        /// The table holding the contended row.
        table: TableId,
    },
    /// The transaction was aborted (explicitly, by conflict, or by
    /// failpoint injection) and can no longer be used.
    TxnAborted(TxnId),
    /// Operation attempted on a transaction that already committed/aborted.
    TxnNotActive(TxnId),
    /// A request referenced the *old* schema after a non-backwards-compatible
    /// ("big flip") migration made it inactive (paper §2.1).
    SchemaRetired(String),
    /// Expression evaluation failed (type error, overflow, ...).
    Eval(String),
    /// Migration definition is invalid (bad category, unknown column, ...).
    InvalidMigration(String),
    /// WAL corruption or replay failure.
    Wal(String),
    /// This node is fenced: it observed a higher fencing epoch (or
    /// verifiably lost its leadership lease) and must not acknowledge
    /// writes. The commit may be durable locally but was **not** acked;
    /// the client must re-route to `leader` (when known) and retry.
    Fenced {
        /// The current primary's address, when the fenced node knows it.
        leader: Option<String>,
    },
    /// Generic invariant breakage; carries a description.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TableNotFound(t) => write!(f, "table not found: {t}"),
            Error::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            Error::TableExists(t) => write!(f, "table already exists: {t}"),
            Error::RowNotFound => write!(f, "row not found"),
            Error::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            Error::UniqueViolation { table, constraint } => {
                write!(f, "unique violation on {table} ({constraint})")
            }
            Error::ForeignKeyViolation { table, references } => {
                write!(f, "foreign key violation: {table} -> {references}")
            }
            Error::CheckViolation { table, constraint } => {
                write!(f, "check violation on {table} ({constraint})")
            }
            Error::NullViolation { table, column } => {
                write!(f, "null violation on {table}.{column}")
            }
            Error::LockTimeout { txn, table } => {
                write!(f, "{txn} timed out waiting for lock on {table}")
            }
            Error::WriteConflict { txn, table } => {
                write!(f, "{txn} lost a write-write conflict on {table}")
            }
            Error::TxnAborted(t) => write!(f, "{t} aborted"),
            Error::TxnNotActive(t) => write!(f, "{t} is not active"),
            Error::SchemaRetired(t) => {
                write!(f, "table {t} belongs to a retired schema version")
            }
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::InvalidMigration(m) => write!(f, "invalid migration: {m}"),
            Error::Wal(m) => write!(f, "wal error: {m}"),
            Error::Fenced { leader } => write!(
                f,
                "fenced (stale epoch): writes and DDL must go to the primary at {}",
                leader.as_deref().unwrap_or("unknown")
            ),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// True for errors that indicate a transient conflict where the caller
    /// should abort the transaction and retry (the TPC-C driver and the
    /// migration loop both use this).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::LockTimeout { .. } | Error::TxnAborted(_) | Error::WriteConflict { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::UniqueViolation {
            table: "customer".into(),
            constraint: "pk".into(),
        };
        assert_eq!(e.to_string(), "unique violation on customer (pk)");
        let e = Error::LockTimeout {
            txn: TxnId(3),
            table: TableId(1),
        };
        assert!(e.to_string().contains("txn3"));
    }

    #[test]
    fn retryable_classification() {
        assert!(Error::TxnAborted(TxnId(1)).is_retryable());
        assert!(Error::LockTimeout {
            txn: TxnId(1),
            table: TableId(0)
        }
        .is_retryable());
        assert!(Error::WriteConflict {
            txn: TxnId(1),
            table: TableId(0)
        }
        .is_retryable());
        assert!(!Error::RowNotFound.is_retryable());
        assert!(!Error::TableNotFound("x".into()).is_retryable());
    }
}
