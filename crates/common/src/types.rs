//! Logical column data types.

use std::fmt;

/// The logical type of a column.
///
/// BullFrog stores tuples as dynamically typed [`crate::Value`]s; `DataType`
/// is the schema-level declaration that inserts and updates are checked
/// against. The set mirrors what the paper's TPC-C workload and flights
/// example need (`CHAR`/`VARCHAR` collapse to `Text`, `NUMERIC` to a
/// fixed-point `Decimal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer (covers TPC-C `INT`, `SMALLINT`, ids).
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Fixed-point decimal stored as a scaled integer; the schema does not
    /// track scale — callers pick a convention (TPC-C uses cents).
    Decimal,
    /// UTF-8 string (covers `CHAR(n)`/`VARCHAR(n)`; length is not enforced).
    Text,
    /// Days since the Unix epoch.
    Date,
    /// Microseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// Returns true when a value of type `other` may be stored in a column
    /// of type `self` without loss (identity, plus `Int` → `Decimal`/`Float`
    /// widening which the engine applies implicitly).
    pub fn accepts(self, other: DataType) -> bool {
        self == other
            || matches!(
                (self, other),
                (DataType::Decimal, DataType::Int)
                    | (DataType::Float, DataType::Int)
                    | (DataType::Timestamp, DataType::Int)
                    | (DataType::Date, DataType::Int)
            )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Decimal => "DECIMAL",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_accepts() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Decimal,
            DataType::Text,
            DataType::Date,
            DataType::Timestamp,
        ] {
            assert!(t.accepts(t), "{t} should accept itself");
        }
    }

    #[test]
    fn int_widens_to_numeric_types() {
        assert!(DataType::Decimal.accepts(DataType::Int));
        assert!(DataType::Float.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Float));
        assert!(!DataType::Int.accepts(DataType::Decimal));
    }

    #[test]
    fn text_is_not_numeric() {
        assert!(!DataType::Text.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Text));
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Timestamp.to_string(), "TIMESTAMP");
    }
}
