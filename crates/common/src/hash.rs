//! Deterministic FNV-1a hashing.
//!
//! `std`'s `DefaultHasher` is seeded per process, so partition and shard
//! choices differ across runs. The trackers and the lock table instead
//! partition by this in-repo FNV-1a implementation: cheap (one multiply
//! per byte, no setup), stable across runs and platforms, and therefore
//! reproducible in benchmarks and debuggable from a log.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`].
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl FnvHasher {
    /// A hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// Hashes raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::new();
    h.write(bytes);
    h.finish()
}

/// Hashes any `Hash` value deterministically.
pub fn fnv_hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FnvHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_one_is_deterministic_and_spreads() {
        assert_eq!(fnv_hash_one(&(1u64, 2u64)), fnv_hash_one(&(1u64, 2u64)));
        // Adjacent keys land in different low bits often enough to shard.
        let buckets: std::collections::HashSet<u64> =
            (0..64u64).map(|i| fnv_hash_one(&i) & 63).collect();
        assert!(buckets.len() > 16, "degenerate spread: {}", buckets.len());
    }
}
