//! Dynamically typed cell values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::types::DataType;

/// A single cell value in a tuple.
///
/// `Value` has a **total order** (needed for B-tree index keys and sort-based
/// group identifiers) and a **consistent hash** (needed for hash joins and
/// the hashmap migration tracker). `Null` sorts before everything else, and
/// floats are ordered via [`f64::total_cmp`] so NaN does not poison indexes.
///
/// Cross-type comparisons between the numeric types (`Int`, `Float`,
/// `Decimal`) compare numerically, so a predicate `col = 5` matches a
/// `Decimal` column holding `5`. All other cross-type comparisons order by a
/// fixed type rank, which keeps the order total without claiming equality
/// between, say, `Text` and `Int`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Comparisons via `Ord` treat it as the smallest value;
    /// three-valued-logic handling lives in the expression evaluator.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Fixed-point decimal as a scaled integer (TPC-C convention: cents).
    Decimal(i64),
    /// UTF-8 string.
    Text(String),
    /// Days since the Unix epoch.
    Date(i32),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// Text constructor taking anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// The runtime [`DataType`] of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Decimal(_) => Some(DataType::Decimal),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used for cross-type numeric comparison and arithmetic.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Decimal(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Integer view (`Int`/`Decimal`/`Date`/`Timestamp`/`Bool`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Decimal(d) => Some(*d),
            Value::Date(d) => Some(*d as i64),
            Value::Timestamp(t) => Some(*t),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Borrowed string view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL equality: `NULL = anything` is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self == other)
        }
    }

    /// SQL comparison: `None` when either side is NULL (unknown).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.cmp(other))
        }
    }

    /// Checked addition following numeric-widening rules.
    /// `Int + Int = Int`, anything involving `Float` is `Float`, anything
    /// involving `Decimal` (without `Float`) is `Decimal`. NULL propagates.
    pub fn add(&self, other: &Value) -> Option<Value> {
        numeric_binop(self, other, i64::checked_add, |a, b| a + b)
    }

    /// Checked subtraction (same widening rules as [`Value::add`]).
    pub fn sub(&self, other: &Value) -> Option<Value> {
        numeric_binop(self, other, i64::checked_sub, |a, b| a - b)
    }

    /// Checked multiplication (same widening rules as [`Value::add`]).
    pub fn mul(&self, other: &Value) -> Option<Value> {
        numeric_binop(self, other, i64::checked_mul, |a, b| a * b)
    }

    /// A rank used to order values of different (non-numeric-compatible)
    /// types; keeps `Ord` total.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Decimal(_) => 2,
            Value::Text(_) => 3,
            Value::Date(_) => 4,
            Value::Timestamp(_) => 5,
        }
    }
}

/// Compares an integer against a float, exactly when the float is integral
/// and in `i64` range (keeps `Ord` consistent with `Hash` beyond 2^53).
fn cmp_i64_f64(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        // Match total_cmp's order: +NaN above everything, -NaN below.
        return if f.is_sign_negative() {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }
    if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
        i.cmp(&(f as i64))
    } else {
        (i as f64).total_cmp(&f)
    }
}

/// Shared implementation for the arithmetic methods.
fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: fn(i64, i64) -> Option<i64>,
    float_op: fn(f64, f64) -> f64,
) -> Option<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Some(Value::Null),
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y).map(Value::Int),
        (Value::Decimal(x), Value::Decimal(y))
        | (Value::Decimal(x), Value::Int(y))
        | (Value::Int(x), Value::Decimal(y)) => int_op(*x, *y).map(Value::Decimal),
        _ => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Some(Value::Float(float_op(x, y)))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            // Numeric cross-type comparison: exact for Int/Decimal; when a
            // Float is involved, compare exactly against integral floats (so
            // Eq stays consistent with Hash even beyond 2^53) and through
            // f64 otherwise.
            (Int(x), Decimal(y)) | (Decimal(x), Int(y)) => x.cmp(y),
            (Int(x), Float(y)) | (Decimal(x), Float(y)) => cmp_i64_f64(*x, *y),
            (Float(x), Int(y)) | (Float(x), Decimal(y)) => cmp_i64_f64(*y, *x).reverse(),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Numeric values that compare equal must hash equal: hash all
        // integers through i64 and floats through their integral value when
        // exact, otherwise through bits.
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int(5), Decimal(5), and Float(5.0) all compare equal via the
            // numeric path, so they must hash identically: integral numerics
            // hash through i64, non-integral floats through their bits
            // (those can never equal an Int/Decimal).
            Value::Int(i) | Value::Decimal(i) => {
                state.write_u8(2);
                state.write_u8(0);
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    state.write_u8(0);
                    (*f as i64).hash(state);
                } else {
                    state.write_u8(2);
                    f.to_bits().hash(state);
                }
            }
            Value::Text(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(4);
                d.hash(state);
            }
            Value::Timestamp(t) => {
                state.write_u8(5);
                t.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Decimal(d) => write!(f, "{}.{:02}", d / 100, (d % 100).abs()),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "date:{d}"),
            Value::Timestamp(t) => write!(f, "ts:{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::text(""));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(5), Value::Decimal(5));
        assert_eq!(Value::Int(5), Value::Float(5.0));
        assert!(Value::Int(5) < Value::Float(5.5));
        assert!(Value::Decimal(700) > Value::Int(6));
    }

    #[test]
    fn equal_numerics_hash_equal() {
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Decimal(5)));
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        // total_cmp puts NaN above +inf; the point is it's *consistent*.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(nan > Value::Float(f64::INFINITY));
    }

    #[test]
    fn sql_tri_valued_comparisons() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn arithmetic_widening() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Decimal(250).add(&Value::Int(50)),
            Some(Value::Decimal(300))
        );
        assert_eq!(
            Value::Float(1.5).mul(&Value::Int(2)),
            Some(Value::Float(3.0))
        );
        assert_eq!(Value::Int(1).add(&Value::Null), Some(Value::Null));
        assert_eq!(Value::text("a").add(&Value::Int(1)), None);
    }

    #[test]
    fn arithmetic_overflow_detected() {
        assert_eq!(Value::Int(i64::MAX).add(&Value::Int(1)), None);
        assert_eq!(Value::Decimal(i64::MAX).mul(&Value::Int(2)), None);
    }

    #[test]
    fn display_decimal_as_fixed_point() {
        assert_eq!(Value::Decimal(1234).to_string(), "12.34");
        assert_eq!(Value::Decimal(-105).to_string(), "-1.05");
        assert_eq!(Value::Decimal(7).to_string(), "0.07");
    }

    #[test]
    fn text_ordering_is_lexicographic() {
        assert!(Value::text("AA101") < Value::text("AA102"));
        assert!(Value::text("B") > Value::text("AZ"));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn data_type_reporting() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Date(1).data_type(), Some(DataType::Date));
    }
}
