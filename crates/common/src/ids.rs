//! Strongly typed identifiers.

use std::fmt;

/// Identifies a table within the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// Identifies an index within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u32);

/// Identifies a transaction; monotonically increasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// Zero-based page number within a table heap.
pub type PageNo = u32;

/// Zero-based slot number within a page.
pub type SlotNo = u16;

/// A stable physical row identifier: `(page, slot)`.
///
/// This plays the role of PostgreSQL's TID in the paper: the bitmap
/// migration tracker maps each `RowId` of the *old* table onto a dense
/// bitmap offset via [`RowId::ordinal`], and page-granularity migration
/// groups rows by [`RowId::page`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId {
    page: PageNo,
    slot: SlotNo,
}

impl RowId {
    /// Builds a row id from page and slot numbers.
    pub fn new(page: PageNo, slot: SlotNo) -> Self {
        RowId { page, slot }
    }

    /// The page this row lives on.
    pub fn page(self) -> PageNo {
        self.page
    }

    /// The slot within the page.
    pub fn slot(self) -> SlotNo {
        self.slot
    }

    /// Dense ordinal of this row given the table's slots-per-page, used as
    /// the bitmap offset for tuple-granularity migration tracking.
    pub fn ordinal(self, slots_per_page: u16) -> u64 {
        self.page as u64 * slots_per_page as u64 + self.slot as u64
    }

    /// Inverse of [`RowId::ordinal`].
    pub fn from_ordinal(ordinal: u64, slots_per_page: u16) -> Self {
        RowId {
            page: (ordinal / slots_per_page as u64) as PageNo,
            slot: (ordinal % slots_per_page as u64) as SlotNo,
        }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_round_trip() {
        let slots = 128u16;
        for (page, slot) in [(0u32, 0u16), (0, 127), (1, 0), (5, 77), (1000, 1)] {
            let rid = RowId::new(page, slot);
            let ord = rid.ordinal(slots);
            assert_eq!(RowId::from_ordinal(ord, slots), rid);
        }
    }

    #[test]
    fn ordinal_is_dense_and_ordered() {
        let slots = 4u16;
        let rids = [
            RowId::new(0, 0),
            RowId::new(0, 1),
            RowId::new(0, 3),
            RowId::new(1, 0),
            RowId::new(2, 2),
        ];
        let ords: Vec<u64> = rids.iter().map(|r| r.ordinal(slots)).collect();
        assert_eq!(ords, vec![0, 1, 3, 4, 10]);
        // RowId order agrees with ordinal order.
        let mut sorted = rids;
        sorted.sort();
        assert_eq!(sorted.to_vec(), rids.to_vec());
    }

    #[test]
    fn display_forms() {
        assert_eq!(RowId::new(3, 9).to_string(), "(3,9)");
        assert_eq!(TableId(7).to_string(), "t7");
        assert_eq!(TxnId(42).to_string(), "txn42");
    }
}
