//! Tuples.

use crate::value::Value;

/// A tuple of values, positionally matching a table's column list.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Builds a row from any iterable of values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Row(values.into_iter().collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Borrow the value at `idx` (panics when out of range — callers index
    /// with schema-validated positions).
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Checked access.
    pub fn try_get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Replace the value at `idx`, returning the previous one.
    pub fn set(&mut self, idx: usize, value: Value) -> Value {
        std::mem::replace(&mut self.0[idx], value)
    }

    /// Projects the listed column positions into a new row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Extracts the listed positions as an index/group key.
    pub fn key(&self, indices: &[usize]) -> Vec<Value> {
        indices.iter().map(|&i| self.0[i].clone()).collect()
    }

    /// Concatenates two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// Convenience macro for building rows in tests and loaders:
/// `row![1, "abc", Value::Null]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_and_key() {
        let r = Row::new(vec![Value::Int(1), Value::text("a"), Value::Int(3)]);
        assert_eq!(
            r.project(&[2, 0]),
            Row::new(vec![Value::Int(3), Value::Int(1)])
        );
        assert_eq!(r.key(&[1]), vec![Value::text("a")]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = Row::new(vec![Value::Int(1)]);
        let b = Row::new(vec![Value::Int(2), Value::Int(3)]);
        assert_eq!(
            a.concat(&b),
            Row::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn set_returns_previous() {
        let mut r = Row::new(vec![Value::Int(1)]);
        let prev = r.set(0, Value::Int(9));
        assert_eq!(prev, Value::Int(1));
        assert_eq!(r[0], Value::Int(9));
    }

    #[test]
    fn row_macro_converts() {
        let r = row![1, "x", 2.5];
        assert_eq!(r.arity(), 3);
        assert_eq!(r[1], Value::text("x"));
    }
}
