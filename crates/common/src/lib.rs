//! Shared foundation for the BullFrog workspace.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - [`Value`] / [`DataType`] — the dynamically typed cell values stored in
//!   tuples, with a total order and hash suitable for index keys and
//!   migration group identifiers.
//! - [`Row`] — a tuple of values.
//! - [`schema`] — table schemas with primary keys, unique constraints,
//!   foreign keys, and CHECK constraints.
//! - [`ids`] — strongly typed identifiers (`TableId`, `RowId`, `TxnId`, ...).
//! - [`Error`] — the workspace-wide error type.

pub mod error;
pub mod hash;
pub mod ids;
pub mod row;
pub mod schema;
pub mod types;
pub mod value;

pub use error::{Error, Result};
pub use hash::{fnv_hash_one, FnvHasher};
pub use ids::{IndexId, PageNo, RowId, SlotNo, TableId, TxnId};
pub use row::Row;
pub use schema::{
    CheckConstraint, CheckExpr, CheckOp, ColumnDef, ForeignKey, TableSchema, UniqueConstraint,
};
pub use types::DataType;
pub use value::Value;
