//! Undo records.
//!
//! The engine appends an [`UndoRecord`] for every mutation a transaction
//! makes; on abort the records are applied **in reverse order** against the
//! catalog. Records carry table ids and row images only (no storage
//! references) so this crate stays independent of the storage crate.

use bullfrog_common::{Row, RowId, TableId};

/// One reversible mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoRecord {
    /// An insert happened at `rid`; undo deletes it.
    Insert {
        /// Table mutated.
        table: TableId,
        /// Row id the insert produced.
        rid: RowId,
    },
    /// An update replaced `old` at `rid`; undo restores `old`.
    Update {
        /// Table mutated.
        table: TableId,
        /// Row id updated.
        rid: RowId,
        /// Pre-image.
        old: Row,
    },
    /// A delete removed `old` at `rid`; undo restores it.
    Delete {
        /// Table mutated.
        table: TableId,
        /// Row id deleted.
        rid: RowId,
        /// Deleted row.
        old: Row,
    },
}

impl UndoRecord {
    /// The table this record touches.
    pub fn table(&self) -> TableId {
        match self {
            UndoRecord::Insert { table, .. }
            | UndoRecord::Update { table, .. }
            | UndoRecord::Delete { table, .. } => *table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    #[test]
    fn table_accessor() {
        let t = TableId(3);
        let rid = RowId::new(0, 0);
        assert_eq!(UndoRecord::Insert { table: t, rid }.table(), t);
        assert_eq!(
            UndoRecord::Update {
                table: t,
                rid,
                old: row![1]
            }
            .table(),
            t
        );
        assert_eq!(
            UndoRecord::Delete {
                table: t,
                rid,
                old: row![1]
            }
            .table(),
            t
        );
    }
}
