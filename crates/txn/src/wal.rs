//! Redo write-ahead log with group commit and checkpoint truncation.
//!
//! The WAL serves two purposes in this reproduction:
//!
//! 1. Ordinary **data recovery**: replaying committed transactions rebuilds
//!    table contents.
//! 2. **Migration-tracker recovery** (paper §3.5, described there as future
//!    work — implemented here): `MigrationGranule` records are written
//!    inside migration transactions, so replay can mark exactly the
//!    granules whose migration committed as `[0 1]`/`migrated`.
//!
//! # Structure
//!
//! Records live in **segments**: a bounded open segment receives appends
//! under a short mutex, and full segments are sealed into immutable
//! `Arc<Segment>`s that readers can walk without copying. LSNs are record
//! offsets from the birth of the log and are assigned under the same mutex,
//! so batches stay contiguous.
//!
//! Durability is decoupled from appending. File-backed logs encode each
//! batch *outside* the lock, stage the bytes in a pending buffer, and a
//! dedicated **flusher thread** drains the buffer with one combined
//! `write` + `fsync` per wakeup — the group commit. Committers that need
//! durability ([`Wal::append_batch_durable`]) park on the commit barrier
//! and are woken once the durable horizon ([`Wal::durable_lsn`]) covers
//! their records. No fsync ever happens under the log lock.
//!
//! [`Wal::truncate_to`] supports checkpointing: once a caller has
//! persisted a snapshot of the committed prefix (see
//! `bullfrog-engine::checkpoint`), the prefix is dropped from memory at
//! segment granularity and the backing file is rotated to a fresh log
//! holding only the tail, prefixed by a `BFWAL1` header carrying the base
//! LSN. Headerless files from older logs read as base 0.
//!
//! The binary record format is unchanged and round-trip tested, and the
//! file scanner ([`Wal::load_file`]) tolerates a torn tail from a crash
//! mid-write.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_common::{Error, Result, Row, RowId, TableId, TxnId, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};

/// Identifies a granule within a migration for recovery purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GranuleKey {
    /// A bitmap-tracked granule: its dense ordinal.
    Ordinal(u64),
    /// A hashmap-tracked granule: the group key values.
    Group(Vec<Value>),
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start (informational).
    Begin(TxnId),
    /// Row inserted.
    Insert {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id assigned.
        rid: RowId,
        /// Inserted row (after-image).
        row: Row,
    },
    /// Row updated.
    Update {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id updated.
        rid: RowId,
        /// After-image.
        after: Row,
    },
    /// Row deleted.
    Delete {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id deleted.
        rid: RowId,
    },
    /// A migration granule was physically migrated inside `txn`; replay
    /// marks it migrated iff `txn` committed.
    MigrationGranule {
        /// Migrating transaction.
        txn: TxnId,
        /// Which migration statement (assigned by `bullfrog-core`).
        migration: u32,
        /// The granule.
        granule: GranuleKey,
    },
    /// Transaction committed — all earlier records of `txn` are durable.
    Commit(TxnId),
    /// Transaction aborted (written for completeness; replay ignores the
    /// transaction's records either way).
    Abort(TxnId),
}

impl LogRecord {
    /// The transaction a record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin(t) | LogRecord::Commit(t) | LogRecord::Abort(t) => *t,
            LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::MigrationGranule { txn, .. } => *txn,
        }
    }

    /// True for the records that resolve a transaction.
    fn resolves(&self) -> bool {
        matches!(self, LogRecord::Commit(_) | LogRecord::Abort(_))
    }
}

/// Records per segment; full open segments are sealed at this size, so
/// resident memory after a checkpoint is bounded by the tail length plus
/// one partially-covered segment.
const SEGMENT_RECORDS: usize = 1024;

/// Magic prefix of rotated WAL files; followed by the base LSN (u64 BE).
const FILE_MAGIC: [u8; 6] = *b"BFWAL1";
const HEADER_LEN: usize = FILE_MAGIC.len() + 8;

/// An immutable, sealed run of records starting at a fixed LSN. Shared out
/// under `Arc` so readers iterate without cloning records or holding the
/// log lock.
#[derive(Debug)]
pub struct Segment {
    base_lsn: u64,
    records: Vec<LogRecord>,
}

impl Segment {
    /// LSN of the first record in the segment.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// One past the LSN of the last record.
    pub fn end_lsn(&self) -> u64 {
        self.base_lsn + self.records.len() as u64
    }

    /// The records.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }
}

/// Tuning knobs for a file-backed log.
#[derive(Debug, Clone, Default)]
pub struct WalOptions {
    /// How long the flusher waits after the first staged batch before
    /// issuing the combined write+fsync, to let concurrent committers pile
    /// into the same group. Zero (the default) flushes as soon as the
    /// flusher is free — grouping then happens naturally while a previous
    /// fsync is in flight.
    pub group_window: Duration,
}

/// Point-in-time view of the durability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalStatsSnapshot {
    /// Combined write+fsync calls issued.
    pub flushes: u64,
    /// Commit batches covered by those flushes.
    pub flushed_batches: u64,
    /// Bytes written.
    pub flushed_bytes: u64,
    /// Total time spent in write+fsync, microseconds.
    pub flush_micros: u64,
    /// Largest number of batches retired by a single flush.
    pub max_group: u64,
    /// Checkpoint truncations performed.
    pub checkpoints: u64,
    /// Records dropped from memory by truncation.
    pub truncated_records: u64,
}

impl WalStatsSnapshot {
    /// Mean batches per flush — the observed group-commit factor.
    pub fn mean_group(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flushed_batches as f64 / self.flushes as f64
        }
    }

    /// Mean write+fsync latency in microseconds.
    pub fn mean_flush_micros(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flush_micros as f64 / self.flushes as f64
        }
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "fsyncs={} batches={} group(mean/max)={:.2}/{} bytes={} flush_us(mean)={:.0} checkpoints={} truncated={}",
            self.flushes,
            self.flushed_batches,
            self.mean_group(),
            self.max_group,
            self.flushed_bytes,
            self.mean_flush_micros(),
            self.checkpoints,
            self.truncated_records,
        )
    }
}

/// Internal atomic counters behind [`WalStatsSnapshot`].
#[derive(Debug, Default)]
struct WalStats {
    flushes: AtomicU64,
    flushed_batches: AtomicU64,
    flushed_bytes: AtomicU64,
    flush_micros: AtomicU64,
    max_group: AtomicU64,
    checkpoints: AtomicU64,
    truncated_records: AtomicU64,
}

impl WalStats {
    fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            flushed_batches: self.flushed_batches.load(Ordering::Relaxed),
            flushed_bytes: self.flushed_bytes.load(Ordering::Relaxed),
            flush_micros: self.flush_micros.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            truncated_records: self.truncated_records.load(Ordering::Relaxed),
        }
    }
}

/// Log state under the (short) log mutex. Appenders extend the open
/// segment and memcpy pre-encoded bytes into `pending`; nothing here does
/// IO.
struct WalCore {
    /// Sealed, immutable segments in LSN order, all below `open_base`.
    sealed: Vec<Arc<Segment>>,
    /// The open segment's records; `open_base` is the LSN of `open[0]`.
    open: Vec<LogRecord>,
    open_base: u64,
    /// First retained LSN — records below it were checkpointed away.
    base_lsn: u64,
    /// Next LSN to assign (== `open_base + open.len()`).
    next_lsn: u64,
    /// Encoded-but-unflushed bytes (file-backed logs only).
    pending: BytesMut,
    /// Batches staged in `pending`.
    pending_batches: u64,
    /// When the oldest staged batch arrived (drives the group window).
    pending_since: Option<Instant>,
    /// Set by `Drop`; the flusher drains and exits.
    shutdown: bool,
}

impl WalCore {
    fn push(&mut self, record: LogRecord) {
        self.open.push(record);
        self.next_lsn += 1;
        if self.open.len() >= SEGMENT_RECORDS {
            let records = std::mem::take(&mut self.open);
            self.sealed.push(Arc::new(Segment {
                base_lsn: self.open_base,
                records,
            }));
            self.open_base = self.next_lsn;
        }
    }

    /// Visits every retained record with its LSN, in LSN order.
    fn for_each(&self, mut f: impl FnMut(u64, &LogRecord)) {
        for seg in &self.sealed {
            for (i, r) in seg.records.iter().enumerate() {
                let lsn = seg.base_lsn + i as u64;
                if lsn >= self.base_lsn {
                    f(lsn, r);
                }
            }
        }
        for (i, r) in self.open.iter().enumerate() {
            let lsn = self.open_base + i as u64;
            if lsn >= self.base_lsn {
                f(lsn, r);
            }
        }
    }
}

/// State shared between the log handle and its flusher thread.
struct WalShared {
    core: Mutex<WalCore>,
    /// Signaled when `pending` gains bytes or shutdown is requested.
    work: Condvar,
    /// The commit barrier: signaled when `durable_lsn` advances.
    durable: Condvar,
    /// All records with LSN below this are on disk.
    durable_lsn: AtomicU64,
    /// Bumped by rotation so an in-flight flush of pre-rotation bytes is
    /// discarded instead of being appended to the new file.
    file_epoch: AtomicU64,
    /// Set when a flush failed; waiters panic rather than hang.
    poisoned: AtomicBool,
    /// The append handle (file-backed logs only); never touched while
    /// holding `core` except during rotation, which owns both.
    file: Mutex<Option<std::fs::File>>,
    path: Option<PathBuf>,
    file_backed: bool,
    group_window: Duration,
    stats: WalStats,
}

/// The write-ahead log: an append-only, atomically-batched, segmented
/// record list, optionally made durable in a file by a group-commit
/// flusher thread.
pub struct Wal {
    shared: Arc<WalShared>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl Wal {
    /// An in-memory-only log: appends are visible immediately and
    /// durability waits return at once.
    pub fn new() -> Self {
        Wal {
            shared: Arc::new(Self::make_shared(None, WalOptions::default())),
            flusher: None,
        }
    }

    /// A log mirrored to `path` (created or appended to) with default
    /// options. Existing records in the file are **not** loaded — use
    /// [`Wal::load_file`] first and replay them, as recovery does.
    pub fn with_file(path: impl AsRef<Path>) -> Result<Self> {
        Self::with_file_opts(path, WalOptions::default())
    }

    /// As [`Wal::with_file`] with explicit [`WalOptions`].
    pub fn with_file_opts(path: impl AsRef<Path>, opts: WalOptions) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::Wal(format!("open wal file: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| Error::Wal(format!("stat wal file: {e}")))?
            .len();
        if len == 0 {
            // Fresh log: stamp the header before any record can land.
            file.write_all(&encode_header(0))
                .and_then(|()| file.sync_data())
                .map_err(|e| Error::Wal(format!("write wal header: {e}")))?;
        }
        let shared = Arc::new(Self::make_shared(Some((path, file)), opts));
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bullfrog-wal-flush".into())
                .spawn(move || flusher_loop(&shared))
                .map_err(|e| Error::Wal(format!("spawn wal flusher: {e}")))?
        };
        Ok(Wal {
            shared,
            flusher: Some(flusher),
        })
    }

    fn make_shared(file: Option<(PathBuf, std::fs::File)>, opts: WalOptions) -> WalShared {
        let (path, file) = match file {
            Some((p, f)) => (Some(p), Some(f)),
            None => (None, None),
        };
        WalShared {
            core: Mutex::new(WalCore {
                sealed: Vec::new(),
                open: Vec::new(),
                open_base: 0,
                base_lsn: 0,
                next_lsn: 0,
                pending: BytesMut::new(),
                pending_batches: 0,
                pending_since: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            durable_lsn: AtomicU64::new(0),
            file_epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            file_backed: file.is_some(),
            file: Mutex::new(file),
            path,
            group_window: opts.group_window,
            stats: WalStats::default(),
        }
    }

    /// Reads a WAL file, returning every complete record. A torn tail —
    /// a partial record at EOF from a crash mid-write — is tolerated and
    /// ignored, like any real log scanner. A `BFWAL1` rotation header is
    /// skipped; headerless files read as base LSN 0.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Vec<LogRecord>> {
        Ok(Self::load_file_with_base(path)?.1)
    }

    /// As [`Wal::load_file`], also returning the base LSN from the
    /// rotation header (0 for headerless legacy files).
    pub fn load_file_with_base(path: impl AsRef<Path>) -> Result<(u64, Vec<LogRecord>)> {
        let bytes = std::fs::read(path).map_err(|e| Error::Wal(format!("read wal file: {e}")))?;
        let (base, offset) = parse_header(&bytes);
        let tail = Bytes::from(bytes).slice(offset..);
        Ok((base, Self::decode_prefix(tail).0))
    }

    /// Decodes records until the bytes run out or a record is torn;
    /// returns the records and how many bytes were consumed cleanly.
    pub fn decode_prefix(bytes: Bytes) -> (Vec<LogRecord>, usize) {
        let total = bytes.len();
        let mut buf = bytes;
        let mut out = Vec::new();
        let mut consumed = 0usize;
        loop {
            if !buf.has_remaining() {
                break;
            }
            let before = buf.remaining();
            match decode_record(&mut buf) {
                Ok(r) => {
                    out.push(r);
                    consumed += before - buf.remaining();
                }
                Err(_) => break,
            }
        }
        debug_assert!(consumed <= total);
        (out, consumed)
    }

    /// Appends a batch atomically (a committing transaction appends its
    /// redo records followed by its `Commit` in one call, so no reader can
    /// observe a commit record without its payload). Returns the LSN of
    /// the first appended record without waiting for durability; use
    /// [`Wal::append_batch_durable`] on the commit path.
    pub fn append_batch(&self, batch: impl IntoIterator<Item = LogRecord>) -> u64 {
        self.append_batch_inner(batch).0
    }

    /// Appends a batch and blocks on the commit barrier until a combined
    /// write+fsync covers it. The calling thread parks; the flusher wakes
    /// every committer whose records the flush made durable. In-memory
    /// logs return immediately. Returns the LSN of the first record.
    pub fn append_batch_durable(&self, batch: impl IntoIterator<Item = LogRecord>) -> u64 {
        let (first, end) = self.append_batch_inner(batch);
        self.wait_durable(end);
        first
    }

    /// Returns `(first_lsn, end_lsn)` of the appended batch.
    fn append_batch_inner(&self, batch: impl IntoIterator<Item = LogRecord>) -> (u64, u64) {
        let records: Vec<LogRecord> = batch.into_iter().collect();
        // Encode outside the lock; appenders pay serialization in
        // parallel and the critical section is push + memcpy.
        let encoded = if self.shared.file_backed && !records.is_empty() {
            let mut buf = BytesMut::new();
            for r in &records {
                encode_record(&mut buf, r);
            }
            Some(buf)
        } else {
            None
        };
        let mut core = self.shared.core.lock();
        let first = core.next_lsn;
        for r in records {
            core.push(r);
        }
        let end = core.next_lsn;
        if let Some(bytes) = encoded {
            if core.pending.is_empty() {
                core.pending_since = Some(Instant::now());
            }
            core.pending.extend_from_slice(&bytes);
            core.pending_batches += 1;
            self.shared.work.notify_one();
        }
        (first, end)
    }

    /// Appends one record.
    pub fn append(&self, record: LogRecord) -> u64 {
        self.append_batch([record])
    }

    /// Blocks until every record below `lsn` is on disk (no-op for
    /// in-memory logs). Panics if the flusher died of an IO error —
    /// acknowledging a commit without durability would be a lie.
    pub fn wait_durable(&self, lsn: u64) {
        if !self.shared.file_backed || self.shared.durable_lsn.load(Ordering::Acquire) >= lsn {
            return;
        }
        let mut core = self.shared.core.lock();
        while self.shared.durable_lsn.load(Ordering::Acquire) < lsn {
            if self.shared.poisoned.load(Ordering::Acquire) {
                panic!("WAL flusher failed; cannot guarantee durability");
            }
            self.shared.durable.wait(&mut core);
        }
    }

    /// Forces everything appended so far to disk and waits for it.
    pub fn sync(&self) {
        let lsn = self.shared.core.lock().next_lsn;
        self.shared.work.notify_one();
        self.wait_durable(lsn);
    }

    /// The durability horizon: every record below this LSN is on disk.
    /// Always 0 for in-memory logs.
    pub fn durable_lsn(&self) -> u64 {
        self.shared.durable_lsn.load(Ordering::Acquire)
    }

    /// Total records ever appended — the length of the LSN space. Not
    /// reduced by checkpoint truncation.
    pub fn len(&self) -> usize {
        self.shared.core.lock().next_lsn as usize
    }

    /// True when no records were ever written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First retained LSN (0 until a checkpoint truncates the log).
    pub fn base_lsn(&self) -> u64 {
        self.shared.core.lock().base_lsn
    }

    /// Records currently resident in memory (tail + partially-covered
    /// segments). Bounded after checkpoints, unlike `len()`.
    pub fn resident_records(&self) -> usize {
        let core = self.shared.core.lock();
        core.sealed.iter().map(|s| s.records.len()).sum::<usize>() + core.open.len()
    }

    /// Durability counters.
    pub fn stats(&self) -> WalStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Snapshot of the retained log (recovery input).
    pub fn snapshot(&self) -> Vec<LogRecord> {
        let core = self.shared.core.lock();
        self.collect_range(&core, core.base_lsn, core.next_lsn)
    }

    /// Clones the retained records with LSN in `[lo, hi)` (checkpoint
    /// input). Walks the segments; does not copy the rest of the log.
    pub fn records_in(&self, lo: u64, hi: u64) -> Vec<LogRecord> {
        let core = self.shared.core.lock();
        self.collect_range(&core, lo.max(core.base_lsn), hi.min(core.next_lsn))
    }

    fn collect_range(&self, core: &WalCore, lo: u64, hi: u64) -> Vec<LogRecord> {
        let mut out = Vec::new();
        core.for_each(|lsn, r| {
            if lsn >= lo && lsn < hi {
                out.push(r.clone());
            }
        });
        out
    }

    /// Serializes the retained log to its binary image. Sealed segments
    /// are shared out of the lock; only the open segment is cloned.
    pub fn encode_all(&self) -> Bytes {
        let (sealed, open, base) = {
            let core = self.shared.core.lock();
            (core.sealed.clone(), core.open.clone(), core.base_lsn)
        };
        let mut buf = BytesMut::new();
        for seg in &sealed {
            for (i, r) in seg.records.iter().enumerate() {
                if seg.base_lsn + i as u64 >= base {
                    encode_record(&mut buf, r);
                }
            }
        }
        for r in &open {
            encode_record(&mut buf, r);
        }
        buf.freeze()
    }

    /// Parses a binary image produced by [`Wal::encode_all`].
    pub fn decode_all(mut bytes: Bytes) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        while bytes.has_remaining() {
            out.push(decode_record(&mut bytes)?);
        }
        Ok(out)
    }

    /// The largest transaction-interval-safe cut: no transaction has
    /// records both below and at-or-above the returned LSN (transactions
    /// without a `Commit`/`Abort` yet may still append, so they pin the
    /// cut below their first record). Found by a decreasing fixpoint from
    /// the log end; never below the current base LSN.
    pub fn safe_cut(&self) -> u64 {
        let core = self.shared.core.lock();
        // (first record LSN, last record LSN, resolved?) per txn.
        let mut spans: HashMap<TxnId, (u64, u64, bool)> = HashMap::new();
        core.for_each(|lsn, r| {
            let e = spans.entry(r.txn()).or_insert((lsn, lsn, false));
            e.1 = lsn;
            e.2 |= r.resolves();
        });
        let mut cut = core.next_lsn;
        loop {
            let mut moved = false;
            for (first, last, resolved) in spans.values() {
                let hi = if *resolved { *last } else { u64::MAX };
                if *first < cut && cut <= hi {
                    cut = *first;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        cut.max(core.base_lsn)
    }

    /// Truncates the log at `cut` (clamped to a valid range): sealed
    /// segments wholly below `cut` and the covered prefix of the open
    /// segment are dropped from memory, and a file-backed log is rotated
    /// to a fresh file holding only records at or above `cut` behind a
    /// `BFWAL1` + base-LSN header. The rotation itself fsyncs, so the
    /// whole tail becomes durable. Returns the records dropped.
    ///
    /// The caller is responsible for having persisted a checkpoint image
    /// covering everything below `cut` first, and for picking a
    /// transaction-safe `cut` (see [`Wal::safe_cut`]).
    pub fn truncate_to(&self, cut: u64) -> Result<u64> {
        let shared = &self.shared;
        let mut core = shared.core.lock();
        let cut = cut.clamp(core.base_lsn, core.next_lsn);
        if shared.file_backed {
            let mut image = BytesMut::new();
            image.put_slice(&encode_header(cut));
            core.for_each(|lsn, r| {
                if lsn >= cut {
                    encode_record(&mut image, r);
                }
            });
            let path = shared.path.as_ref().expect("file-backed wal has a path");
            let tmp = path.with_extension("wal-rotate");
            let rotate = || -> std::io::Result<std::fs::File> {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&image)?;
                f.sync_all()?;
                std::fs::rename(&tmp, path)?;
                std::fs::OpenOptions::new().append(true).open(path)
            };
            // Holding `core` (and then `file`) keeps appenders and the
            // flusher out for the duration; rotation is rare.
            let mut file = shared.file.lock();
            let new_file = rotate().map_err(|e| Error::Wal(format!("rotate wal file: {e}")))?;
            *file = Some(new_file);
            shared.file_epoch.fetch_add(1, Ordering::AcqRel);
            drop(file);
            // Everything the rotation wrote is durable; any in-flight
            // flusher buffer is discarded via the epoch check.
            core.pending.clear();
            core.pending_batches = 0;
            core.pending_since = None;
            if shared.durable_lsn.load(Ordering::Acquire) < core.next_lsn {
                shared.durable_lsn.store(core.next_lsn, Ordering::Release);
            }
            shared.durable.notify_all();
        }
        let mut dropped = 0u64;
        core.sealed.retain(|seg| {
            if seg.end_lsn() <= cut {
                dropped += seg.records.len() as u64;
                false
            } else {
                true
            }
        });
        if cut > core.open_base {
            let covered = (cut - core.open_base) as usize;
            core.open.drain(..covered);
            core.open_base = cut;
            dropped += covered as u64;
        }
        core.base_lsn = cut;
        shared
            .stats
            .truncated_records
            .fetch_add(dropped, Ordering::Relaxed);
        shared.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(dropped)
    }
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let Some(handle) = self.flusher.take() {
            {
                let mut core = self.shared.core.lock();
                core.shutdown = true;
            }
            self.shared.work.notify_all();
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("WAL flusher thread panicked");
            }
        }
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.len())
            .field("base_lsn", &self.base_lsn())
            .field("durable_lsn", &self.durable_lsn())
            .finish()
    }
}

/// The group-commit flusher: drains the pending buffer with one combined
/// write+fsync per wakeup, then advances the durable horizon and wakes
/// every committer it covered. Exits when the log shuts down and the
/// buffer is drained.
fn flusher_loop(shared: &WalShared) {
    loop {
        let (buf, batches, end_lsn, epoch) = {
            let mut core = shared.core.lock();
            loop {
                if core.pending.is_empty() {
                    if core.shutdown {
                        return;
                    }
                    shared.work.wait(&mut core);
                    continue;
                }
                if !core.shutdown && !shared.group_window.is_zero() {
                    let deadline =
                        core.pending_since.expect("pending implies since") + shared.group_window;
                    if Instant::now() < deadline {
                        shared.work.wait_until(&mut core, deadline);
                        continue;
                    }
                }
                break;
            }
            let buf = std::mem::take(&mut core.pending);
            let batches = std::mem::replace(&mut core.pending_batches, 0);
            core.pending_since = None;
            (
                buf,
                batches,
                core.next_lsn,
                shared.file_epoch.load(Ordering::Acquire),
            )
        };
        let started = Instant::now();
        let mut rotated_away = false;
        {
            let mut file = shared.file.lock();
            if shared.file_epoch.load(Ordering::Acquire) != epoch {
                // A checkpoint rotated the file between our buffer swap
                // and this write; the rotation already persisted (or
                // dropped) these records. Writing them would duplicate.
                rotated_away = true;
            } else if let Some(f) = file.as_mut() {
                if let Err(e) = f.write_all(&buf).and_then(|()| f.sync_data()) {
                    shared.poisoned.store(true, Ordering::Release);
                    drop(file);
                    let _core = shared.core.lock();
                    shared.durable.notify_all();
                    panic!("WAL flush failed; cannot guarantee durability: {e}");
                }
            }
        }
        if !rotated_away {
            let stats = &shared.stats;
            stats.flushes.fetch_add(1, Ordering::Relaxed);
            stats.flushed_batches.fetch_add(batches, Ordering::Relaxed);
            stats
                .flushed_bytes
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            stats
                .flush_micros
                .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
            stats.max_group.fetch_max(batches, Ordering::Relaxed);
        }
        {
            let _core = shared.core.lock();
            if shared.durable_lsn.load(Ordering::Acquire) < end_lsn {
                shared.durable_lsn.store(end_lsn, Ordering::Release);
            }
            shared.durable.notify_all();
        }
    }
}

fn encode_header(base_lsn: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..FILE_MAGIC.len()].copy_from_slice(&FILE_MAGIC);
    h[FILE_MAGIC.len()..].copy_from_slice(&base_lsn.to_be_bytes());
    h
}

/// Returns `(base_lsn, record offset)`. Headerless legacy files read as
/// base 0 from offset 0; a torn header (magic present, LSN cut off) reads
/// as an empty log.
fn parse_header(bytes: &[u8]) -> (u64, usize) {
    if bytes.len() >= FILE_MAGIC.len() && bytes[..FILE_MAGIC.len()] == FILE_MAGIC {
        if bytes.len() >= HEADER_LEN {
            let mut lsn = [0u8; 8];
            lsn.copy_from_slice(&bytes[FILE_MAGIC.len()..HEADER_LEN]);
            (u64::from_be_bytes(lsn), HEADER_LEN)
        } else {
            (0, bytes.len())
        }
    } else {
        (0, 0)
    }
}

// --- binary format -------------------------------------------------------
//
// file    := header? record*
// header  := "BFWAL1" base_lsn:u64          (rotated logs; legacy = none)
// record  := tag:u8 body
// value   := vtag:u8 payload
// row     := count:u32 value*
// string  := len:u32 utf8-bytes

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_GRANULE: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;

fn encode_record(buf: &mut BytesMut, r: &LogRecord) {
    match r {
        LogRecord::Begin(t) => {
            buf.put_u8(TAG_BEGIN);
            buf.put_u64(t.0);
        }
        LogRecord::Insert {
            txn,
            table,
            rid,
            row,
        } => {
            buf.put_u8(TAG_INSERT);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
            put_row(buf, row);
        }
        LogRecord::Update {
            txn,
            table,
            rid,
            after,
        } => {
            buf.put_u8(TAG_UPDATE);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
            put_row(buf, after);
        }
        LogRecord::Delete { txn, table, rid } => {
            buf.put_u8(TAG_DELETE);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
        }
        LogRecord::MigrationGranule {
            txn,
            migration,
            granule,
        } => {
            buf.put_u8(TAG_GRANULE);
            buf.put_u64(txn.0);
            buf.put_u32(*migration);
            put_granule(buf, granule);
        }
        LogRecord::Commit(t) => {
            buf.put_u8(TAG_COMMIT);
            buf.put_u64(t.0);
        }
        LogRecord::Abort(t) => {
            buf.put_u8(TAG_ABORT);
            buf.put_u64(t.0);
        }
    }
}

fn decode_record(buf: &mut Bytes) -> Result<LogRecord> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated record tag".into()));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_BEGIN => Ok(LogRecord::Begin(TxnId(get_u64(buf)?))),
        TAG_INSERT => Ok(LogRecord::Insert {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
            row: get_row(buf)?,
        }),
        TAG_UPDATE => Ok(LogRecord::Update {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
            after: get_row(buf)?,
        }),
        TAG_DELETE => Ok(LogRecord::Delete {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
        }),
        TAG_GRANULE => {
            let txn = TxnId(get_u64(buf)?);
            let migration = get_u32(buf)?;
            let granule = get_granule(buf)?;
            Ok(LogRecord::MigrationGranule {
                txn,
                migration,
                granule,
            })
        }
        TAG_COMMIT => Ok(LogRecord::Commit(TxnId(get_u64(buf)?))),
        TAG_ABORT => Ok(LogRecord::Abort(TxnId(get_u64(buf)?))),
        t => Err(Error::Wal(format!("bad record tag {t}"))),
    }
}

fn put_granule(buf: &mut BytesMut, granule: &GranuleKey) {
    match granule {
        GranuleKey::Ordinal(o) => {
            buf.put_u8(0);
            buf.put_u64(*o);
        }
        GranuleKey::Group(vals) => {
            buf.put_u8(1);
            buf.put_u32(vals.len() as u32);
            for v in vals {
                put_value(buf, v);
            }
        }
    }
}

fn get_granule(buf: &mut Bytes) -> Result<GranuleKey> {
    match get_u8(buf)? {
        0 => Ok(GranuleKey::Ordinal(get_u64(buf)?)),
        1 => {
            let n = get_u32(buf)? as usize;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(get_value(buf)?);
            }
            Ok(GranuleKey::Group(vals))
        }
        k => Err(Error::Wal(format!("bad granule kind {k}"))),
    }
}

fn put_rid(buf: &mut BytesMut, rid: RowId) {
    buf.put_u32(rid.page());
    buf.put_u16(rid.slot());
}

fn get_rid(buf: &mut Bytes) -> Result<RowId> {
    Ok(RowId::new(get_u32(buf)?, get_u16(buf)?))
}

fn put_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32(row.arity() as u32);
    for v in row.iter() {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut Bytes) -> Result<Row> {
    let n = get_u32(buf)? as usize;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(buf)?);
    }
    Ok(Row(vals))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64(*f);
        }
        Value::Decimal(d) => {
            buf.put_u8(4);
            buf.put_i64(*d);
        }
        Value::Text(s) => {
            buf.put_u8(5);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.put_u8(6);
            buf.put_i32(*d);
        }
        Value::Timestamp(t) => {
            buf.put_u8(7);
            buf.put_i64(*t);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(get_u8(buf)? != 0)),
        2 => Ok(Value::Int(get_i64(buf)?)),
        3 => {
            if buf.remaining() < 8 {
                return Err(Error::Wal("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        4 => Ok(Value::Decimal(get_i64(buf)?)),
        5 => {
            let n = get_u32(buf)? as usize;
            if buf.remaining() < n {
                return Err(Error::Wal("truncated string".into()));
            }
            let bytes = buf.copy_to_bytes(n);
            String::from_utf8(bytes.to_vec())
                .map(Value::Text)
                .map_err(|_| Error::Wal("invalid utf8 in string".into()))
        }
        6 => {
            if buf.remaining() < 4 {
                return Err(Error::Wal("truncated date".into()));
            }
            Ok(Value::Date(buf.get_i32()))
        }
        7 => Ok(Value::Timestamp(get_i64(buf)?)),
        t => Err(Error::Wal(format!("bad value tag {t}"))),
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(Error::Wal("truncated u16".into()));
    }
    Ok(buf.get_u16())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Wal("truncated u32".into()));
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("truncated u64".into()));
    }
    Ok(buf.get_u64())
}

fn get_i64(buf: &mut Bytes) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("truncated i64".into()));
    }
    Ok(buf.get_i64())
}

/// Wire-format helpers shared with the checkpoint image codec in
/// `bullfrog-engine` (same value/row/granule encoding as the log itself).
pub mod codec {
    use super::*;

    /// Encodes a row.
    pub fn put_row(buf: &mut BytesMut, row: &Row) {
        super::put_row(buf, row);
    }

    /// Decodes a row.
    pub fn get_row(buf: &mut Bytes) -> Result<Row> {
        super::get_row(buf)
    }

    /// Encodes a row id.
    pub fn put_rid(buf: &mut BytesMut, rid: RowId) {
        super::put_rid(buf, rid);
    }

    /// Decodes a row id.
    pub fn get_rid(buf: &mut Bytes) -> Result<RowId> {
        super::get_rid(buf)
    }

    /// Encodes a granule key.
    pub fn put_granule(buf: &mut BytesMut, granule: &GranuleKey) {
        super::put_granule(buf, granule);
    }

    /// Decodes a granule key.
    pub fn get_granule(buf: &mut Bytes) -> Result<GranuleKey> {
        super::get_granule(buf)
    }

    /// Decodes a u32 with truncation checking.
    pub fn get_u32(buf: &mut Bytes) -> Result<u32> {
        super::get_u32(buf)
    }

    /// Decodes a u64 with truncation checking.
    pub fn get_u64(buf: &mut Bytes) -> Result<u64> {
        super::get_u64(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin(TxnId(1)),
            LogRecord::Insert {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(0, 3),
                row: row![42, "hello", 2.5],
            },
            LogRecord::Update {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(0, 3),
                after: Row(vec![Value::Null, Value::Bool(true), Value::Decimal(199)]),
            },
            LogRecord::Delete {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(1, 0),
            },
            LogRecord::MigrationGranule {
                txn: TxnId(1),
                migration: 7,
                granule: GranuleKey::Ordinal(12345),
            },
            LogRecord::MigrationGranule {
                txn: TxnId(1),
                migration: 7,
                granule: GranuleKey::Group(vec![Value::Int(1), Value::text("grp")]),
            },
            LogRecord::Commit(TxnId(1)),
            LogRecord::Abort(TxnId(2)),
        ]
    }

    /// A per-test temp file path (tests run in one process, so the pid
    /// alone is not unique).
    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bullfrog-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn binary_round_trip() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        let decoded = Wal::decode_all(bytes).unwrap();
        assert_eq!(decoded, sample_records());
    }

    #[test]
    fn decode_rejects_truncation() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        for cut in [1usize, 5, bytes.len() - 1] {
            let truncated = bytes.slice(..cut);
            assert!(
                Wal::decode_all(truncated).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let bytes = Bytes::from_static(&[0xFF]);
        assert!(matches!(Wal::decode_all(bytes), Err(Error::Wal(_))));
    }

    #[test]
    fn lsn_is_record_offset() {
        let wal = Wal::new();
        assert_eq!(wal.append(LogRecord::Begin(TxnId(1))), 0);
        assert_eq!(
            wal.append_batch([LogRecord::Commit(TxnId(1)), LogRecord::Begin(TxnId(2))]),
            1
        );
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn append_batch_is_atomic_under_concurrency() {
        use std::sync::Arc;
        let wal = Arc::new(Wal::new());
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let txn = TxnId(t * 1000 + i);
                    wal.append_batch([
                        LogRecord::Begin(txn),
                        LogRecord::Delete {
                            txn,
                            table: TableId(1),
                            rid: RowId::new(0, 0),
                        },
                        LogRecord::Commit(txn),
                    ]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every txn's three records must be contiguous.
        let records = wal.snapshot();
        assert_eq!(records.len(), 2400);
        for chunk in records.chunks(3) {
            let t = chunk[0].txn();
            assert!(matches!(chunk[0], LogRecord::Begin(_)));
            assert!(matches!(chunk[2], LogRecord::Commit(_)));
            assert_eq!(chunk[1].txn(), t);
            assert_eq!(chunk[2].txn(), t);
        }
    }

    #[test]
    fn file_mirror_round_trips() {
        let path = temp_wal("mirror");
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append_batch(sample_records());
        }
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded, sample_records());
        // Appending to an existing file keeps prior records.
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin(TxnId(9)));
        }
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() + 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_wal("torn");
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append_batch(sample_records());
        }
        // Chop a few bytes off the end — a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() - 1);
        assert_eq!(loaded[..], sample_records()[..loaded.len()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_headerless_file_reads_as_base_zero() {
        let path = temp_wal("legacy");
        let mut buf = BytesMut::new();
        for r in &sample_records() {
            encode_record(&mut buf, r);
        }
        std::fs::write(&path, &buf).unwrap();
        let (base, records) = Wal::load_file_with_base(&path).unwrap();
        assert_eq!(base, 0);
        assert_eq!(records, sample_records());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decode_prefix_reports_consumed_bytes() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        let full = bytes.len();
        let (records, consumed) = Wal::decode_prefix(bytes.clone());
        assert_eq!(records.len(), sample_records().len());
        assert_eq!(consumed, full);
        let (records, consumed) = Wal::decode_prefix(bytes.slice(..full - 1));
        assert!(consumed < full - 1 || records.len() == sample_records().len() - 1);
    }

    #[test]
    fn txn_accessor() {
        for r in sample_records() {
            let t = r.txn();
            assert!(t == TxnId(1) || t == TxnId(2));
        }
    }

    #[test]
    fn durable_append_is_on_disk_when_it_returns() {
        let path = temp_wal("durable");
        let wal = Wal::with_file(&path).unwrap();
        wal.append_batch_durable(sample_records());
        // No drop, no join: the file must already hold every record.
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded, sample_records());
        assert_eq!(wal.durable_lsn(), sample_records().len() as u64);
        drop(wal);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_coalesces_fsyncs() {
        use std::sync::{Arc, Barrier};
        let path = temp_wal("group");
        const THREADS: u64 = 8;
        let wal = Arc::new(
            Wal::with_file_opts(
                &path,
                WalOptions {
                    group_window: Duration::from_millis(30),
                },
            )
            .unwrap(),
        );
        let barrier = Arc::new(Barrier::new(THREADS as usize));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let wal = Arc::clone(&wal);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let txn = TxnId(t + 1);
                wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.flushed_batches, THREADS);
        // The whole point of group commit: fewer fsyncs than commits.
        assert!(
            stats.flushes < THREADS,
            "expected coalescing, got {} flushes for {THREADS} commits",
            stats.flushes
        );
        assert!(stats.max_group >= 2, "no grouping observed: {stats:?}");
        drop(wal);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn safe_cut_respects_unresolved_transactions() {
        let wal = Wal::new();
        let t1 = TxnId(1);
        wal.append_batch([LogRecord::Begin(t1), LogRecord::Commit(t1)]);
        assert_eq!(wal.safe_cut(), 2);
        // An unresolved transaction pins the cut below its first record.
        let t2 = TxnId(2);
        wal.append_batch([LogRecord::Begin(t2)]);
        let t3 = TxnId(3);
        wal.append_batch([LogRecord::Begin(t3), LogRecord::Commit(t3)]);
        assert_eq!(wal.safe_cut(), 2);
        wal.append(LogRecord::Commit(t2));
        assert_eq!(wal.safe_cut(), wal.len() as u64);
    }

    #[test]
    fn truncation_bounds_resident_memory() {
        let wal = Wal::new();
        for t in 0..3000u64 {
            let txn = TxnId(t);
            wal.append_batch([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        let before = wal.resident_records();
        assert_eq!(before, 6000);
        let cut = wal.safe_cut();
        assert_eq!(cut, 6000);
        let dropped = wal.truncate_to(cut).unwrap();
        // Whole sealed segments and the covered open prefix are gone;
        // what remains is bounded by one segment.
        assert_eq!(dropped as usize, before - wal.resident_records());
        assert!(wal.resident_records() <= SEGMENT_RECORDS);
        assert_eq!(wal.base_lsn(), cut);
        assert_eq!(wal.len(), 6000, "LSN space is not rewound");
        assert!(wal.snapshot().is_empty());
        let stats = wal.stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.truncated_records, dropped);
        // The log keeps working after truncation.
        let txn = TxnId(9000);
        assert_eq!(
            wal.append_batch([LogRecord::Begin(txn), LogRecord::Commit(txn)]),
            6000
        );
        assert_eq!(wal.snapshot().len(), 2);
    }

    #[test]
    fn rotation_keeps_only_tail_with_base_header() {
        let path = temp_wal("rotate");
        let wal = Wal::with_file(&path).unwrap();
        for t in 0..50u64 {
            let txn = TxnId(t);
            wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        let cut = wal.safe_cut();
        assert_eq!(cut, 100);
        wal.truncate_to(cut).unwrap();
        // Post-truncation appends land in the rotated file.
        let txn = TxnId(77);
        wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        drop(wal);
        let (base, records) = Wal::load_file_with_base(&path).unwrap();
        assert_eq!(base, 100);
        assert_eq!(
            records,
            vec![LogRecord::Begin(TxnId(77)), LogRecord::Commit(TxnId(77))]
        );
        // Reopening appends after the rotated tail.
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin(TxnId(78)));
        }
        let (base, records) = Wal::load_file_with_base(&path).unwrap();
        assert_eq!(base, 100);
        assert_eq!(records.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_in_walks_segment_ranges() {
        let wal = Wal::new();
        for t in 0..2000u64 {
            wal.append(LogRecord::Begin(TxnId(t)));
        }
        let mid = wal.records_in(1500, 1503);
        assert_eq!(
            mid,
            vec![
                LogRecord::Begin(TxnId(1500)),
                LogRecord::Begin(TxnId(1501)),
                LogRecord::Begin(TxnId(1502)),
            ]
        );
        assert_eq!(wal.records_in(1999, 5000).len(), 1);
        assert_eq!(wal.records_in(5000, 6000).len(), 0);
    }
}
