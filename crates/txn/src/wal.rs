//! Sharded redo write-ahead log with group commit, async commit tickets,
//! and checkpoint truncation.
//!
//! The WAL serves two purposes in this reproduction:
//!
//! 1. Ordinary **data recovery**: replaying committed transactions rebuilds
//!    table contents.
//! 2. **Migration-tracker recovery** (paper §3.5, described there as future
//!    work — implemented here): `MigrationGranule` records are written
//!    inside migration transactions, so replay can mark exactly the
//!    granules whose migration committed as `[0 1]`/`migrated`.
//!
//! # Structure
//!
//! Records live in **segments**: a bounded open segment receives appends
//! under a short mutex, and full segments are sealed into immutable
//! `Arc<Segment>`s that readers can walk without copying. LSNs are record
//! offsets from the birth of the log and are assigned under the same mutex,
//! so batches stay contiguous and totally ordered no matter which shard
//! makes them durable.
//!
//! # Sharded durability
//!
//! Durability is decoupled from appending and **partitioned by
//! transaction**: a file-backed log keeps `N` shards
//! ([`WalOptions::shards`]), each with its own backing file, staging queue,
//! and flusher thread. A committing batch is encoded *outside* the lock,
//! assigned contiguous LSNs under it, and staged on the shard
//! [`shard_of`]`(txn)` hashes to, so independent committers fan out over
//! `N` fsync pipelines instead of serializing behind one.
//!
//! The commit barrier is a **merged durable horizon**: `durable_lsn` is
//! the minimum, over all shards, of the first LSN each shard still has
//! staged or in flight (and `next_lsn` when all are drained). It is
//! recomputed under the log mutex whenever a shard completes a flush, so
//! it is exactly the horizon a single-flusher log would expose — every
//! record below it is on disk in some shard file. Committers that need
//! durability ([`Wal::append_batch_durable`]) park on the barrier;
//! asynchronous committers ([`Wal::append_batch_enqueue`]) get a
//! [`CommitTicket`] back at enqueue time and may wait (or poll) later.
//! No fsync ever happens under the log lock.
//!
//! Acknowledgements deliberately wait on the **merged** horizon, never on
//! just the acknowledging transaction's own shard: asynchronous commits
//! release their locks at enqueue time, so a later transaction may read
//! data whose redo is still in flight on a *different* shard. Because
//! WAL order respects lock order, that dependency always has a lower
//! LSN — an ack at the merged horizon therefore transitively covers
//! every batch the acknowledged commit could depend on, and recovery can
//! treat the longest LSN-contiguous on-disk prefix as the durable log.
//!
//! # File format
//!
//! Shard 0 lives at the configured path, shard `i` at `<path>.s<i>`. Each
//! file starts with a `BFWAL4` header (base LSN, shard index, shard
//! count) and holds **frames**: `first_lsn:u64 nbytes:u32 payload`, where
//! the payload is one or more contiguous records starting at `first_lsn`.
//! Explicit frame LSNs are what let [`Wal::load_sharded`] merge the shard
//! files back into one totally ordered stream (duplicates from a crash
//! mid-rotation dedupe by LSN). Legacy single-file logs — `BFWAL1` flat
//! headers or headerless files — are still read, and are upgraded in
//! place to the framed format when opened for appending. The scanner
//! tolerates a torn tail frame from a crash mid-write.
//!
//! [`Wal::truncate_to`] supports checkpointing: once a caller has
//! persisted a snapshot of the committed prefix (see
//! `bullfrog-engine::checkpoint`), the prefix is dropped from memory at
//! segment granularity and every shard file is rotated to a fresh log
//! holding only that shard's slice of the tail. Rotation writes from the
//! in-memory record store — a superset of anything staged or in flight —
//! so a checkpoint racing a commit can never drop staged-but-unflushed
//! bytes past the cut.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_common::{fnv_hash_one, Error, Result, Row, RowId, TableId, TxnId, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};

use crate::sync_gate::{AckOutcome, SyncGate};
use crate::ts::TsOracle;

/// Identifies a granule within a migration for recovery purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GranuleKey {
    /// A bitmap-tracked granule: its dense ordinal.
    Ordinal(u64),
    /// A hashmap-tracked granule: the group key values.
    Group(Vec<Value>),
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start (informational).
    Begin(TxnId),
    /// Row inserted.
    Insert {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id assigned.
        rid: RowId,
        /// Inserted row (after-image).
        row: Row,
    },
    /// Row updated.
    Update {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id updated.
        rid: RowId,
        /// After-image.
        after: Row,
    },
    /// Row deleted.
    Delete {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id deleted.
        rid: RowId,
    },
    /// A migration granule was physically migrated inside `txn`; replay
    /// marks it migrated iff `txn` committed.
    MigrationGranule {
        /// Migrating transaction.
        txn: TxnId,
        /// Which migration statement (assigned by `bullfrog-core`).
        migration: u32,
        /// The granule.
        granule: GranuleKey,
    },
    /// Transaction committed — all earlier records of `txn` are durable.
    Commit(TxnId),
    /// Transaction committed at commit timestamp `ts` (Snapshot engine
    /// mode). The timestamp is drawn under the same mutex that assigns
    /// LSNs ([`Wal::append_commit_durable`]), so timestamp order and LSN
    /// order agree; replay treats it exactly like [`LogRecord::Commit`]
    /// and additionally resumes the timestamp oracle past `ts`.
    CommitTs {
        /// Committing transaction.
        txn: TxnId,
        /// Its global commit timestamp.
        ts: u64,
    },
    /// Transaction aborted (written for completeness; replay ignores the
    /// transaction's records either way).
    Abort(TxnId),
    /// The fencing epoch was raised to `epoch` (promotion, or adoption of
    /// a higher epoch observed from a peer). Written inside its own
    /// committed batch (`[Begin, Epoch, Commit]`) so it rides the normal
    /// committed-transaction replay and replication machinery; recovery
    /// takes the max over all committed `Epoch` records and the sidecar
    /// (see `epoch::EpochStore`), so the fence survives even a lost
    /// sidecar file.
    Epoch {
        /// Carrier transaction (allocated solely for this record).
        txn: TxnId,
        /// The epoch in force from this point of the log onward.
        epoch: u64,
    },
}

impl LogRecord {
    /// The transaction a record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin(t) | LogRecord::Commit(t) | LogRecord::Abort(t) => *t,
            LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::MigrationGranule { txn, .. }
            | LogRecord::CommitTs { txn, .. }
            | LogRecord::Epoch { txn, .. } => *txn,
        }
    }

    /// The commit timestamp, for commit records that carry one.
    pub fn commit_ts(&self) -> Option<u64> {
        match self {
            LogRecord::CommitTs { ts, .. } => Some(*ts),
            _ => None,
        }
    }

    /// True for the records that mark a transaction committed.
    pub fn is_commit(&self) -> bool {
        matches!(self, LogRecord::Commit(_) | LogRecord::CommitTs { .. })
    }

    /// True for the records that resolve a transaction.
    fn resolves(&self) -> bool {
        self.is_commit() || matches!(self, LogRecord::Abort(_))
    }
}

/// Records per segment; full open segments are sealed at this size, so
/// resident memory after a checkpoint is bounded by the tail length plus
/// one partially-covered segment.
const SEGMENT_RECORDS: usize = 1024;

/// Magic prefix of sharded/framed WAL files (base LSN + shard id header).
/// `BFWAL4` added the `Epoch` record tag (`BFWAL3` before it added
/// `CommitTs`); the frame layout is unchanged all the way back to
/// `BFWAL2`, but an older reader would reject a newer tag, so files that
/// may carry one must say so.
const FILE_MAGIC: [u8; 6] = *b"BFWAL4";
/// Previous framed magics: same layout, progressively fewer record tags.
/// Read directly; files opened for appending are re-stamped `BFWAL4` in
/// place (only the magic differs) before any new record lands.
const V3_MAGIC: [u8; 6] = *b"BFWAL3";
const V2_MAGIC: [u8; 6] = *b"BFWAL2";
/// Magic prefix of pre-sharding flat files (base LSN header, records
/// concatenated positionally). Read-supported, upgraded on open.
const LEGACY_MAGIC: [u8; 6] = *b"BFWAL1";
/// `BFWAL2` header: magic + base_lsn:u64 + shard:u32 + shards:u32.
const HEADER_LEN: usize = FILE_MAGIC.len() + 8 + 4 + 4;
/// `BFWAL1` header: magic + base_lsn:u64.
const LEGACY_HEADER_LEN: usize = LEGACY_MAGIC.len() + 8;
/// Frame header: first_lsn:u64 + nbytes:u32.
const FRAME_HEADER_LEN: usize = 8 + 4;
/// Rotation closes a run's frame once its payload reaches this size, so a
/// huge checkpoint tail can never build a frame whose length overflows
/// the u32 `nbytes` field (frames carry absolute LSNs, so splitting a
/// contiguous run across frames is free).
const MAX_ROTATION_FRAME: usize = 256 << 20;

/// Default durability shard count for file-backed logs.
pub const DEFAULT_WAL_SHARDS: usize = 4;

/// The durability shard a transaction's batches are staged on: a
/// deterministic FNV-1a hash of the transaction id, so a transaction's
/// records always land in the same shard file in LSN order.
pub fn shard_of(txn: TxnId, shards: usize) -> usize {
    (fnv_hash_one(&txn.0) % shards.max(1) as u64) as usize
}

/// Shard `i`'s backing file: the configured path for shard 0, `<path>.s<i>`
/// otherwise (so single-shard logs keep the legacy layout).
pub fn shard_file_path(path: &Path, shard: usize) -> PathBuf {
    if shard == 0 {
        path.to_path_buf()
    } else {
        let mut os = path.as_os_str().to_os_string();
        os.push(format!(".s{shard}"));
        PathBuf::from(os)
    }
}

/// Rotation scratch file for a shard file (unique per shard — the shard
/// suffix is part of the stem, not an extension swap).
fn rotate_tmp_path(spath: &Path) -> PathBuf {
    let mut os = spath.as_os_str().to_os_string();
    os.push(".rotate");
    PathBuf::from(os)
}

/// An immutable, sealed run of records starting at a fixed LSN. Shared out
/// under `Arc` so readers iterate without cloning records or holding the
/// log lock.
#[derive(Debug)]
pub struct Segment {
    base_lsn: u64,
    records: Vec<LogRecord>,
}

impl Segment {
    /// LSN of the first record in the segment.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// One past the LSN of the last record.
    pub fn end_lsn(&self) -> u64 {
        self.base_lsn + self.records.len() as u64
    }

    /// The records.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }
}

/// Tuning knobs for a file-backed log.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// How long a shard's flusher waits after the first staged batch
    /// before issuing the combined write+fsync, to let concurrent
    /// committers pile into the same group. Zero (the default) flushes as
    /// soon as the flusher is free — grouping then happens naturally while
    /// a previous fsync is in flight.
    pub group_window: Duration,
    /// Durability shards: backing files and flusher threads. Clamped to at
    /// least 1. More shards let independent committers overlap fsyncs.
    pub shards: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            group_window: Duration::ZERO,
            shards: DEFAULT_WAL_SHARDS,
        }
    }
}

/// Point-in-time view of the durability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalStatsSnapshot {
    /// Combined write+fsync calls issued.
    pub flushes: u64,
    /// Commit batches covered by those flushes.
    pub flushed_batches: u64,
    /// Bytes written.
    pub flushed_bytes: u64,
    /// Total time spent in write+fsync, microseconds.
    pub flush_micros: u64,
    /// Largest number of batches retired by a single flush.
    pub max_group: u64,
    /// Checkpoint truncations performed.
    pub checkpoints: u64,
    /// Records dropped from memory by truncation.
    pub truncated_records: u64,
}

impl WalStatsSnapshot {
    /// Mean batches per flush — the observed group-commit factor.
    pub fn mean_group(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flushed_batches as f64 / self.flushes as f64
        }
    }

    /// Mean write+fsync latency in microseconds.
    pub fn mean_flush_micros(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flush_micros as f64 / self.flushes as f64
        }
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "fsyncs={} batches={} group(mean/max)={:.2}/{} bytes={} flush_us(mean)={:.0} checkpoints={} truncated={}",
            self.flushes,
            self.flushed_batches,
            self.mean_group(),
            self.max_group,
            self.flushed_bytes,
            self.mean_flush_micros(),
            self.checkpoints,
            self.truncated_records,
        )
    }
}

/// Internal atomic flush counters, one set per shard. Checkpoint counters
/// are log-global and live on [`WalShared`].
#[derive(Debug, Default)]
struct WalStats {
    flushes: AtomicU64,
    flushed_batches: AtomicU64,
    flushed_bytes: AtomicU64,
    flush_micros: AtomicU64,
    max_group: AtomicU64,
}

impl WalStats {
    fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            flushed_batches: self.flushed_batches.load(Ordering::Relaxed),
            flushed_bytes: self.flushed_bytes.load(Ordering::Relaxed),
            flush_micros: self.flush_micros.load(Ordering::Relaxed),
            max_group: self.max_group.load(Ordering::Relaxed),
            checkpoints: 0,
            truncated_records: 0,
        }
    }
}

/// One durability shard's staging state (under the log mutex). A batch is
/// one `(first_lsn, encoded payload)` entry; the flusher turns each into
/// one frame.
#[derive(Default)]
struct ShardPending {
    /// Encoded-but-unflushed batches, in LSN order.
    queue: Vec<(u64, Bytes)>,
    /// Batches in `queue`.
    queued_batches: u64,
    /// When the oldest staged batch arrived (drives the group window).
    pending_since: Option<Instant>,
    /// First LSN of the batch group currently being written+fsynced, if
    /// any. Pins the merged horizon until the flush completes.
    inflight_first: Option<u64>,
}

impl ShardPending {
    fn reset(&mut self) {
        self.queue.clear();
        self.queued_batches = 0;
        self.pending_since = None;
        self.inflight_first = None;
    }

    /// First LSN this shard has not yet made durable, if any.
    fn frontier(&self) -> Option<u64> {
        match (self.inflight_first, self.queue.first()) {
            (Some(a), Some((b, _))) => Some(a.min(*b)),
            (Some(a), None) => Some(a),
            (None, Some((b, _))) => Some(*b),
            (None, None) => None,
        }
    }
}

/// Log state under the (short) log mutex. Appenders extend the open
/// segment and stage pre-encoded bytes on their shard's queue; nothing
/// here does IO.
struct WalCore {
    /// Sealed, immutable segments in LSN order, all below `open_base`.
    sealed: Vec<Arc<Segment>>,
    /// The open segment's records; `open_base` is the LSN of `open[0]`.
    open: Vec<LogRecord>,
    open_base: u64,
    /// First retained LSN — records below it were checkpointed away.
    base_lsn: u64,
    /// Next LSN to assign (== `open_base + open.len()`).
    next_lsn: u64,
    /// Per-shard staging queues (file-backed logs only stage into them).
    shards: Vec<ShardPending>,
    /// Set by `Drop`; the flushers drain and exit.
    shutdown: bool,
}

impl WalCore {
    fn push(&mut self, record: LogRecord) {
        self.open.push(record);
        self.next_lsn += 1;
        if self.open.len() >= SEGMENT_RECORDS {
            let records = std::mem::take(&mut self.open);
            self.sealed.push(Arc::new(Segment {
                base_lsn: self.open_base,
                records,
            }));
            self.open_base = self.next_lsn;
        }
    }

    /// Visits every retained record with its LSN, in LSN order.
    fn for_each(&self, mut f: impl FnMut(u64, &LogRecord)) {
        for seg in &self.sealed {
            for (i, r) in seg.records.iter().enumerate() {
                let lsn = seg.base_lsn + i as u64;
                if lsn >= self.base_lsn {
                    f(lsn, r);
                }
            }
        }
        for (i, r) in self.open.iter().enumerate() {
            let lsn = self.open_base + i as u64;
            if lsn >= self.base_lsn {
                f(lsn, r);
            }
        }
    }
}

/// State shared between the log handle, its flusher threads, and any
/// outstanding [`CommitTicket`]s.
struct WalShared {
    core: Mutex<WalCore>,
    /// Per-shard: signaled when that shard's queue gains a batch or
    /// shutdown is requested. All condvars wait on `core`.
    shard_work: Vec<Condvar>,
    /// The commit barrier: signaled when `durable_lsn` or any per-shard
    /// frontier advances.
    durable: Condvar,
    /// The merged durable horizon: all records with LSN below this are on
    /// disk (in whichever shard file owns them). Every acknowledgement —
    /// `append_batch_durable` and ticket waits alike — parks on this, not
    /// on the acknowledging shard's own frontier: with locks released at
    /// enqueue time a commit may depend on an earlier-LSN batch staged on
    /// a *different* shard, and an ack must cover that dependency too.
    durable_lsn: AtomicU64,
    /// Bumped by rotation so an in-flight flush of pre-rotation bytes is
    /// discarded instead of being appended to the new files.
    file_epoch: AtomicU64,
    /// Set when a flush failed; waiters panic rather than hang.
    poisoned: AtomicBool,
    /// Per-shard append handles (file-backed logs only). A flusher never
    /// holds its file lock while waiting for `core`; rotation takes every
    /// file lock (index order) and then `core`.
    files: Vec<Mutex<Option<std::fs::File>>>,
    path: Option<PathBuf>,
    file_backed: bool,
    group_window: Duration,
    /// Per-shard flush counters.
    shard_stats: Vec<WalStats>,
    /// Checkpoint truncations performed (log-global).
    checkpoints: AtomicU64,
    /// Records dropped from memory by truncation (log-global).
    truncated_records: AtomicU64,
    /// Registered retain horizons, by consumer id: a tailing log reader
    /// (e.g. a replication sender) records the first LSN it still needs,
    /// and [`Wal::truncate_to`] never cuts past the minimum of these.
    /// Lock order: `retain` before any file lock, before `core`.
    retain: Mutex<HashMap<u64, u64>>,
    /// Next consumer id to hand out.
    retain_next: AtomicU64,
    /// Commit-timestamp oracle: timestamps are drawn while `core` is
    /// held, which is exactly what keeps timestamp order and LSN order
    /// identical (the oracle's own lock nests inside `core` and is never
    /// taken the other way around).
    oracle: Arc<TsOracle>,
    /// Synchronous-replication gate: acked commit paths compose this on
    /// top of the merged durable horizon (local durability first, then
    /// the replica quorum). A no-op until `SET SYNC_REPLICAS` arms it.
    sync: Arc<SyncGate>,
    /// Latency histograms, attached once by the owning database (see
    /// [`Wal::attach_obs`]). Unattached logs skip recording entirely.
    obs: std::sync::OnceLock<WalObs>,
}

/// The WAL's slice of the observability registry: append staging, the
/// combined write+fsync, and the group-commit durability wait. All in
/// microseconds.
struct WalObs {
    append: Arc<bullfrog_obs::Histogram>,
    flush: Arc<bullfrog_obs::Histogram>,
    commit_wait: Arc<bullfrog_obs::Histogram>,
}

/// Recomputes the merged durable horizon from the per-shard frontiers and
/// publishes it. Must be called with the `core` lock held — LSN
/// assignment and staging are atomic under it, so the computed minimum
/// can never miss a batch that exists but is not yet visible.
fn advance_durable(core: &WalCore, shared: &WalShared) {
    let mut horizon = core.next_lsn;
    for sp in &core.shards {
        // This shard's frontier: its oldest unflushed batch, or the log
        // head if it has nothing outstanding. Monotonic because LSNs only
        // grow and staging happens under the same lock.
        horizon = horizon.min(sp.frontier().unwrap_or(core.next_lsn));
    }
    if shared.durable_lsn.load(Ordering::Acquire) < horizon {
        shared.durable_lsn.store(horizon, Ordering::Release);
        shared.durable.notify_all();
    }
}

/// Blocks until the merged horizon covers `lsn`. Free function so
/// [`CommitTicket`]s can wait without borrowing the [`Wal`] handle.
fn wait_durable_shared(shared: &WalShared, lsn: u64) {
    if !shared.file_backed || shared.durable_lsn.load(Ordering::Acquire) >= lsn {
        return;
    }
    // Only the slow path records: the already-durable fast path would
    // flood the histogram with zero-length "waits" that are really just
    // the load above.
    let started = Instant::now();
    let mut core = shared.core.lock();
    while shared.durable_lsn.load(Ordering::Acquire) < lsn {
        if shared.poisoned.load(Ordering::Acquire) {
            panic!("WAL flusher failed; cannot guarantee durability");
        }
        shared.durable.wait(&mut core);
    }
    drop(core);
    if let Some(o) = shared.obs.get() {
        o.commit_wait.record_micros(started.elapsed());
    }
}

/// An acknowledgement handle from an asynchronous commit
/// ([`Wal::append_batch_enqueue`]): the batch is in the log and will be
/// flushed by its shard, but may not be durable yet. Detached from the
/// `Wal` handle, so it can outlive it — dropping the `Wal` drains every
/// shard, at which point all tickets are trivially durable.
#[derive(Clone)]
pub struct CommitTicket {
    /// `None` for in-memory logs (and read-only commits): durability is
    /// immediate by definition.
    shared: Option<Arc<WalShared>>,
    lsn: u64,
}

impl CommitTicket {
    /// The LSN the merged durable horizon must reach for this commit to
    /// be durable (one past the batch's last record).
    pub fn wait_lsn(&self) -> u64 {
        self.lsn
    }

    /// True once the merged horizon covers the batch. Never blocks.
    pub fn is_durable(&self) -> bool {
        match &self.shared {
            None => true,
            Some(s) => s.durable_lsn.load(Ordering::Acquire) >= self.lsn,
        }
    }

    /// Blocks until the merged durable horizon covers the batch — i.e.
    /// this commit *and every batch ordered before it on any shard* are
    /// on disk. The cross-shard wait is what makes the acknowledgement
    /// sound: an earlier enqueued commit whose locks were already
    /// released may be this one's dependency, and it must not be lost
    /// while this one survives. Panics if a flusher died of an IO error —
    /// same contract as [`Wal::wait_durable`].
    pub fn wait(&self) {
        if let Some(s) = &self.shared {
            wait_durable_shared(s, self.lsn);
        }
    }

    /// As [`CommitTicket::wait`], then additionally waits on the
    /// [`SyncGate`]: local durability first (merged horizon), replica
    /// quorum second. Returns how the commit may be acknowledged — a
    /// [`AckOutcome::Fenced`] commit is durable locally but must be
    /// reported to the client as a failure, because a promoted peer may
    /// never have seen it.
    pub fn wait_acked(&self) -> AckOutcome {
        match &self.shared {
            None => AckOutcome::Synced,
            Some(s) => {
                wait_durable_shared(s, self.lsn);
                s.sync.wait_acked(self.lsn)
            }
        }
    }
}

impl std::fmt::Debug for CommitTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitTicket")
            .field("wait_lsn", &self.lsn)
            .field("durable", &self.is_durable())
            .finish()
    }
}

/// The write-ahead log: an append-only, atomically-batched, segmented
/// record list, optionally made durable across N shard files by
/// per-shard group-commit flusher threads.
pub struct Wal {
    shared: Arc<WalShared>,
    flushers: Vec<std::thread::JoinHandle<()>>,
}

impl Wal {
    /// An in-memory-only log: appends are visible immediately and
    /// durability waits return at once.
    pub fn new() -> Self {
        Wal {
            shared: Arc::new(Self::make_shared(None, WalOptions::default(), 0)),
            flushers: Vec::new(),
        }
    }

    /// A log mirrored to shard files rooted at `path` (created or appended
    /// to) with default options. Existing records in the files are **not**
    /// loaded into memory — use [`Wal::load_sharded`] first and replay
    /// them, as recovery does — but the LSN frontier resumes past them, so
    /// new appends never reuse an LSN already on disk.
    pub fn with_file(path: impl AsRef<Path>) -> Result<Self> {
        Self::with_file_opts(path, WalOptions::default())
    }

    /// As [`Wal::with_file`] with explicit [`WalOptions`].
    pub fn with_file_opts(path: impl AsRef<Path>, opts: WalOptions) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let nshards = opts.shards.max(1);
        let mut files = Vec::with_capacity(nshards);
        let mut next_lsn = 0u64;
        for i in 0..nshards {
            let (file, end) = open_shard(&shard_file_path(&path, i), i as u32, nshards as u32)?;
            next_lsn = next_lsn.max(end);
            files.push(file);
        }
        // A previous run may have used more shards; their files still
        // bound the LSN frontier (and recovery still merges them).
        let mut extra = nshards;
        loop {
            let spath = shard_file_path(&path, extra);
            if !spath.exists() {
                break;
            }
            let (base, frames) = load_shard_file(&spath)?;
            let end = frames.last().map(|(l, _)| l + 1).unwrap_or(base);
            next_lsn = next_lsn.max(end);
            extra += 1;
        }
        let shared = Arc::new(Self::make_shared(Some((path, files)), opts, next_lsn));
        let mut flushers = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let shared = Arc::clone(&shared);
            flushers.push(
                std::thread::Builder::new()
                    .name(format!("bullfrog-wal-flush-{i}"))
                    .spawn(move || flusher_loop(&shared, i))
                    .map_err(|e| Error::Wal(format!("spawn wal flusher: {e}")))?,
            );
        }
        Ok(Wal { shared, flushers })
    }

    fn make_shared(
        file: Option<(PathBuf, Vec<std::fs::File>)>,
        opts: WalOptions,
        start_lsn: u64,
    ) -> WalShared {
        let nshards = opts.shards.max(1);
        let (path, files) = match file {
            Some((p, fs)) => (
                Some(p),
                fs.into_iter().map(|f| Mutex::new(Some(f))).collect(),
            ),
            None => (None, Vec::new()),
        };
        let file_backed = path.is_some();
        WalShared {
            core: Mutex::new(WalCore {
                sealed: Vec::new(),
                open: Vec::new(),
                open_base: start_lsn,
                base_lsn: start_lsn,
                next_lsn: start_lsn,
                shards: (0..nshards).map(|_| ShardPending::default()).collect(),
                shutdown: false,
            }),
            shard_work: (0..nshards).map(|_| Condvar::new()).collect(),
            durable: Condvar::new(),
            durable_lsn: AtomicU64::new(start_lsn),
            file_epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            files,
            path,
            file_backed,
            group_window: opts.group_window,
            shard_stats: (0..nshards).map(|_| WalStats::default()).collect(),
            checkpoints: AtomicU64::new(0),
            truncated_records: AtomicU64::new(0),
            retain: Mutex::new(HashMap::new()),
            retain_next: AtomicU64::new(0),
            oracle: Arc::new(TsOracle::new()),
            sync: Arc::new(SyncGate::default()),
            obs: std::sync::OnceLock::new(),
        }
    }

    /// Reads every shard file rooted at `path` and merges them into one
    /// LSN-ordered record stream (without LSNs; see [`Wal::load_sharded`]
    /// for the LSN-tagged form). Torn tail frames are tolerated; crashes
    /// mid-rotation may leave a record in two files, which dedupes by LSN.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Vec<LogRecord>> {
        Ok(Self::load_sharded(path)?
            .into_iter()
            .map(|(_, r)| r)
            .collect())
    }

    /// Reads **one** WAL file (not its sibling shards), returning the base
    /// LSN from its header and its records in LSN order. Kept for
    /// single-shard logs and legacy flat files; sharded recovery wants
    /// [`Wal::load_sharded`].
    pub fn load_file_with_base(path: impl AsRef<Path>) -> Result<(u64, Vec<LogRecord>)> {
        let (base, frames) = load_shard_file(path.as_ref())?;
        Ok((base, frames.into_iter().map(|(_, r)| r).collect()))
    }

    /// Reads every shard file rooted at `path` — `path` itself plus each
    /// existing `<path>.s<i>` — and merges them into one LSN-ordered
    /// stream. Duplicated LSNs (possible only from a crash between
    /// per-shard rotations) keep one copy; the copies are byte-identical
    /// because rotation rewrites the same records at the same LSNs.
    pub fn load_sharded(path: impl AsRef<Path>) -> Result<Vec<(u64, LogRecord)>> {
        let path = path.as_ref();
        let mut merged: BTreeMap<u64, LogRecord> = BTreeMap::new();
        for (lsn, r) in load_shard_file(path)?.1 {
            merged.insert(lsn, r);
        }
        let mut i = 1usize;
        loop {
            let spath = shard_file_path(path, i);
            if !spath.exists() {
                break;
            }
            for (lsn, r) in load_shard_file(&spath)?.1 {
                merged.insert(lsn, r);
            }
            i += 1;
        }
        Ok(merged.into_iter().collect())
    }

    /// Decodes records until the bytes run out or a record is torn;
    /// returns the records and how many bytes were consumed cleanly.
    pub fn decode_prefix(bytes: Bytes) -> (Vec<LogRecord>, usize) {
        let total = bytes.len();
        let mut buf = bytes;
        let mut out = Vec::new();
        let mut consumed = 0usize;
        loop {
            if !buf.has_remaining() {
                break;
            }
            let before = buf.remaining();
            match decode_record(&mut buf) {
                Ok(r) => {
                    out.push(r);
                    consumed += before - buf.remaining();
                }
                Err(_) => break,
            }
        }
        debug_assert!(consumed <= total);
        (out, consumed)
    }

    /// Appends a batch atomically (a committing transaction appends its
    /// redo records followed by its `Commit` in one call, so no reader can
    /// observe a commit record without its payload). Returns the LSN of
    /// the first appended record without waiting for durability; use
    /// [`Wal::append_batch_durable`] on the commit path.
    pub fn append_batch(&self, batch: impl IntoIterator<Item = LogRecord>) -> u64 {
        self.append_batch_inner(batch).0
    }

    /// Appends a batch and blocks until the merged durable horizon covers
    /// it — this commit and everything ordered before it, on every shard,
    /// is then on disk. Waiting on the merged horizon (not just the
    /// batch's own shard) is required for correctness, not politeness:
    /// asynchronous commits release locks at enqueue time, so this
    /// transaction may have read rows whose redo is still in flight on a
    /// neighbour shard at a lower LSN, and acknowledging this commit
    /// while that dependency can still be lost would let a crash recover
    /// a durable `Commit` whose inputs never existed. The shards still
    /// flush concurrently, so throughput keeps the fan-out win; only the
    /// ack observes the slowest outstanding shard. In-memory logs return
    /// immediately. Returns the LSN of the first record.
    pub fn append_batch_durable(&self, batch: impl IntoIterator<Item = LogRecord>) -> u64 {
        let (first, end, _shard) = self.append_batch_inner(batch);
        wait_durable_shared(&self.shared, end);
        first
    }

    /// As [`Wal::append_batch_durable`], then composes the [`SyncGate`]:
    /// the returned outcome says whether the commit reached the required
    /// replica quorum, was acknowledged degraded, or must be refused
    /// because this node is fenced. Identical to `append_batch_durable`
    /// when no sync replication is configured.
    pub fn append_batch_acked(
        &self,
        batch: impl IntoIterator<Item = LogRecord>,
    ) -> (u64, AckOutcome) {
        let (first, end, _shard) = self.append_batch_inner(batch);
        wait_durable_shared(&self.shared, end);
        (first, self.shared.sync.wait_acked(end))
    }

    /// Appends a batch and returns an acknowledgement ticket **at enqueue
    /// time**: the caller keeps running while the shard flusher makes the
    /// batch durable in the background. [`CommitTicket::wait`] parks on
    /// the same barrier `append_batch_durable` uses.
    pub fn append_batch_enqueue(&self, batch: impl IntoIterator<Item = LogRecord>) -> CommitTicket {
        let (_, end, _shard) = self.append_batch_inner(batch);
        CommitTicket {
            shared: self.shared.file_backed.then(|| Arc::clone(&self.shared)),
            lsn: end,
        }
    }

    /// The commit-timestamp oracle backing [`Wal::append_commit_durable`]
    /// (snapshot engines also read it for begin-snapshot and GC horizons).
    pub fn oracle(&self) -> Arc<TsOracle> {
        Arc::clone(&self.shared.oracle)
    }

    /// Appends `batch` plus a [`LogRecord::CommitTs`] for `txn`, drawing
    /// the commit timestamp **under the core mutex** so that two commits'
    /// timestamps compare exactly like their LSNs, then blocks until the
    /// merged durable horizon covers the batch. Returns `(first_lsn, ts)`.
    ///
    /// The caller owns finishing the timestamp: after installing its
    /// versions it must call [`TsOracle::finish`], or the stable horizon
    /// (and every future snapshot) stalls behind this commit forever.
    pub fn append_commit_durable(&self, batch: Vec<LogRecord>, txn: TxnId) -> (u64, u64) {
        let (first, end, ts) = self.append_commit_inner(batch, txn);
        wait_durable_shared(&self.shared, end);
        (first, ts)
    }

    /// As [`Wal::append_commit_durable`], then composes the [`SyncGate`]
    /// (see [`Wal::append_batch_acked`]). The caller still owes a
    /// [`TsOracle::finish`] whatever the outcome — a fenced commit is in
    /// the log and must not stall the stable horizon.
    pub fn append_commit_acked(&self, batch: Vec<LogRecord>, txn: TxnId) -> (u64, u64, AckOutcome) {
        let (first, end, ts) = self.append_commit_inner(batch, txn);
        wait_durable_shared(&self.shared, end);
        (first, ts, self.shared.sync.wait_acked(end))
    }

    /// The synchronous-replication gate shared with every ticket minted
    /// from this log. Replication senders feed it acks; HA loops feed it
    /// lease/fence state; sessions configure it via `SET SYNC_REPLICAS`.
    pub fn sync_gate(&self) -> Arc<SyncGate> {
        Arc::clone(&self.shared.sync)
    }

    /// Attaches latency histograms from `reg`: `wal.append_us` (staging
    /// under the log mutex), `wal.flush_us` (combined write+fsync per
    /// flusher wakeup), and `wal.commit_wait_us` (time a committer
    /// blocks on the merged durable horizon — the group-commit wait).
    /// Idempotent; the first registry wins.
    pub fn attach_obs(&self, reg: &bullfrog_obs::Registry) {
        let _ = self.shared.obs.set(WalObs {
            append: reg.histogram("wal.append_us"),
            flush: reg.histogram("wal.flush_us"),
            commit_wait: reg.histogram("wal.commit_wait_us"),
        });
    }

    /// As [`Wal::append_commit_durable`], but acknowledged at enqueue
    /// time with a [`CommitTicket`] (async commit). The caller still owes
    /// a [`TsOracle::finish`] once its versions are installed.
    pub fn append_commit_enqueue(&self, batch: Vec<LogRecord>, txn: TxnId) -> (CommitTicket, u64) {
        let (_, end, ts) = self.append_commit_inner(batch, txn);
        let ticket = CommitTicket {
            shared: self.shared.file_backed.then(|| Arc::clone(&self.shared)),
            lsn: end,
        };
        (ticket, ts)
    }

    /// Returns `(first_lsn, end_lsn, commit_ts)`. The batch body is
    /// encoded outside the lock (as in [`Wal::append_batch_inner`]); only
    /// the fixed-size `CommitTs` record is encoded inside it, because its
    /// timestamp does not exist until drawn.
    fn append_commit_inner(&self, batch: Vec<LogRecord>, txn: TxnId) -> (u64, u64, u64) {
        let started = Instant::now();
        let file_backed = self.shared.file_backed;
        let mut buf = BytesMut::new();
        if file_backed {
            for r in &batch {
                encode_record(&mut buf, r);
            }
        }
        let owner = batch.first().map_or(txn, LogRecord::txn);
        let shard = shard_of(owner, self.shared.shard_work.len());
        let mut core = self.shared.core.lock();
        let ts = self.shared.oracle.draw();
        let commit = LogRecord::CommitTs { txn, ts };
        let first = core.next_lsn;
        for r in batch {
            core.push(r);
        }
        if file_backed {
            encode_record(&mut buf, &commit);
        }
        core.push(commit);
        let end = core.next_lsn;
        if file_backed {
            let bytes = buf.freeze();
            let sp = &mut core.shards[shard];
            if sp.queue.is_empty() {
                sp.pending_since = Some(Instant::now());
            }
            sp.queue.push((first, bytes));
            sp.queued_batches += 1;
            self.shared.shard_work[shard].notify_one();
        }
        drop(core);
        if let Some(o) = self.shared.obs.get() {
            o.append.record_micros(started.elapsed());
        }
        (first, end, ts)
    }

    /// A ticket that is already durable (read-only commits, in-memory
    /// logs): carries the current horizon and never blocks.
    pub fn durable_ticket(&self) -> CommitTicket {
        CommitTicket {
            shared: None,
            lsn: self.durable_lsn(),
        }
    }

    /// Returns `(first_lsn, end_lsn, owning shard)` of the appended batch.
    fn append_batch_inner(&self, batch: impl IntoIterator<Item = LogRecord>) -> (u64, u64, usize) {
        let started = Instant::now();
        let records: Vec<LogRecord> = batch.into_iter().collect();
        // Encode (and pick the shard) outside the lock; appenders pay
        // serialization in parallel and the critical section is push +
        // queue staging.
        let (encoded, shard) = if self.shared.file_backed && !records.is_empty() {
            let mut buf = BytesMut::new();
            for r in &records {
                encode_record(&mut buf, r);
            }
            let shard = shard_of(records[0].txn(), self.shared.shard_work.len());
            (Some(buf.freeze()), shard)
        } else {
            (None, 0)
        };
        let mut core = self.shared.core.lock();
        let first = core.next_lsn;
        for r in records {
            core.push(r);
        }
        let end = core.next_lsn;
        if let Some(bytes) = encoded {
            let sp = &mut core.shards[shard];
            if sp.queue.is_empty() {
                sp.pending_since = Some(Instant::now());
            }
            sp.queue.push((first, bytes));
            sp.queued_batches += 1;
            self.shared.shard_work[shard].notify_one();
        }
        drop(core);
        if let Some(o) = self.shared.obs.get() {
            o.append.record_micros(started.elapsed());
        }
        (first, end, shard)
    }

    /// Appends one record.
    pub fn append(&self, record: LogRecord) -> u64 {
        self.append_batch([record])
    }

    /// Blocks until every record below `lsn` is on disk (no-op for
    /// in-memory logs). Panics if a flusher died of an IO error —
    /// acknowledging a commit without durability would be a lie.
    pub fn wait_durable(&self, lsn: u64) {
        wait_durable_shared(&self.shared, lsn);
    }

    /// Forces everything appended so far to disk and waits for it.
    pub fn sync(&self) {
        let lsn = self.shared.core.lock().next_lsn;
        for cv in &self.shared.shard_work {
            cv.notify_one();
        }
        self.wait_durable(lsn);
    }

    /// The merged durability horizon: every record below this LSN is on
    /// disk. Always 0 for in-memory logs that never reopened a file.
    pub fn durable_lsn(&self) -> u64 {
        self.shared.durable_lsn.load(Ordering::Acquire)
    }

    /// Total records ever appended — the end of the LSN space. Not
    /// reduced by checkpoint truncation; resumes past on-disk records
    /// when a log is reopened.
    pub fn len(&self) -> usize {
        self.shared.core.lock().next_lsn as usize
    }

    /// True when no records were ever written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First retained LSN (0 until a checkpoint truncates the log).
    pub fn base_lsn(&self) -> u64 {
        self.shared.core.lock().base_lsn
    }

    /// Records currently resident in memory (tail + partially-covered
    /// segments). Bounded after checkpoints, unlike `len()`.
    pub fn resident_records(&self) -> usize {
        let core = self.shared.core.lock();
        core.sealed.iter().map(|s| s.records.len()).sum::<usize>() + core.open.len()
    }

    /// Number of durability shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shard_work.len()
    }

    /// Aggregated durability counters across every shard.
    pub fn stats(&self) -> WalStatsSnapshot {
        let mut agg = WalStatsSnapshot::default();
        for s in &self.shared.shard_stats {
            let snap = s.snapshot();
            agg.flushes += snap.flushes;
            agg.flushed_batches += snap.flushed_batches;
            agg.flushed_bytes += snap.flushed_bytes;
            agg.flush_micros += snap.flush_micros;
            agg.max_group = agg.max_group.max(snap.max_group);
        }
        agg.checkpoints = self.shared.checkpoints.load(Ordering::Relaxed);
        agg.truncated_records = self.shared.truncated_records.load(Ordering::Relaxed);
        agg
    }

    /// Per-shard flush counters, indexed by shard. The checkpoint
    /// counters are log-global and appear only in [`Wal::stats`].
    pub fn shard_stats(&self) -> Vec<WalStatsSnapshot> {
        self.shared
            .shard_stats
            .iter()
            .map(|s| s.snapshot())
            .collect()
    }

    /// Snapshot of the retained log (recovery input).
    pub fn snapshot(&self) -> Vec<LogRecord> {
        let core = self.shared.core.lock();
        self.collect_range(&core, core.base_lsn, core.next_lsn)
    }

    /// Clones the retained records with LSN in `[lo, hi)` (checkpoint
    /// input). Walks the segments; does not copy the rest of the log.
    pub fn records_in(&self, lo: u64, hi: u64) -> Vec<LogRecord> {
        let core = self.shared.core.lock();
        self.collect_range(&core, lo.max(core.base_lsn), hi.min(core.next_lsn))
    }

    fn collect_range(&self, core: &WalCore, lo: u64, hi: u64) -> Vec<LogRecord> {
        let mut out = Vec::new();
        core.for_each(|lsn, r| {
            if lsn >= lo && lsn < hi {
                out.push(r.clone());
            }
        });
        out
    }

    /// The end of the LSN space (the next LSN to be assigned). Unlike
    /// [`Wal::durable_lsn`] this moves at append time, so it is the right
    /// sample point for "everything logged after this instant".
    pub fn frontier(&self) -> u64 {
        self.shared.core.lock().next_lsn
    }

    /// As [`Wal::records_in`], but tagged with each record's LSN — the
    /// form a log shipper needs, since a reopened log's retained range
    /// does not start at 0 and recovery holes make the stream non-dense.
    pub fn records_with_lsns(&self, lo: u64, hi: u64) -> Vec<(u64, LogRecord)> {
        let core = self.shared.core.lock();
        let (lo, hi) = (lo.max(core.base_lsn), hi.min(core.next_lsn));
        let mut out = Vec::new();
        core.for_each(|lsn, r| {
            if lsn >= lo && lsn < hi {
                out.push((lsn, r.clone()));
            }
        });
        out
    }

    /// Durable-tail iteration for replication: up to `max` retained
    /// records with LSN in `[from, durable_lsn)`, plus the merged durable
    /// horizon itself. Only records below the horizon are ever returned,
    /// so a consumer can never observe a commit the log would refuse to
    /// acknowledge (an unflushed batch on some shard below it).
    pub fn durable_records_from(&self, from: u64, max: usize) -> (Vec<(u64, LogRecord)>, u64) {
        let core = self.shared.core.lock();
        let durable = self.shared.durable_lsn.load(Ordering::Acquire);
        let lo = from.max(core.base_lsn);
        let mut out = Vec::new();
        core.for_each(|lsn, r| {
            if lsn >= lo && lsn < durable && out.len() < max {
                out.push((lsn, r.clone()));
            }
        });
        (out, durable)
    }

    /// Blocks until the merged horizon reaches `lsn` or `timeout`
    /// elapses; returns the horizon either way. The tailing-reader
    /// variant of [`Wal::wait_durable`] — a sender with nothing to ship
    /// parks here instead of spinning.
    pub fn wait_durable_timeout(&self, lsn: u64, timeout: Duration) -> u64 {
        if !self.shared.file_backed {
            return self.shared.durable_lsn.load(Ordering::Acquire);
        }
        let deadline = Instant::now() + timeout;
        let mut core = self.shared.core.lock();
        loop {
            let durable = self.shared.durable_lsn.load(Ordering::Acquire);
            if durable >= lsn || self.shared.poisoned.load(Ordering::Acquire) {
                return durable;
            }
            let now = Instant::now();
            if now >= deadline {
                return durable;
            }
            self.shared.durable.wait_for(&mut core, deadline - now);
        }
    }

    // --- Retain horizons ---------------------------------------------------

    /// Registers a log consumer that still needs every record at or above
    /// `at`: [`Wal::truncate_to`] will not cut past it. Returns the
    /// consumer id and the granted horizon — `at` clamped up to the
    /// current base LSN. A caller that asked for less than the base must
    /// treat the gap as already gone (for replication: fetch a snapshot).
    pub fn register_retain(&self, at: u64) -> (u64, u64) {
        let mut retain = self.shared.retain.lock();
        let base = self.shared.core.lock().base_lsn;
        let granted = at.max(base);
        let id = self.shared.retain_next.fetch_add(1, Ordering::Relaxed);
        retain.insert(id, granted);
        (id, granted)
    }

    /// Moves consumer `id`'s horizon forward to `lsn` (never backward).
    pub fn advance_retain(&self, id: u64, lsn: u64) {
        let mut retain = self.shared.retain.lock();
        if let Some(h) = retain.get_mut(&id) {
            *h = (*h).max(lsn);
        }
    }

    /// Drops consumer `id`'s horizon; the log may truncate past it again.
    pub fn release_retain(&self, id: u64) {
        self.shared.retain.lock().remove(&id);
    }

    /// The lowest registered retain horizon, if any consumer is live.
    pub fn retain_floor(&self) -> Option<u64> {
        self.shared.retain.lock().values().min().copied()
    }

    /// Serializes the retained log to its binary image. Sealed segments
    /// are shared out of the lock; only the open segment is cloned.
    pub fn encode_all(&self) -> Bytes {
        let (sealed, open, base) = {
            let core = self.shared.core.lock();
            (core.sealed.clone(), core.open.clone(), core.base_lsn)
        };
        let mut buf = BytesMut::new();
        for seg in &sealed {
            for (i, r) in seg.records.iter().enumerate() {
                if seg.base_lsn + i as u64 >= base {
                    encode_record(&mut buf, r);
                }
            }
        }
        for r in &open {
            encode_record(&mut buf, r);
        }
        buf.freeze()
    }

    /// Parses a binary image produced by [`Wal::encode_all`].
    pub fn decode_all(mut bytes: Bytes) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        while bytes.has_remaining() {
            out.push(decode_record(&mut bytes)?);
        }
        Ok(out)
    }

    /// The largest transaction-interval-safe cut: no transaction has
    /// records both below and at-or-above the returned LSN (transactions
    /// without a `Commit`/`Abort` yet may still append, so they pin the
    /// cut below their first record). Found by a decreasing fixpoint from
    /// the log end; never below the current base LSN.
    pub fn safe_cut(&self) -> u64 {
        let core = self.shared.core.lock();
        // (first record LSN, last record LSN, resolved?) per txn.
        let mut spans: HashMap<TxnId, (u64, u64, bool)> = HashMap::new();
        core.for_each(|lsn, r| {
            let e = spans.entry(r.txn()).or_insert((lsn, lsn, false));
            e.1 = lsn;
            e.2 |= r.resolves();
        });
        let mut cut = core.next_lsn;
        loop {
            let mut moved = false;
            for (first, last, resolved) in spans.values() {
                let hi = if *resolved { *last } else { u64::MAX };
                if *first < cut && cut <= hi {
                    cut = *first;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        cut.max(core.base_lsn)
    }

    /// Truncates the log at `cut` (clamped to a valid range): sealed
    /// segments wholly below `cut` and the covered prefix of the open
    /// segment are dropped from memory, and every shard file of a
    /// file-backed log is rotated to a fresh file holding only that
    /// shard's records at or above `cut`. The rotation images are built
    /// from the in-memory record store — a superset of anything staged or
    /// in flight — and the rotation itself fsyncs, so the whole tail
    /// becomes durable and no staged-but-unflushed batch can be lost to a
    /// racing checkpoint. Returns the records dropped.
    ///
    /// The caller is responsible for having persisted a checkpoint image
    /// covering everything below `cut` first, and for picking a
    /// transaction-safe `cut` (see [`Wal::safe_cut`]).
    pub fn truncate_to(&self, cut: u64) -> Result<u64> {
        let shared = &self.shared;
        // Lock order: retain registry, then every shard file (index
        // order), then core — the flushers take core and file locks in
        // sequence but never hold a file lock while waiting for core, so
        // this cannot deadlock. Holding `retain` across the whole
        // truncation means a consumer registering concurrently either
        // sees the pre-cut base (and is granted its horizon) or the
        // post-cut base (and is clamped up to it) — never a base that
        // moves out from under a granted horizon.
        let retain = shared.retain.lock();
        let mut file_guards: Vec<_> = shared.files.iter().map(|m| m.lock()).collect();
        let mut core = shared.core.lock();
        let mut cut = cut.clamp(core.base_lsn, core.next_lsn);
        // A registered consumer (a replication sender's slowest replica)
        // pins the cut: frames must not disappear under a tailing reader.
        if let Some(floor) = retain.values().min() {
            cut = cut.min((*floor).max(core.base_lsn));
        }
        if shared.file_backed {
            let n = core.shards.len();
            let mut images: Vec<BytesMut> = (0..n)
                .map(|i| {
                    let mut b = BytesMut::new();
                    b.put_slice(&encode_header(cut, i as u32, n as u32));
                    b
                })
                .collect();
            // Coalesce each shard's records into frames of contiguous
            // LSN runs (a shard sees gaps where other shards' records
            // interleave).
            struct Run {
                first: u64,
                count: u64,
                payload: BytesMut,
            }
            let mut runs: Vec<Option<Run>> = (0..n).map(|_| None).collect();
            core.for_each(|lsn, r| {
                if lsn < cut {
                    return;
                }
                let s = shard_of(r.txn(), n);
                if let Some(run) = &runs[s] {
                    if run.first + run.count != lsn {
                        let run = runs[s].take().expect("checked above");
                        put_frame(&mut images[s], run.first, &run.payload);
                    }
                }
                match &mut runs[s] {
                    Some(run) => {
                        encode_record(&mut run.payload, r);
                        run.count += 1;
                        if run.payload.len() >= MAX_ROTATION_FRAME {
                            let run = runs[s].take().expect("just matched");
                            put_frame(&mut images[s], run.first, &run.payload);
                        }
                    }
                    None => {
                        let mut payload = BytesMut::new();
                        encode_record(&mut payload, r);
                        runs[s] = Some(Run {
                            first: lsn,
                            count: 1,
                            payload,
                        });
                    }
                }
            });
            for (s, run) in runs.into_iter().enumerate() {
                if let Some(run) = run {
                    put_frame(&mut images[s], run.first, &run.payload);
                }
            }
            let path = shared.path.as_ref().expect("file-backed wal has a path");
            for (s, guard) in file_guards.iter_mut().enumerate() {
                let spath = shard_file_path(path, s);
                let tmp = rotate_tmp_path(&spath);
                let image = &images[s];
                let rotated = (|| -> std::io::Result<std::fs::File> {
                    let mut f = std::fs::File::create(&tmp)?;
                    f.write_all(image)?;
                    f.sync_all()?;
                    std::fs::rename(&tmp, &spath)?;
                    std::fs::OpenOptions::new().append(true).open(&spath)
                })()
                .map_err(|e| Error::Wal(format!("rotate wal file: {e}")))?;
                **guard = Some(rotated);
            }
            // A previous run may have used more shards. Those trailing
            // `.s<i>` files hold only records below the LSN this log
            // opened at (the frontier resumed past them), hence below
            // `cut` and covered by the caller's checkpoint image — so
            // delete them here instead of letting fully-checkpointed
            // records accumulate and be re-read (then discarded) by
            // every future recovery.
            let mut extra = n;
            loop {
                let spath = shard_file_path(path, extra);
                if !spath.exists() {
                    break;
                }
                std::fs::remove_file(&spath)
                    .map_err(|e| Error::Wal(format!("remove stale wal shard file: {e}")))?;
                extra += 1;
            }
            shared.file_epoch.fetch_add(1, Ordering::AcqRel);
            // Everything the rotation wrote is durable (it covered every
            // staged and in-flight batch); any in-flight flusher buffer
            // is discarded via the epoch check.
            for sp in &mut core.shards {
                sp.reset();
            }
            advance_durable(&core, shared);
        }
        let mut dropped = 0u64;
        core.sealed.retain(|seg| {
            if seg.end_lsn() <= cut {
                dropped += seg.records.len() as u64;
                false
            } else {
                true
            }
        });
        if cut > core.open_base {
            let covered = (cut - core.open_base) as usize;
            core.open.drain(..covered);
            core.open_base = cut;
            dropped += covered as u64;
        }
        core.base_lsn = cut;
        shared
            .truncated_records
            .fetch_add(dropped, Ordering::Relaxed);
        shared.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(dropped)
    }

    /// Test hook: `(durable_lsn, per-shard frontier minimum, next_lsn)`
    /// captured atomically under the core lock, for asserting the merged
    /// horizon invariant `durable <= floor <= next`.
    #[cfg(test)]
    pub(crate) fn horizon_parts(&self) -> (u64, u64, u64) {
        let core = self.shared.core.lock();
        let mut floor = core.next_lsn;
        for sp in &core.shards {
            if let Some(f) = sp.frontier() {
                floor = floor.min(f);
            }
        }
        (
            self.shared.durable_lsn.load(Ordering::Acquire),
            floor,
            core.next_lsn,
        )
    }
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if self.flushers.is_empty() {
            return;
        }
        {
            let mut core = self.shared.core.lock();
            core.shutdown = true;
        }
        for cv in &self.shared.shard_work {
            cv.notify_all();
        }
        let mut failed = false;
        for handle in self.flushers.drain(..) {
            failed |= handle.join().is_err();
        }
        if failed && !std::thread::panicking() {
            panic!("WAL flusher thread panicked");
        }
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.len())
            .field("base_lsn", &self.base_lsn())
            .field("durable_lsn", &self.durable_lsn())
            .field("shards", &self.shard_count())
            .finish()
    }
}

/// One shard's group-commit flusher: drains its staging queue with one
/// combined write+fsync per wakeup (one frame per batch), then advances
/// the merged horizon and wakes every committer it covered. Exits when
/// the log shuts down and the queue is drained.
fn flusher_loop(shared: &WalShared, shard: usize) {
    loop {
        let (frames, batches, epoch) = {
            let mut core = shared.core.lock();
            loop {
                if core.shards[shard].queue.is_empty() {
                    if core.shutdown {
                        return;
                    }
                    shared.shard_work[shard].wait(&mut core);
                    continue;
                }
                if !core.shutdown && !shared.group_window.is_zero() {
                    let deadline = core.shards[shard]
                        .pending_since
                        .expect("staged batch implies since")
                        + shared.group_window;
                    if Instant::now() < deadline {
                        shared.shard_work[shard].wait_until(&mut core, deadline);
                        continue;
                    }
                }
                break;
            }
            let sp = &mut core.shards[shard];
            let frames = std::mem::take(&mut sp.queue);
            let batches = std::mem::replace(&mut sp.queued_batches, 0);
            sp.pending_since = None;
            sp.inflight_first = Some(frames[0].0);
            (frames, batches, shared.file_epoch.load(Ordering::Acquire))
        };
        let mut buf = BytesMut::new();
        for (first, payload) in &frames {
            put_frame(&mut buf, *first, payload);
        }
        let started = Instant::now();
        let mut rotated_away = false;
        {
            let mut file = shared.files[shard].lock();
            if shared.file_epoch.load(Ordering::Acquire) != epoch {
                // A checkpoint rotated the files between our queue swap
                // and this write; the rotation already persisted (or
                // dropped) these records. Writing them would duplicate.
                rotated_away = true;
            } else if let Some(f) = file.as_mut() {
                if let Err(e) = f.write_all(&buf).and_then(|()| f.sync_data()) {
                    shared.poisoned.store(true, Ordering::Release);
                    drop(file);
                    let _core = shared.core.lock();
                    shared.durable.notify_all();
                    panic!("WAL flush failed; cannot guarantee durability: {e}");
                }
            }
        }
        if !rotated_away {
            let flush_us = started.elapsed().as_micros() as u64;
            let stats = &shared.shard_stats[shard];
            stats.flushes.fetch_add(1, Ordering::Relaxed);
            stats.flushed_batches.fetch_add(batches, Ordering::Relaxed);
            stats
                .flushed_bytes
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            stats.flush_micros.fetch_add(flush_us, Ordering::Relaxed);
            stats.max_group.fetch_max(batches, Ordering::Relaxed);
            if let Some(o) = shared.obs.get() {
                o.flush.record(flush_us);
            }
        }
        {
            let mut core = shared.core.lock();
            core.shards[shard].inflight_first = None;
            advance_durable(&core, shared);
        }
    }
}

// --- shard file helpers --------------------------------------------------

/// Current-format (`BFWAL4`) header bytes for one shard file.
fn encode_header(base_lsn: u64, shard: u32, shards: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..FILE_MAGIC.len()].copy_from_slice(&FILE_MAGIC);
    h[6..14].copy_from_slice(&base_lsn.to_be_bytes());
    h[14..18].copy_from_slice(&shard.to_be_bytes());
    h[18..22].copy_from_slice(&shards.to_be_bytes());
    h
}

/// What a WAL file's leading bytes say about its format.
enum WalHeader {
    /// `BFWAL2`..`BFWAL4`: framed records, explicit LSNs. `stale_magic`
    /// marks an older framed file that must be re-stamped before records
    /// its advertised version lacks (`CommitTs`, `Epoch`) may be
    /// appended to it.
    Framed { base: u64, stale_magic: bool },
    /// `BFWAL1` or headerless legacy: records concatenated positionally
    /// from `base`, starting at byte `offset`.
    Flat { base: u64, offset: usize },
    /// A magic prefix with the rest of the header cut off by a crash:
    /// treat as an empty log.
    Torn,
}

fn parse_file_header(bytes: &[u8]) -> WalHeader {
    let framed = bytes.len() >= FILE_MAGIC.len()
        && (bytes[..FILE_MAGIC.len()] == FILE_MAGIC
            || bytes[..V3_MAGIC.len()] == V3_MAGIC
            || bytes[..V2_MAGIC.len()] == V2_MAGIC);
    if framed {
        if bytes.len() >= HEADER_LEN {
            let mut base = [0u8; 8];
            base.copy_from_slice(&bytes[6..14]);
            WalHeader::Framed {
                base: u64::from_be_bytes(base),
                stale_magic: bytes[..FILE_MAGIC.len()] != FILE_MAGIC,
            }
        } else {
            WalHeader::Torn
        }
    } else if bytes.len() >= LEGACY_MAGIC.len() && bytes[..LEGACY_MAGIC.len()] == LEGACY_MAGIC {
        if bytes.len() >= LEGACY_HEADER_LEN {
            let mut base = [0u8; 8];
            base.copy_from_slice(&bytes[6..14]);
            WalHeader::Flat {
                base: u64::from_be_bytes(base),
                offset: LEGACY_HEADER_LEN,
            }
        } else {
            WalHeader::Torn
        }
    } else {
        WalHeader::Flat { base: 0, offset: 0 }
    }
}

/// Appends one frame: `first_lsn:u64 nbytes:u32 payload`. The length
/// field is a u32; a payload past that would silently truncate `nbytes`
/// and tear the frame stream at decode, so oversized payloads are a hard
/// error here (rotation splits long runs well below this; a single
/// transaction batch this large is unsupported).
fn put_frame(buf: &mut BytesMut, first_lsn: u64, payload: &[u8]) {
    assert!(
        payload.len() <= u32::MAX as usize,
        "WAL frame payload of {} bytes overflows the u32 length field",
        payload.len()
    );
    buf.put_u64(first_lsn);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
}

/// Decodes frames from `bytes[start..]`, returning LSN-tagged records and
/// the byte offset of the end of the last complete frame (a torn tail —
/// short frame header, short payload, or a payload whose records do not
/// decode cleanly — stops the scan there).
fn decode_frames(bytes: &[u8], start: usize) -> (Vec<(u64, LogRecord)>, usize) {
    let mut out = Vec::new();
    let mut pos = start;
    loop {
        if bytes.len().saturating_sub(pos) < FRAME_HEADER_LEN {
            break;
        }
        let mut first = [0u8; 8];
        first.copy_from_slice(&bytes[pos..pos + 8]);
        let first = u64::from_be_bytes(first);
        let mut nbytes = [0u8; 4];
        nbytes.copy_from_slice(&bytes[pos + 8..pos + 12]);
        let n = u32::from_be_bytes(nbytes) as usize;
        if bytes.len().saturating_sub(pos + FRAME_HEADER_LEN) < n {
            break;
        }
        let payload =
            Bytes::copy_from_slice(&bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + n]);
        let (records, consumed) = Wal::decode_prefix(payload);
        if consumed != n {
            break;
        }
        for (i, r) in records.into_iter().enumerate() {
            out.push((first + i as u64, r));
        }
        pos += FRAME_HEADER_LEN + n;
    }
    (out, pos)
}

/// Opens one shard file for appending, returning the append handle and
/// one past the highest LSN the file holds. Fresh files get a `BFWAL4`
/// header; legacy flat files (`BFWAL1` or headerless) are upgraded in
/// place to a framed file holding their records in a single frame; torn
/// tail frames from a crash are truncated away so the next flush appends
/// cleanly.
fn open_shard(spath: &Path, shard: u32, shards: u32) -> Result<(std::fs::File, u64)> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(spath)
        .map_err(|e| Error::Wal(format!("open wal file: {e}")))?;
    let bytes = std::fs::read(spath).map_err(|e| Error::Wal(format!("read wal file: {e}")))?;
    if bytes.is_empty() {
        file.write_all(&encode_header(0, shard, shards))
            .and_then(|()| file.sync_data())
            .map_err(|e| Error::Wal(format!("write wal header: {e}")))?;
        return Ok((file, 0));
    }
    match parse_file_header(&bytes) {
        WalHeader::Framed { base, stale_magic } => {
            let (frames, clean) = decode_frames(&bytes, HEADER_LEN);
            if clean < bytes.len() {
                // Torn tail from a crash mid-flush: drop it so appended
                // frames stay scannable.
                file.set_len(clean as u64)
                    .map_err(|e| Error::Wal(format!("truncate torn wal tail: {e}")))?;
            }
            if stale_magic {
                // Older framed file, identical layout: re-stamp the
                // magic so the file honestly advertises that newer
                // record tags (`CommitTs`, `Epoch`) may follow. Done
                // before any append, through a separate write handle
                // (the append handle cannot seek to 0).
                (|| -> std::io::Result<()> {
                    use std::io::{Seek, SeekFrom};
                    let mut w = std::fs::OpenOptions::new().write(true).open(spath)?;
                    w.seek(SeekFrom::Start(0))?;
                    w.write_all(&FILE_MAGIC)?;
                    w.sync_data()
                })()
                .map_err(|e| Error::Wal(format!("upgrade wal magic: {e}")))?;
            }
            let end = frames.last().map(|(l, _)| l + 1).unwrap_or(base).max(base);
            Ok((file, end))
        }
        WalHeader::Flat { base, offset } => {
            let (records, consumed) = Wal::decode_prefix(Bytes::copy_from_slice(&bytes[offset..]));
            let mut image = BytesMut::new();
            image.put_slice(&encode_header(base, shard, shards));
            if consumed > 0 {
                put_frame(&mut image, base, &bytes[offset..offset + consumed]);
            }
            let tmp = rotate_tmp_path(spath);
            let upgraded = (|| -> std::io::Result<std::fs::File> {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&image)?;
                f.sync_all()?;
                std::fs::rename(&tmp, spath)?;
                std::fs::OpenOptions::new().append(true).open(spath)
            })()
            .map_err(|e| Error::Wal(format!("upgrade legacy wal file: {e}")))?;
            Ok((upgraded, base + records.len() as u64))
        }
        WalHeader::Torn => {
            file.set_len(0)
                .map_err(|e| Error::Wal(format!("reset torn wal header: {e}")))?;
            file.write_all(&encode_header(0, shard, shards))
                .and_then(|()| file.sync_data())
                .map_err(|e| Error::Wal(format!("write wal header: {e}")))?;
            Ok((file, 0))
        }
    }
}

/// Reads one WAL file (any supported format) into LSN-tagged records.
fn load_shard_file(spath: &Path) -> Result<(u64, Vec<(u64, LogRecord)>)> {
    let bytes = std::fs::read(spath).map_err(|e| Error::Wal(format!("read wal file: {e}")))?;
    match parse_file_header(&bytes) {
        WalHeader::Framed { base, .. } => {
            let (frames, _) = decode_frames(&bytes, HEADER_LEN);
            Ok((base, frames))
        }
        WalHeader::Flat { base, offset } => {
            let (records, _) = Wal::decode_prefix(Bytes::from(bytes).slice(offset..));
            Ok((
                base,
                records
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| (base + i as u64, r))
                    .collect(),
            ))
        }
        WalHeader::Torn => Ok((0, Vec::new())),
    }
}

// --- binary format -------------------------------------------------------
//
// file    := header frame*
// header  := "BFWAL4" base_lsn:u64 shard:u32 shards:u32
//            (same layout as "BFWAL3", which lacked the epoch tag, and
//             "BFWAL2", which also lacked commit_ts;
//             legacy: "BFWAL1" base_lsn:u64 record*, or bare record*)
// frame   := first_lsn:u64 nbytes:u32 record*
// record  := tag:u8 body
// value   := vtag:u8 payload
// row     := count:u32 value*
// string  := len:u32 utf8-bytes

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_GRANULE: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;
/// Commit with an explicit commit timestamp (`BFWAL3`+ only).
const TAG_COMMIT_TS: u8 = 8;
/// Fencing-epoch raise (`BFWAL4`+ only).
const TAG_EPOCH: u8 = 9;

fn encode_record(buf: &mut BytesMut, r: &LogRecord) {
    match r {
        LogRecord::Begin(t) => {
            buf.put_u8(TAG_BEGIN);
            buf.put_u64(t.0);
        }
        LogRecord::Insert {
            txn,
            table,
            rid,
            row,
        } => {
            buf.put_u8(TAG_INSERT);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
            put_row(buf, row);
        }
        LogRecord::Update {
            txn,
            table,
            rid,
            after,
        } => {
            buf.put_u8(TAG_UPDATE);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
            put_row(buf, after);
        }
        LogRecord::Delete { txn, table, rid } => {
            buf.put_u8(TAG_DELETE);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
        }
        LogRecord::MigrationGranule {
            txn,
            migration,
            granule,
        } => {
            buf.put_u8(TAG_GRANULE);
            buf.put_u64(txn.0);
            buf.put_u32(*migration);
            put_granule(buf, granule);
        }
        LogRecord::Commit(t) => {
            buf.put_u8(TAG_COMMIT);
            buf.put_u64(t.0);
        }
        LogRecord::CommitTs { txn, ts } => {
            buf.put_u8(TAG_COMMIT_TS);
            buf.put_u64(txn.0);
            buf.put_u64(*ts);
        }
        LogRecord::Abort(t) => {
            buf.put_u8(TAG_ABORT);
            buf.put_u64(t.0);
        }
        LogRecord::Epoch { txn, epoch } => {
            buf.put_u8(TAG_EPOCH);
            buf.put_u64(txn.0);
            buf.put_u64(*epoch);
        }
    }
}

fn decode_record(buf: &mut Bytes) -> Result<LogRecord> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated record tag".into()));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_BEGIN => Ok(LogRecord::Begin(TxnId(get_u64(buf)?))),
        TAG_INSERT => Ok(LogRecord::Insert {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
            row: get_row(buf)?,
        }),
        TAG_UPDATE => Ok(LogRecord::Update {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
            after: get_row(buf)?,
        }),
        TAG_DELETE => Ok(LogRecord::Delete {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
        }),
        TAG_GRANULE => {
            let txn = TxnId(get_u64(buf)?);
            let migration = get_u32(buf)?;
            let granule = get_granule(buf)?;
            Ok(LogRecord::MigrationGranule {
                txn,
                migration,
                granule,
            })
        }
        TAG_COMMIT => Ok(LogRecord::Commit(TxnId(get_u64(buf)?))),
        TAG_ABORT => Ok(LogRecord::Abort(TxnId(get_u64(buf)?))),
        TAG_COMMIT_TS => Ok(LogRecord::CommitTs {
            txn: TxnId(get_u64(buf)?),
            ts: get_u64(buf)?,
        }),
        TAG_EPOCH => Ok(LogRecord::Epoch {
            txn: TxnId(get_u64(buf)?),
            epoch: get_u64(buf)?,
        }),
        t => Err(Error::Wal(format!("bad record tag {t}"))),
    }
}

fn put_granule(buf: &mut BytesMut, granule: &GranuleKey) {
    match granule {
        GranuleKey::Ordinal(o) => {
            buf.put_u8(0);
            buf.put_u64(*o);
        }
        GranuleKey::Group(vals) => {
            buf.put_u8(1);
            buf.put_u32(vals.len() as u32);
            for v in vals {
                put_value(buf, v);
            }
        }
    }
}

fn get_granule(buf: &mut Bytes) -> Result<GranuleKey> {
    match get_u8(buf)? {
        0 => Ok(GranuleKey::Ordinal(get_u64(buf)?)),
        1 => {
            let n = get_u32(buf)? as usize;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(get_value(buf)?);
            }
            Ok(GranuleKey::Group(vals))
        }
        k => Err(Error::Wal(format!("bad granule kind {k}"))),
    }
}

fn put_rid(buf: &mut BytesMut, rid: RowId) {
    buf.put_u32(rid.page());
    buf.put_u16(rid.slot());
}

fn get_rid(buf: &mut Bytes) -> Result<RowId> {
    Ok(RowId::new(get_u32(buf)?, get_u16(buf)?))
}

fn put_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32(row.arity() as u32);
    for v in row.iter() {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut Bytes) -> Result<Row> {
    let n = get_u32(buf)? as usize;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(buf)?);
    }
    Ok(Row(vals))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64(*f);
        }
        Value::Decimal(d) => {
            buf.put_u8(4);
            buf.put_i64(*d);
        }
        Value::Text(s) => {
            buf.put_u8(5);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.put_u8(6);
            buf.put_i32(*d);
        }
        Value::Timestamp(t) => {
            buf.put_u8(7);
            buf.put_i64(*t);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(get_u8(buf)? != 0)),
        2 => Ok(Value::Int(get_i64(buf)?)),
        3 => {
            if buf.remaining() < 8 {
                return Err(Error::Wal("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        4 => Ok(Value::Decimal(get_i64(buf)?)),
        5 => {
            let n = get_u32(buf)? as usize;
            if buf.remaining() < n {
                return Err(Error::Wal("truncated string".into()));
            }
            let bytes = buf.copy_to_bytes(n);
            String::from_utf8(bytes.to_vec())
                .map(Value::Text)
                .map_err(|_| Error::Wal("invalid utf8 in string".into()))
        }
        6 => {
            if buf.remaining() < 4 {
                return Err(Error::Wal("truncated date".into()));
            }
            Ok(Value::Date(buf.get_i32()))
        }
        7 => Ok(Value::Timestamp(get_i64(buf)?)),
        t => Err(Error::Wal(format!("bad value tag {t}"))),
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(Error::Wal("truncated u16".into()));
    }
    Ok(buf.get_u16())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Wal("truncated u32".into()));
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("truncated u64".into()));
    }
    Ok(buf.get_u64())
}

fn get_i64(buf: &mut Bytes) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("truncated i64".into()));
    }
    Ok(buf.get_i64())
}

/// Wire-format helpers shared with the checkpoint image codec in
/// `bullfrog-engine` (same value/row/granule encoding as the log itself).
pub mod codec {
    use super::*;

    /// Encodes a row.
    pub fn put_row(buf: &mut BytesMut, row: &Row) {
        super::put_row(buf, row);
    }

    /// Decodes a row.
    pub fn get_row(buf: &mut Bytes) -> Result<Row> {
        super::get_row(buf)
    }

    /// Encodes a row id.
    pub fn put_rid(buf: &mut BytesMut, rid: RowId) {
        super::put_rid(buf, rid);
    }

    /// Decodes a row id.
    pub fn get_rid(buf: &mut Bytes) -> Result<RowId> {
        super::get_rid(buf)
    }

    /// Encodes a granule key.
    pub fn put_granule(buf: &mut BytesMut, granule: &GranuleKey) {
        super::put_granule(buf, granule);
    }

    /// Decodes a granule key.
    pub fn get_granule(buf: &mut Bytes) -> Result<GranuleKey> {
        super::get_granule(buf)
    }

    /// Encodes a full log record (the WAL's on-disk record format; also
    /// the payload format of replication `FRAMES`).
    pub fn put_record(buf: &mut BytesMut, r: &LogRecord) {
        super::encode_record(buf, r);
    }

    /// Decodes a log record written by [`put_record`].
    pub fn get_record(buf: &mut Bytes) -> Result<LogRecord> {
        super::decode_record(buf)
    }

    /// Decodes a u32 with truncation checking.
    pub fn get_u32(buf: &mut Bytes) -> Result<u32> {
        super::get_u32(buf)
    }

    /// Decodes a u64 with truncation checking.
    pub fn get_u64(buf: &mut Bytes) -> Result<u64> {
        super::get_u64(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;
    use proptest::prelude::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin(TxnId(1)),
            LogRecord::Insert {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(0, 3),
                row: row![42, "hello", 2.5],
            },
            LogRecord::Update {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(0, 3),
                after: Row(vec![Value::Null, Value::Bool(true), Value::Decimal(199)]),
            },
            LogRecord::Delete {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(1, 0),
            },
            LogRecord::MigrationGranule {
                txn: TxnId(1),
                migration: 7,
                granule: GranuleKey::Ordinal(12345),
            },
            LogRecord::MigrationGranule {
                txn: TxnId(1),
                migration: 7,
                granule: GranuleKey::Group(vec![Value::Int(1), Value::text("grp")]),
            },
            LogRecord::Commit(TxnId(1)),
            LogRecord::Abort(TxnId(2)),
        ]
    }

    /// Removes a WAL's shard 0 file and every `.sN` sibling (leftover
    /// shard files from another run would otherwise pollute the LSN
    /// frontier of the next test using the same tag).
    fn remove_sharded(path: &Path) {
        let _ = std::fs::remove_file(path);
        let mut i = 1usize;
        while std::fs::remove_file(shard_file_path(path, i)).is_ok() {
            i += 1;
        }
    }

    /// A per-test temp file path (tests run in one process, so the pid
    /// alone is not unique).
    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bullfrog-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        remove_sharded(&path);
        path
    }

    fn one_shard(group_window: Duration) -> WalOptions {
        WalOptions {
            group_window,
            shards: 1,
        }
    }

    #[test]
    fn binary_round_trip() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        let decoded = Wal::decode_all(bytes).unwrap();
        assert_eq!(decoded, sample_records());
    }

    #[test]
    fn commit_ts_round_trips_and_resolves() {
        let rec = LogRecord::CommitTs {
            txn: TxnId(7),
            ts: 41,
        };
        let mut buf = BytesMut::new();
        encode_record(&mut buf, &rec);
        let mut bytes = buf.freeze();
        assert_eq!(decode_record(&mut bytes).unwrap(), rec);
        assert_eq!(rec.txn(), TxnId(7));
        assert_eq!(rec.commit_ts(), Some(41));
        assert!(rec.is_commit());
        assert_eq!(LogRecord::Commit(TxnId(7)).commit_ts(), None);
    }

    #[test]
    fn append_commit_draws_ts_in_lsn_order() {
        let wal = Arc::new(Wal::new());
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let txn = TxnId(t * 1000 + i);
                    let batch = vec![
                        LogRecord::Begin(txn),
                        LogRecord::Delete {
                            txn,
                            table: TableId(1),
                            rid: RowId::new(0, 0),
                        },
                    ];
                    let (_, ts) = wal.append_commit_durable(batch, txn);
                    wal.oracle().finish(ts);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Commit timestamps must appear in strictly increasing LSN order.
        let mut last_ts = 0;
        for r in wal.snapshot() {
            if let Some(ts) = r.commit_ts() {
                assert!(ts > last_ts, "ts {ts} out of LSN order (prev {last_ts})");
                last_ts = ts;
            }
        }
        assert_eq!(last_ts, 400);
        assert_eq!(wal.oracle().stable(), 400);
    }

    #[test]
    fn v2_magic_upgrades_on_open() {
        let path = temp_wal("v2magic");
        {
            let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
            wal.append_batch_durable(sample_records());
        }
        // Rewind the magic to BFWAL2 — a log written before CommitTs
        // existed (the layout is otherwise identical).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..V2_MAGIC.len()].copy_from_slice(&V2_MAGIC);
        std::fs::write(&path, &bytes).unwrap();
        // Read path accepts the old magic directly.
        assert_eq!(Wal::load_file(&path).unwrap(), sample_records());
        // Opening for append re-stamps it and CommitTs appends cleanly.
        {
            let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
            assert_eq!(wal.len(), sample_records().len());
            let (_, ts) = wal.append_commit_durable(vec![LogRecord::Begin(TxnId(9))], TxnId(9));
            wal.oracle().finish(ts);
        }
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..FILE_MAGIC.len()], &FILE_MAGIC);
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() + 2);
        assert_eq!(
            loaded.last().unwrap(),
            &LogRecord::CommitTs {
                txn: TxnId(9),
                ts: 1
            }
        );
        remove_sharded(&path);
    }

    #[test]
    fn decode_rejects_truncation() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        for cut in [1usize, 5, bytes.len() - 1] {
            let truncated = bytes.slice(..cut);
            assert!(
                Wal::decode_all(truncated).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let bytes = Bytes::from_static(&[0xFF]);
        assert!(matches!(Wal::decode_all(bytes), Err(Error::Wal(_))));
    }

    #[test]
    fn lsn_is_record_offset() {
        let wal = Wal::new();
        assert_eq!(wal.append(LogRecord::Begin(TxnId(1))), 0);
        assert_eq!(
            wal.append_batch([LogRecord::Commit(TxnId(1)), LogRecord::Begin(TxnId(2))]),
            1
        );
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn append_batch_is_atomic_under_concurrency() {
        let wal = Arc::new(Wal::new());
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let txn = TxnId(t * 1000 + i);
                    wal.append_batch([
                        LogRecord::Begin(txn),
                        LogRecord::Delete {
                            txn,
                            table: TableId(1),
                            rid: RowId::new(0, 0),
                        },
                        LogRecord::Commit(txn),
                    ]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every txn's three records must be contiguous.
        let records = wal.snapshot();
        assert_eq!(records.len(), 2400);
        for chunk in records.chunks(3) {
            let t = chunk[0].txn();
            assert!(matches!(chunk[0], LogRecord::Begin(_)));
            assert!(matches!(chunk[2], LogRecord::Commit(_)));
            assert_eq!(chunk[1].txn(), t);
            assert_eq!(chunk[2].txn(), t);
        }
    }

    #[test]
    fn file_mirror_round_trips() {
        let path = temp_wal("mirror");
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append_batch(sample_records());
        }
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded, sample_records());
        // Reopening an existing sharded log keeps prior records and
        // resumes the LSN frontier past them.
        {
            let wal = Wal::with_file(&path).unwrap();
            assert_eq!(wal.len(), sample_records().len());
            wal.append(LogRecord::Begin(TxnId(9)));
        }
        let loaded = Wal::load_sharded(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() + 1);
        assert_eq!(
            loaded.last().unwrap(),
            &(sample_records().len() as u64, LogRecord::Begin(TxnId(9)))
        );
        remove_sharded(&path);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_wal("torn");
        {
            let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
            // One frame per record, so chopping the tail kills exactly
            // the last frame.
            for r in sample_records() {
                wal.append_batch_durable([r]);
            }
        }
        // Chop a few bytes off the end — a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() - 1);
        assert_eq!(loaded[..], sample_records()[..loaded.len()]);
        // Reopening truncates the torn frame and appends cleanly after it.
        {
            let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
            assert_eq!(wal.len(), sample_records().len() - 1);
            wal.append_batch_durable([LogRecord::Begin(TxnId(50))]);
        }
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len());
        assert_eq!(loaded.last().unwrap(), &LogRecord::Begin(TxnId(50)));
        remove_sharded(&path);
    }

    #[test]
    fn legacy_headerless_file_reads_as_base_zero() {
        let path = temp_wal("legacy");
        let mut buf = BytesMut::new();
        for r in &sample_records() {
            encode_record(&mut buf, r);
        }
        std::fs::write(&path, &buf).unwrap();
        let (base, records) = Wal::load_file_with_base(&path).unwrap();
        assert_eq!(base, 0);
        assert_eq!(records, sample_records());
        remove_sharded(&path);
    }

    #[test]
    fn legacy_flat_file_upgrades_on_open() {
        let path = temp_wal("upgrade");
        // A pre-sharding BFWAL1 flat file with a non-zero base LSN.
        let mut buf = BytesMut::new();
        buf.put_slice(&LEGACY_MAGIC);
        buf.put_u64(5);
        for r in &sample_records() {
            encode_record(&mut buf, r);
        }
        std::fs::write(&path, &buf).unwrap();
        {
            let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
            assert_eq!(wal.len(), 5 + sample_records().len());
            wal.append_batch_durable([LogRecord::Begin(TxnId(9))]);
        }
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(
            &bytes[..FILE_MAGIC.len()],
            &FILE_MAGIC,
            "upgraded to framed format"
        );
        let loaded = Wal::load_sharded(&path).unwrap();
        assert_eq!(loaded.first().unwrap().0, 5);
        assert_eq!(loaded.len(), sample_records().len() + 1);
        assert_eq!(
            loaded.last().unwrap(),
            &(
                5 + sample_records().len() as u64,
                LogRecord::Begin(TxnId(9))
            )
        );
        remove_sharded(&path);
    }

    #[test]
    fn decode_prefix_reports_consumed_bytes() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        let full = bytes.len();
        let (records, consumed) = Wal::decode_prefix(bytes.clone());
        assert_eq!(records.len(), sample_records().len());
        assert_eq!(consumed, full);
        let (records, consumed) = Wal::decode_prefix(bytes.slice(..full - 1));
        assert!(consumed < full - 1 || records.len() == sample_records().len() - 1);
    }

    #[test]
    fn txn_accessor() {
        for r in sample_records() {
            let t = r.txn();
            assert!(t == TxnId(1) || t == TxnId(2));
        }
    }

    #[test]
    fn durable_append_is_on_disk_when_it_returns() {
        let path = temp_wal("durable");
        let wal = Wal::with_file(&path).unwrap();
        wal.append_batch_durable(sample_records());
        // No drop, no join: the shard files must already hold every record.
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded, sample_records());
        assert_eq!(wal.durable_lsn(), sample_records().len() as u64);
        drop(wal);
        remove_sharded(&path);
    }

    #[test]
    fn commit_ticket_acknowledges_durability() {
        let path = temp_wal("ticket");
        let wal = Wal::with_file(&path).unwrap();
        let ticket = wal.append_batch_enqueue(sample_records());
        assert_eq!(ticket.wait_lsn(), sample_records().len() as u64);
        ticket.wait();
        assert!(ticket.is_durable());
        assert!(wal.durable_lsn() >= ticket.wait_lsn());
        // A ticket outlives the handle: dropping the log drains every
        // shard first, so the ticket resolves durable.
        let late = wal.append_batch_enqueue([LogRecord::Begin(TxnId(42))]);
        drop(wal);
        late.wait();
        assert!(late.is_durable());
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() + 1);
        remove_sharded(&path);
        // In-memory logs hand out trivially-durable tickets.
        let mem = Wal::new();
        let t = mem.append_batch_enqueue(sample_records());
        assert!(t.is_durable());
        t.wait();
        assert_eq!(mem.durable_ticket().wait_lsn(), 0);
    }

    #[test]
    fn sharded_concurrent_appends_merge_on_load() {
        use std::sync::Barrier;
        let path = temp_wal("sharded-merge");
        const THREADS: u64 = 8;
        const TXNS: u64 = 50;
        let wal = Arc::new(Wal::with_file(&path).unwrap());
        assert_eq!(wal.shard_count(), DEFAULT_WAL_SHARDS);
        let barrier = Arc::new(Barrier::new(THREADS as usize));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let wal = Arc::clone(&wal);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..TXNS {
                    let txn = TxnId(t * 1000 + i);
                    wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = (THREADS * TXNS * 2) as usize;
        assert_eq!(wal.len(), total);
        assert_eq!(wal.durable_lsn(), total as u64);
        let snapshot = wal.snapshot();
        // Work spread across more than one fsync pipeline.
        let busy = wal.shard_stats().iter().filter(|s| s.flushes > 0).count();
        assert!(busy >= 2, "expected multiple shards flushing, got {busy}");
        drop(wal);
        // The merged stream is dense in LSN and matches the in-memory log.
        let loaded = Wal::load_sharded(&path).unwrap();
        assert_eq!(loaded.len(), total);
        for (i, (lsn, r)) in loaded.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &snapshot[i]);
        }
        remove_sharded(&path);
    }

    #[test]
    fn group_commit_coalesces_fsyncs() {
        use std::sync::Barrier;
        let path = temp_wal("group");
        const THREADS: u64 = 8;
        let wal =
            Arc::new(Wal::with_file_opts(&path, one_shard(Duration::from_millis(30))).unwrap());
        let barrier = Arc::new(Barrier::new(THREADS as usize));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let wal = Arc::clone(&wal);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let txn = TxnId(t + 1);
                wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.flushed_batches, THREADS);
        // The whole point of group commit: fewer fsyncs than commits.
        assert!(
            stats.flushes < THREADS,
            "expected coalescing, got {} flushes for {THREADS} commits",
            stats.flushes
        );
        assert!(stats.max_group >= 2, "no grouping observed: {stats:?}");
        drop(wal);
        remove_sharded(&path);
    }

    #[test]
    fn durable_ack_covers_earlier_enqueues_on_every_shard() {
        // Regression for the cross-shard dependency hole: async commits
        // release locks at enqueue time, so a later synchronous commit
        // may depend on any earlier enqueued batch regardless of shard.
        // Its acknowledgement must therefore imply *all* earlier batches
        // are durable, not just those on its own shard.
        let path = temp_wal("cross-shard-ack");
        let wal = Wal::with_file(&path).unwrap();
        let n = wal.shard_count();
        let mut tickets = Vec::new();
        let mut covered = vec![false; n];
        let mut t = 1u64;
        while covered.iter().any(|c| !c) {
            let s = shard_of(TxnId(t), n);
            if !covered[s] {
                covered[s] = true;
                tickets.push(wal.append_batch_enqueue([
                    LogRecord::Begin(TxnId(t)),
                    LogRecord::Commit(TxnId(t)),
                ]));
            }
            t += 1;
        }
        wal.append_batch_durable([LogRecord::Begin(TxnId(t)), LogRecord::Commit(TxnId(t))]);
        for ticket in &tickets {
            assert!(
                ticket.is_durable(),
                "a sync ack returned while an earlier enqueue was still in flight"
            );
        }
        drop(wal);
        remove_sharded(&path);
    }

    #[test]
    fn truncation_removes_stale_extra_shard_files() {
        // A run with fewer shards than its predecessor leaves trailing
        // `.s<i>` files behind; their records are all below the reopened
        // log's base, so the first checkpoint truncation deletes them.
        let path = temp_wal("shrink-shards");
        {
            let wal = Wal::with_file_opts(
                &path,
                WalOptions {
                    group_window: Duration::ZERO,
                    shards: 4,
                },
            )
            .unwrap();
            for t in 0..16u64 {
                let txn = TxnId(t);
                wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
            }
        }
        assert!(shard_file_path(&path, 2).exists());
        assert!(shard_file_path(&path, 3).exists());
        let wal = Wal::with_file_opts(
            &path,
            WalOptions {
                group_window: Duration::ZERO,
                shards: 2,
            },
        )
        .unwrap();
        assert_eq!(wal.len(), 32, "stale files still bound the LSN frontier");
        let txn = TxnId(100);
        wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        let cut = wal.safe_cut();
        assert_eq!(cut, 34);
        wal.truncate_to(cut).unwrap();
        assert!(
            !shard_file_path(&path, 2).exists() && !shard_file_path(&path, 3).exists(),
            "stale shard files must be deleted by truncation"
        );
        // The shrunk log keeps working and holds only the new tail.
        let txn = TxnId(101);
        wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        drop(wal);
        let loaded = Wal::load_sharded(&path).unwrap();
        assert_eq!(
            loaded,
            vec![
                (34, LogRecord::Begin(TxnId(101))),
                (35, LogRecord::Commit(TxnId(101))),
            ]
        );
        remove_sharded(&path);
    }

    #[test]
    fn safe_cut_respects_unresolved_transactions() {
        let wal = Wal::new();
        let t1 = TxnId(1);
        wal.append_batch([LogRecord::Begin(t1), LogRecord::Commit(t1)]);
        assert_eq!(wal.safe_cut(), 2);
        // An unresolved transaction pins the cut below its first record.
        let t2 = TxnId(2);
        wal.append_batch([LogRecord::Begin(t2)]);
        let t3 = TxnId(3);
        wal.append_batch([LogRecord::Begin(t3), LogRecord::Commit(t3)]);
        assert_eq!(wal.safe_cut(), 2);
        wal.append(LogRecord::Commit(t2));
        assert_eq!(wal.safe_cut(), wal.len() as u64);
    }

    #[test]
    fn truncation_respects_retain_horizons() {
        // Regression: a tailing log consumer (replication sender) registers
        // the first LSN it still needs; truncation must never cut past it,
        // or frames disappear under the reader mid-stream.
        let wal = Wal::new();
        for t in 0..100u64 {
            let txn = TxnId(t);
            wal.append_batch([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        let (id, granted) = wal.register_retain(40);
        assert_eq!(granted, 40);
        let cut = wal.safe_cut();
        assert_eq!(cut, 200);
        wal.truncate_to(cut).unwrap();
        // The cut was clamped to the retain horizon, not the checkpoint LSN.
        assert_eq!(wal.base_lsn(), 40);
        let kept = wal.records_with_lsns(40, 200);
        assert_eq!(kept.len(), 160);
        assert_eq!(kept.first().unwrap().0, 40);
        // The consumer advances; truncation follows it.
        wal.advance_retain(id, 150);
        wal.truncate_to(wal.safe_cut()).unwrap();
        assert_eq!(wal.base_lsn(), 150);
        // Releasing the horizon lets truncation cut the full prefix again.
        wal.release_retain(id);
        assert_eq!(wal.retain_floor(), None);
        wal.truncate_to(wal.safe_cut()).unwrap();
        assert_eq!(wal.base_lsn(), 200);
    }

    #[test]
    fn register_retain_clamps_to_base() {
        // Registering below the already-truncated base grants the base:
        // those records are gone, and the consumer must be told where the
        // guarantee actually starts (it will re-bootstrap from a snapshot).
        let wal = Wal::new();
        for t in 0..10u64 {
            let txn = TxnId(t);
            wal.append_batch([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        wal.truncate_to(wal.safe_cut()).unwrap();
        assert_eq!(wal.base_lsn(), 20);
        let (_, granted) = wal.register_retain(5);
        assert_eq!(granted, 20);
    }

    #[test]
    fn durable_records_from_stops_at_durable_horizon() {
        let path = temp_wal("durable-from");
        let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
        let t1 = TxnId(1);
        wal.append_batch_durable([LogRecord::Begin(t1), LogRecord::Commit(t1)]);
        let (recs, durable) = wal.durable_records_from(0, usize::MAX);
        assert_eq!(durable, 2);
        assert_eq!(
            recs,
            vec![(0, LogRecord::Begin(t1)), (1, LogRecord::Commit(t1)),]
        );
        // `max` bounds the batch; the durable horizon is still reported.
        let (recs, durable) = wal.durable_records_from(0, 1);
        assert_eq!(durable, 2);
        assert_eq!(recs.len(), 1);
        drop(wal);
        remove_sharded(&path);
    }

    #[test]
    fn truncation_bounds_resident_memory() {
        let wal = Wal::new();
        for t in 0..3000u64 {
            let txn = TxnId(t);
            wal.append_batch([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        let before = wal.resident_records();
        assert_eq!(before, 6000);
        let cut = wal.safe_cut();
        assert_eq!(cut, 6000);
        let dropped = wal.truncate_to(cut).unwrap();
        // Whole sealed segments and the covered open prefix are gone;
        // what remains is bounded by one segment.
        assert_eq!(dropped as usize, before - wal.resident_records());
        assert!(wal.resident_records() <= SEGMENT_RECORDS);
        assert_eq!(wal.base_lsn(), cut);
        assert_eq!(wal.len(), 6000, "LSN space is not rewound");
        assert!(wal.snapshot().is_empty());
        let stats = wal.stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.truncated_records, dropped);
        // The log keeps working after truncation.
        let txn = TxnId(9000);
        assert_eq!(
            wal.append_batch([LogRecord::Begin(txn), LogRecord::Commit(txn)]),
            6000
        );
        assert_eq!(wal.snapshot().len(), 2);
    }

    #[test]
    fn rotation_keeps_only_tail_with_base_header() {
        let path = temp_wal("rotate");
        let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
        for t in 0..50u64 {
            let txn = TxnId(t);
            wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        let cut = wal.safe_cut();
        assert_eq!(cut, 100);
        wal.truncate_to(cut).unwrap();
        // Post-truncation appends land in the rotated file.
        let txn = TxnId(77);
        wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        drop(wal);
        let (base, records) = Wal::load_file_with_base(&path).unwrap();
        assert_eq!(base, 100);
        assert_eq!(
            records,
            vec![LogRecord::Begin(TxnId(77)), LogRecord::Commit(TxnId(77))]
        );
        // Reopening appends after the rotated tail.
        {
            let wal = Wal::with_file_opts(&path, one_shard(Duration::ZERO)).unwrap();
            assert_eq!(wal.len(), 102);
            wal.append(LogRecord::Begin(TxnId(78)));
        }
        let (base, records) = Wal::load_file_with_base(&path).unwrap();
        assert_eq!(base, 100);
        assert_eq!(records.len(), 3);
        remove_sharded(&path);
    }

    #[test]
    fn rotation_preserves_staged_unflushed_batches() {
        // Regression: a checkpoint racing an in-flight durable append
        // used to clear the pending buffer and strand the staged bytes
        // past the cut. Rotation now rebuilds the tail from the record
        // store, which is a superset of anything staged.
        let path = temp_wal("rotate-staged");
        let wal = Wal::with_file_opts(&path, one_shard(Duration::from_secs(5))).unwrap();
        let (t1, t2) = (TxnId(1), TxnId(2));
        // Both batches are staged but unflushed: the 5s group window
        // keeps the flusher parked.
        wal.append_batch([LogRecord::Begin(t1), LogRecord::Commit(t1)]);
        wal.append_batch([LogRecord::Begin(t2), LogRecord::Commit(t2)]);
        assert_eq!(wal.durable_lsn(), 0);
        // Checkpoint cuts between the batches while both sit staged.
        wal.truncate_to(2).unwrap();
        // The rotation itself made the whole tail durable — nothing for
        // the second committer to lose.
        assert_eq!(wal.durable_lsn(), 4);
        drop(wal);
        let loaded = Wal::load_sharded(&path).unwrap();
        assert_eq!(
            loaded,
            vec![(2, LogRecord::Begin(t2)), (3, LogRecord::Commit(t2)),]
        );
        remove_sharded(&path);
    }

    #[test]
    fn rotation_redistributes_tail_across_shards() {
        let path = temp_wal("rotate-shards");
        let wal = Wal::with_file(&path).unwrap();
        for t in 0..50u64 {
            let txn = TxnId(t);
            wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        // An unresolved transaction pins the cut at its first record, so
        // the rotated tail spans many transactions (and shards).
        wal.append_batch_durable([LogRecord::Begin(TxnId(500))]);
        for t in 600..610u64 {
            let txn = TxnId(t);
            wal.append_batch_durable([LogRecord::Begin(txn), LogRecord::Commit(txn)]);
        }
        let cut = wal.safe_cut();
        assert_eq!(cut, 100);
        wal.truncate_to(cut).unwrap();
        let snapshot = wal.snapshot();
        drop(wal);
        let loaded = Wal::load_sharded(&path).unwrap();
        assert_eq!(loaded.first().unwrap().0, 100);
        assert_eq!(loaded.len(), snapshot.len());
        let records: Vec<LogRecord> = loaded.into_iter().map(|(_, r)| r).collect();
        assert_eq!(records, snapshot);
        remove_sharded(&path);
    }

    #[test]
    fn records_in_walks_segment_ranges() {
        let wal = Wal::new();
        for t in 0..2000u64 {
            wal.append(LogRecord::Begin(TxnId(t)));
        }
        let mid = wal.records_in(1500, 1503);
        assert_eq!(
            mid,
            vec![
                LogRecord::Begin(TxnId(1500)),
                LogRecord::Begin(TxnId(1501)),
                LogRecord::Begin(TxnId(1502)),
            ]
        );
        assert_eq!(wal.records_in(1999, 5000).len(), 1);
        assert_eq!(wal.records_in(5000, 6000).len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The merged horizon never runs ahead of the slowest shard's
        /// frontier under randomized concurrent interleavings, and the
        /// sharded files replay to exactly the in-memory stream.
        #[test]
        fn merged_horizon_is_per_shard_minimum(
            shards in 1usize..=4,
            batches in proptest::collection::vec((1u64..64, 1usize..4), 1..24),
        ) {
            let path = temp_wal(&format!("horizon-{shards}"));
            let wal = Arc::new(
                Wal::with_file_opts(
                    &path,
                    WalOptions {
                        group_window: Duration::ZERO,
                        shards,
                    },
                )
                .unwrap(),
            );
            let stop = Arc::new(AtomicBool::new(false));
            let sampler = {
                let wal = Arc::clone(&wal);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let (durable, floor, next) = wal.horizon_parts();
                        assert!(
                            durable <= floor && floor <= next,
                            "horizon invariant violated: durable={durable} floor={floor} next={next}"
                        );
                        std::thread::yield_now();
                    }
                })
            };
            let mut appenders = Vec::new();
            for chunk in 0..3usize {
                let wal = Arc::clone(&wal);
                let mine: Vec<(u64, usize)> = batches
                    .iter()
                    .skip(chunk)
                    .step_by(3)
                    .copied()
                    .collect();
                appenders.push(std::thread::spawn(move || {
                    for (txn, count) in mine {
                        let txn = TxnId(txn);
                        let mut batch = vec![LogRecord::Begin(txn)];
                        batch.extend((1..count).map(|_| LogRecord::Commit(txn)));
                        wal.append_batch_durable(batch);
                    }
                }));
            }
            for h in appenders {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Release);
            sampler.join().unwrap();
            wal.sync();
            let (durable, floor, next) = wal.horizon_parts();
            prop_assert_eq!(durable, next);
            prop_assert_eq!(floor, next);
            let total: usize = batches.iter().map(|(_, c)| *c).sum();
            prop_assert_eq!(next as usize, total);
            let snapshot = wal.snapshot();
            drop(wal);
            let loaded = Wal::load_sharded(&path).unwrap();
            prop_assert_eq!(loaded.len(), total);
            for (i, (lsn, r)) in loaded.iter().enumerate() {
                prop_assert_eq!(*lsn, i as u64);
                prop_assert_eq!(r, &snapshot[i]);
            }
            remove_sharded(&path);
        }
    }
}
