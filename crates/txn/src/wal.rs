//! Redo write-ahead log.
//!
//! The WAL serves two purposes in this reproduction:
//!
//! 1. Ordinary **data recovery**: replaying committed transactions rebuilds
//!    table contents.
//! 2. **Migration-tracker recovery** (paper §3.5, described there as future
//!    work — implemented here): `MigrationGranule` records are written
//!    inside migration transactions, so replay can mark exactly the
//!    granules whose migration committed as `[0 1]`/`migrated`.
//!
//! Records live in memory (a `Vec` behind a mutex) and are optionally
//! mirrored durably to a file ([`Wal::with_file`]), appended and flushed
//! per commit batch. The binary format is round-trip tested, and the file
//! scanner ([`Wal::load_file`]) tolerates a torn tail from a crash
//! mid-write.

use std::io::Write;
use std::path::Path;

use bullfrog_common::{Error, Result, Row, RowId, TableId, TxnId, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

/// Identifies a granule within a migration for recovery purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GranuleKey {
    /// A bitmap-tracked granule: its dense ordinal.
    Ordinal(u64),
    /// A hashmap-tracked granule: the group key values.
    Group(Vec<Value>),
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start (informational).
    Begin(TxnId),
    /// Row inserted.
    Insert {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id assigned.
        rid: RowId,
        /// Inserted row (after-image).
        row: Row,
    },
    /// Row updated.
    Update {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id updated.
        rid: RowId,
        /// After-image.
        after: Row,
    },
    /// Row deleted.
    Delete {
        /// Writing transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Row id deleted.
        rid: RowId,
    },
    /// A migration granule was physically migrated inside `txn`; replay
    /// marks it migrated iff `txn` committed.
    MigrationGranule {
        /// Migrating transaction.
        txn: TxnId,
        /// Which migration statement (assigned by `bullfrog-core`).
        migration: u32,
        /// The granule.
        granule: GranuleKey,
    },
    /// Transaction committed — all earlier records of `txn` are durable.
    Commit(TxnId),
    /// Transaction aborted (written for completeness; replay ignores the
    /// transaction's records either way).
    Abort(TxnId),
}

impl LogRecord {
    /// The transaction a record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin(t) | LogRecord::Commit(t) | LogRecord::Abort(t) => *t,
            LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::MigrationGranule { txn, .. } => *txn,
        }
    }
}

/// The write-ahead log: an append-only, atomically-batched record list,
/// optionally mirrored durably to a file (appended and flushed on every
/// batch, i.e. on every commit).
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
    file: Mutex<Option<std::fs::File>>,
}

impl Wal {
    /// An in-memory-only log.
    pub fn new() -> Self {
        Wal {
            records: Mutex::new(Vec::new()),
            file: Mutex::new(None),
        }
    }

    /// A log mirrored to `path` (created or appended to). Existing records
    /// in the file are **not** loaded — use [`Wal::load_file`] first and
    /// replay them, as recovery does.
    pub fn with_file(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::Wal(format!("open wal file: {e}")))?;
        Ok(Wal {
            records: Mutex::new(Vec::new()),
            file: Mutex::new(Some(file)),
        })
    }

    /// Reads a WAL file, returning every complete record. A torn tail —
    /// a partial record at EOF from a crash mid-write — is tolerated and
    /// ignored, like any real log scanner.
    pub fn load_file(path: impl AsRef<Path>) -> Result<Vec<LogRecord>> {
        let bytes = std::fs::read(path).map_err(|e| Error::Wal(format!("read wal file: {e}")))?;
        Ok(Self::decode_prefix(Bytes::from(bytes)).0)
    }

    /// Decodes records until the bytes run out or a record is torn;
    /// returns the records and how many bytes were consumed cleanly.
    pub fn decode_prefix(bytes: Bytes) -> (Vec<LogRecord>, usize) {
        let total = bytes.len();
        let mut buf = bytes;
        let mut out = Vec::new();
        let mut consumed = 0usize;
        loop {
            if !buf.has_remaining() {
                break;
            }
            let before = buf.remaining();
            match decode_record(&mut buf) {
                Ok(r) => {
                    out.push(r);
                    consumed += before - buf.remaining();
                }
                Err(_) => break,
            }
        }
        debug_assert!(consumed <= total);
        (out, consumed)
    }

    /// Appends a batch atomically (a committing transaction appends its
    /// redo records followed by its `Commit` in one call, so no reader can
    /// observe a commit record without its payload). Returns the LSN of the
    /// first appended record.
    pub fn append_batch(&self, batch: impl IntoIterator<Item = LogRecord>) -> u64 {
        let mut records = self.records.lock();
        let lsn = records.len() as u64;
        let start = records.len();
        records.extend(batch);
        if let Some(file) = self.file.lock().as_mut() {
            let mut buf = BytesMut::new();
            for r in &records[start..] {
                encode_record(&mut buf, r);
            }
            // Write + flush while still holding the records lock so file
            // order matches memory order; a real engine would group-commit
            // here instead. A WAL write failure means durability is gone —
            // halt rather than silently acknowledge commits (the standard
            // database response to a dead log device).
            file.write_all(&buf)
                .and_then(|()| file.flush())
                .expect("WAL file write failed; cannot guarantee durability");
        }
        lsn
    }

    /// Appends one record.
    pub fn append(&self, record: LogRecord) -> u64 {
        self.append_batch([record])
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when no records were written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the full log (recovery input).
    pub fn snapshot(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Serializes the whole log to its binary image.
    pub fn encode_all(&self) -> Bytes {
        let records = self.records.lock();
        let mut buf = BytesMut::new();
        for r in records.iter() {
            encode_record(&mut buf, r);
        }
        buf.freeze()
    }

    /// Parses a binary image produced by [`Wal::encode_all`].
    pub fn decode_all(mut bytes: Bytes) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        while bytes.has_remaining() {
            out.push(decode_record(&mut bytes)?);
        }
        Ok(out)
    }
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("records", &self.len()).finish()
    }
}

// --- binary format -------------------------------------------------------
//
// record  := tag:u8 body
// value   := vtag:u8 payload
// row     := count:u32 value*
// string  := len:u32 utf8-bytes

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_GRANULE: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;

fn encode_record(buf: &mut BytesMut, r: &LogRecord) {
    match r {
        LogRecord::Begin(t) => {
            buf.put_u8(TAG_BEGIN);
            buf.put_u64(t.0);
        }
        LogRecord::Insert { txn, table, rid, row } => {
            buf.put_u8(TAG_INSERT);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
            put_row(buf, row);
        }
        LogRecord::Update { txn, table, rid, after } => {
            buf.put_u8(TAG_UPDATE);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
            put_row(buf, after);
        }
        LogRecord::Delete { txn, table, rid } => {
            buf.put_u8(TAG_DELETE);
            buf.put_u64(txn.0);
            buf.put_u32(table.0);
            put_rid(buf, *rid);
        }
        LogRecord::MigrationGranule { txn, migration, granule } => {
            buf.put_u8(TAG_GRANULE);
            buf.put_u64(txn.0);
            buf.put_u32(*migration);
            match granule {
                GranuleKey::Ordinal(o) => {
                    buf.put_u8(0);
                    buf.put_u64(*o);
                }
                GranuleKey::Group(vals) => {
                    buf.put_u8(1);
                    buf.put_u32(vals.len() as u32);
                    for v in vals {
                        put_value(buf, v);
                    }
                }
            }
        }
        LogRecord::Commit(t) => {
            buf.put_u8(TAG_COMMIT);
            buf.put_u64(t.0);
        }
        LogRecord::Abort(t) => {
            buf.put_u8(TAG_ABORT);
            buf.put_u64(t.0);
        }
    }
}

fn decode_record(buf: &mut Bytes) -> Result<LogRecord> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated record tag".into()));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_BEGIN => Ok(LogRecord::Begin(TxnId(get_u64(buf)?))),
        TAG_INSERT => Ok(LogRecord::Insert {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
            row: get_row(buf)?,
        }),
        TAG_UPDATE => Ok(LogRecord::Update {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
            after: get_row(buf)?,
        }),
        TAG_DELETE => Ok(LogRecord::Delete {
            txn: TxnId(get_u64(buf)?),
            table: TableId(get_u32(buf)?),
            rid: get_rid(buf)?,
        }),
        TAG_GRANULE => {
            let txn = TxnId(get_u64(buf)?);
            let migration = get_u32(buf)?;
            let kind = get_u8(buf)?;
            let granule = match kind {
                0 => GranuleKey::Ordinal(get_u64(buf)?),
                1 => {
                    let n = get_u32(buf)? as usize;
                    let mut vals = Vec::with_capacity(n);
                    for _ in 0..n {
                        vals.push(get_value(buf)?);
                    }
                    GranuleKey::Group(vals)
                }
                k => return Err(Error::Wal(format!("bad granule kind {k}"))),
            };
            Ok(LogRecord::MigrationGranule { txn, migration, granule })
        }
        TAG_COMMIT => Ok(LogRecord::Commit(TxnId(get_u64(buf)?))),
        TAG_ABORT => Ok(LogRecord::Abort(TxnId(get_u64(buf)?))),
        t => Err(Error::Wal(format!("bad record tag {t}"))),
    }
}

fn put_rid(buf: &mut BytesMut, rid: RowId) {
    buf.put_u32(rid.page());
    buf.put_u16(rid.slot());
}

fn get_rid(buf: &mut Bytes) -> Result<RowId> {
    Ok(RowId::new(get_u32(buf)?, get_u16(buf)?))
}

fn put_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32(row.arity() as u32);
    for v in row.iter() {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut Bytes) -> Result<Row> {
    let n = get_u32(buf)? as usize;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(buf)?);
    }
    Ok(Row(vals))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64(*f);
        }
        Value::Decimal(d) => {
            buf.put_u8(4);
            buf.put_i64(*d);
        }
        Value::Text(s) => {
            buf.put_u8(5);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.put_u8(6);
            buf.put_i32(*d);
        }
        Value::Timestamp(t) => {
            buf.put_u8(7);
            buf.put_i64(*t);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(get_u8(buf)? != 0)),
        2 => Ok(Value::Int(get_i64(buf)?)),
        3 => {
            if buf.remaining() < 8 {
                return Err(Error::Wal("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        4 => Ok(Value::Decimal(get_i64(buf)?)),
        5 => {
            let n = get_u32(buf)? as usize;
            if buf.remaining() < n {
                return Err(Error::Wal("truncated string".into()));
            }
            let bytes = buf.copy_to_bytes(n);
            String::from_utf8(bytes.to_vec())
                .map(Value::Text)
                .map_err(|_| Error::Wal("invalid utf8 in string".into()))
        }
        6 => {
            if buf.remaining() < 4 {
                return Err(Error::Wal("truncated date".into()));
            }
            Ok(Value::Date(buf.get_i32()))
        }
        7 => Ok(Value::Timestamp(get_i64(buf)?)),
        t => Err(Error::Wal(format!("bad value tag {t}"))),
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(Error::Wal("truncated u16".into()));
    }
    Ok(buf.get_u16())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Wal("truncated u32".into()));
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("truncated u64".into()));
    }
    Ok(buf.get_u64())
}

fn get_i64(buf: &mut Bytes) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("truncated i64".into()));
    }
    Ok(buf.get_i64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin(TxnId(1)),
            LogRecord::Insert {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(0, 3),
                row: row![42, "hello", 2.5],
            },
            LogRecord::Update {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(0, 3),
                after: Row(vec![Value::Null, Value::Bool(true), Value::Decimal(199)]),
            },
            LogRecord::Delete {
                txn: TxnId(1),
                table: TableId(2),
                rid: RowId::new(1, 0),
            },
            LogRecord::MigrationGranule {
                txn: TxnId(1),
                migration: 7,
                granule: GranuleKey::Ordinal(12345),
            },
            LogRecord::MigrationGranule {
                txn: TxnId(1),
                migration: 7,
                granule: GranuleKey::Group(vec![Value::Int(1), Value::text("grp")]),
            },
            LogRecord::Commit(TxnId(1)),
            LogRecord::Abort(TxnId(2)),
        ]
    }

    #[test]
    fn binary_round_trip() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        let decoded = Wal::decode_all(bytes).unwrap();
        assert_eq!(decoded, sample_records());
    }

    #[test]
    fn decode_rejects_truncation() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        for cut in [1usize, 5, bytes.len() - 1] {
            let truncated = bytes.slice(..cut);
            assert!(
                Wal::decode_all(truncated).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let bytes = Bytes::from_static(&[0xFF]);
        assert!(matches!(Wal::decode_all(bytes), Err(Error::Wal(_))));
    }

    #[test]
    fn lsn_is_record_offset() {
        let wal = Wal::new();
        assert_eq!(wal.append(LogRecord::Begin(TxnId(1))), 0);
        assert_eq!(
            wal.append_batch([LogRecord::Commit(TxnId(1)), LogRecord::Begin(TxnId(2))]),
            1
        );
        assert_eq!(wal.len(), 3);
    }

    #[test]
    fn append_batch_is_atomic_under_concurrency() {
        use std::sync::Arc;
        let wal = Arc::new(Wal::new());
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let txn = TxnId(t * 1000 + i);
                    wal.append_batch([
                        LogRecord::Begin(txn),
                        LogRecord::Delete {
                            txn,
                            table: TableId(1),
                            rid: RowId::new(0, 0),
                        },
                        LogRecord::Commit(txn),
                    ]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every txn's three records must be contiguous.
        let records = wal.snapshot();
        assert_eq!(records.len(), 2400);
        for chunk in records.chunks(3) {
            let t = chunk[0].txn();
            assert!(matches!(chunk[0], LogRecord::Begin(_)));
            assert!(matches!(chunk[2], LogRecord::Commit(_)));
            assert_eq!(chunk[1].txn(), t);
            assert_eq!(chunk[2].txn(), t);
        }
    }

    #[test]
    fn file_mirror_round_trips() {
        let dir = std::env::temp_dir().join(format!("bullfrog-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append_batch(sample_records());
        }
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded, sample_records());
        // Appending to an existing file keeps prior records.
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append(LogRecord::Begin(TxnId(9)));
        }
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() + 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = std::env::temp_dir().join(format!("bullfrog-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        {
            let wal = Wal::with_file(&path).unwrap();
            wal.append_batch(sample_records());
        }
        // Chop a few bytes off the end — a crash mid-append.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let loaded = Wal::load_file(&path).unwrap();
        assert_eq!(loaded.len(), sample_records().len() - 1);
        assert_eq!(loaded[..], sample_records()[..loaded.len()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decode_prefix_reports_consumed_bytes() {
        let wal = Wal::new();
        wal.append_batch(sample_records());
        let bytes = wal.encode_all();
        let full = bytes.len();
        let (records, consumed) = Wal::decode_prefix(bytes.clone());
        assert_eq!(records.len(), sample_records().len());
        assert_eq!(consumed, full);
        let (records, consumed) = Wal::decode_prefix(bytes.slice(..full - 1));
        assert!(consumed < full - 1 || records.len() == sample_records().len() - 1);
    }

    #[test]
    fn txn_accessor() {
        for r in sample_records() {
            let t = r.txn();
            assert!(t == TxnId(1) || t == TxnId(2));
        }
    }
}
