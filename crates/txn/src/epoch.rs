//! The fencing epoch: a monotonic counter persisted **beside** the WAL
//! (sidecar file `<wal>.epoch`) that names which incarnation of the
//! primary is allowed to acknowledge writes and ship log frames.
//!
//! Every replication handshake, shipped frame, and ack carries the
//! sender's epoch. A replica promoted to primary bumps the epoch after
//! winning a majority vote; peers that observe a higher epoch than their
//! own know they are talking to (or worse, *are*) a deposed primary and
//! must fence. The store also persists the member's last vote so a
//! crash-and-restart cannot grant two candidates the same epoch.
//!
//! Durability contract: `bump`, `observe`, and `record_vote` fsync
//! through a temp-file + rename before returning, so a granted vote or
//! adopted epoch can never regress across a crash. The WAL additionally
//! carries [`crate::wal::LogRecord::Epoch`] records (written at
//! promotion), so even a lost sidecar is reconstructed by recovery.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bullfrog_common::{Error, Result};
use parking_lot::Mutex;

/// Sidecar magic ("BullFrog EPOch v1").
const MAGIC: [u8; 6] = *b"BFEPO1";

/// The persisted ballot: the highest epoch this member has adopted and
/// the last vote it granted (Raft-style `votedFor`, keyed by epoch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ballot {
    /// Highest epoch observed or bumped to.
    pub epoch: u64,
    /// Epoch of the last granted vote (0 = never voted).
    pub voted_epoch: u64,
    /// Candidate the vote went to at `voted_epoch`.
    pub voted_for: String,
}

/// The epoch store: in-memory state plus an optional fsynced sidecar.
pub struct EpochStore {
    path: Option<PathBuf>,
    state: Mutex<Ballot>,
}

impl EpochStore {
    /// Opens (or creates) the sidecar beside `wal_path`, loading the
    /// persisted ballot if one exists. A torn or missing file reads as
    /// epoch 0 with no vote.
    pub fn open(wal_path: impl AsRef<Path>) -> Result<Arc<Self>> {
        let path = sidecar_path(wal_path.as_ref());
        let state = match std::fs::read(&path) {
            Ok(bytes) => decode(&bytes).unwrap_or_default(),
            Err(_) => Ballot::default(),
        };
        Ok(Arc::new(EpochStore {
            path: Some(path),
            state: Mutex::new(state),
        }))
    }

    /// A volatile store (no sidecar): for replicas without local state
    /// and for tests. Epochs still only move forward within the process.
    pub fn volatile() -> Arc<Self> {
        Arc::new(EpochStore {
            path: None,
            state: Mutex::new(Ballot::default()),
        })
    }

    /// The sidecar path for a WAL rooted at `wal_path`.
    pub fn path_for(wal_path: &Path) -> PathBuf {
        sidecar_path(wal_path)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// The persisted ballot (epoch + last vote).
    pub fn ballot(&self) -> Ballot {
        self.state.lock().clone()
    }

    /// Raises the epoch to `epoch` if it is higher, persisting the new
    /// ballot first. Returns true when the epoch moved. Lower or equal
    /// epochs are ignored — the store is monotonic by construction.
    pub fn observe(&self, epoch: u64) -> Result<bool> {
        let mut state = self.state.lock();
        if epoch <= state.epoch {
            return Ok(false);
        }
        let mut next = state.clone();
        next.epoch = epoch;
        self.persist(&next)?;
        *state = next;
        Ok(true)
    }

    /// Bumps the epoch by one (promotion), persisting before returning
    /// the new value.
    pub fn bump(&self) -> Result<u64> {
        let mut state = self.state.lock();
        let mut next = state.clone();
        next.epoch += 1;
        self.persist(&next)?;
        *state = next;
        Ok(state.epoch)
    }

    /// Grants a vote to `candidate` at `epoch` if the ballot allows it:
    /// the epoch must be higher than our own, and we must not have voted
    /// for a *different* candidate at that epoch. A granted vote adopts
    /// the epoch (so a failed election still burns it) and is persisted
    /// before this returns true.
    pub fn grant_vote(&self, epoch: u64, candidate: &str) -> Result<bool> {
        let mut state = self.state.lock();
        if epoch <= state.epoch {
            return Ok(false);
        }
        if state.voted_epoch == epoch && state.voted_for != candidate {
            return Ok(false);
        }
        let next = Ballot {
            epoch,
            voted_epoch: epoch,
            voted_for: candidate.to_string(),
        };
        self.persist(&next)?;
        *state = next;
        Ok(true)
    }

    /// Writes `next` through a temp file + rename + fsync, so the
    /// sidecar is always a complete ballot (old or new, never torn).
    fn persist(&self, next: &Ballot) -> Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let tmp = path.with_extension("epoch.tmp");
        (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&encode(next))?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)?;
            // Rename durability needs the directory synced too.
            if let Some(dir) = path.parent() {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })()
        .map_err(|e| Error::Wal(format!("persist epoch sidecar: {e}")))
    }
}

fn sidecar_path(wal_path: &Path) -> PathBuf {
    let mut name = wal_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".epoch");
    wal_path.with_file_name(name)
}

fn encode(b: &Ballot) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 8 + 8 + 2 + b.voted_for.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&b.epoch.to_be_bytes());
    out.extend_from_slice(&b.voted_epoch.to_be_bytes());
    let name = b.voted_for.as_bytes();
    out.extend_from_slice(&(name.len().min(u16::MAX as usize) as u16).to_be_bytes());
    out.extend_from_slice(&name[..name.len().min(u16::MAX as usize)]);
    out
}

fn decode(bytes: &[u8]) -> Option<Ballot> {
    if bytes.len() < MAGIC.len() + 18 || bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let at = MAGIC.len();
    let epoch = u64::from_be_bytes(bytes[at..at + 8].try_into().ok()?);
    let voted_epoch = u64::from_be_bytes(bytes[at + 8..at + 16].try_into().ok()?);
    let nlen = u16::from_be_bytes(bytes[at + 16..at + 18].try_into().ok()?) as usize;
    let rest = &bytes[at + 18..];
    if rest.len() < nlen {
        return None;
    }
    let voted_for = String::from_utf8(rest[..nlen].to_vec()).ok()?;
    Some(Ballot {
        epoch,
        voted_epoch,
        voted_for,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bf-epoch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn bump_and_observe_persist_across_reopen() {
        let dir = tmpdir("bump");
        let wal = dir.join("db.wal");
        let store = EpochStore::open(&wal).unwrap();
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.bump().unwrap(), 1);
        assert!(store.observe(5).unwrap());
        assert!(!store.observe(3).unwrap());
        drop(store);
        let store = EpochStore::open(&wal).unwrap();
        assert_eq!(store.epoch(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vote_is_single_per_epoch_and_persisted() {
        let dir = tmpdir("vote");
        let wal = dir.join("db.wal");
        let store = EpochStore::open(&wal).unwrap();
        assert!(store.grant_vote(3, "node-b").unwrap());
        // The grant adopted epoch 3, so any further ballot at or below it
        // is refused — one vote per epoch, ever.
        assert!(!store.grant_vote(3, "node-c").unwrap());
        assert!(!store.grant_vote(2, "node-b").unwrap());
        assert_eq!(store.epoch(), 3);
        drop(store);
        let store = EpochStore::open(&wal).unwrap();
        let b = store.ballot();
        assert_eq!(
            (b.epoch, b.voted_epoch, b.voted_for.as_str()),
            (3, 3, "node-b")
        );
        assert!(!store.grant_vote(3, "node-c").unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_sidecar_reads_as_fresh() {
        let dir = tmpdir("torn");
        let wal = dir.join("db.wal");
        std::fs::write(EpochStore::path_for(&wal), b"BFEPO1\x00").unwrap();
        let store = EpochStore::open(&wal).unwrap();
        assert_eq!(store.epoch(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
