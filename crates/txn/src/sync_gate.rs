//! The synchronous-replication commit gate.
//!
//! `SET SYNC_REPLICAS n` asks that a commit acknowledgement wait until
//! `n` replicas have confirmed (via `REPL_ACK`) applying everything up
//! to the commit's end LSN. The gate **composes with** the merged
//! durable horizon rather than replacing it: callers first wait for
//! local durability (min over WAL shard frontiers, the PR 4 invariant)
//! and then park here until the n-th highest replica ack covers the
//! commit. Own-shard acks therefore still cannot outrun a cross-shard
//! dependency — the gate only ever *adds* a condition on top of the
//! horizon every ack already waits for.
//!
//! The gate is also where fencing bites the commit path: a member that
//! observed a higher epoch (or verifiably lost its lease) flips
//! `fenced`, and every waiter — including ones already parked — returns
//! [`AckOutcome::Fenced`] instead of acknowledging. Degrading (acking
//! without the replica quorum) is only permitted while the node holds a
//! valid leadership lease; a fenced or lease-less node blocks, because
//! an ack it hands out could be lost to a promotion it cannot see.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// How a gated commit was acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// Replicated to the required number of replicas (or no sync
    /// replication configured).
    Synced,
    /// The degrade policy fired: acknowledged on local durability alone
    /// because the replicas fell away while we verifiably still led.
    Degraded,
    /// This node is fenced (stale epoch or lapsed lease): the commit is
    /// locally durable but MUST NOT be acknowledged — the client has to
    /// re-route to the current primary and retry.
    Fenced,
}

/// What to do when `sync_replicas` cannot be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never ack without the replica quorum; commits wait indefinitely
    /// (checking for fencing as they wait).
    Block,
    /// Wait up to the window, then ack on local durability alone —
    /// but only while the node holds a valid lease (see module docs).
    Degrade(Duration),
}

/// Connected sync-capable replicas, by registration id, with the highest
/// LSN each has acked.
#[derive(Default)]
struct GateInner {
    peers: HashMap<u64, u64>,
    next_id: u64,
}

/// Shared gate state; one per WAL (reachable from every
/// [`crate::wal::CommitTicket`]).
pub struct SyncGate {
    /// Replica acks required per commit (0 = sync replication off).
    required: AtomicUsize,
    policy: Mutex<SyncPolicy>,
    /// Stale epoch observed or leadership verifiably lost: never ack.
    fenced: AtomicBool,
    /// True while the node holds a majority lease (or runs standalone,
    /// where the lease is vacuously ours). Gates the degrade path only.
    lease_ok: AtomicBool,
    /// Where writes should go instead, when known (set at fencing time).
    leader_hint: Mutex<Option<String>>,
    inner: Mutex<GateInner>,
    cv: Condvar,
    /// Gauge: the n-th-highest acked LSN at the last recompute.
    replicated: AtomicU64,
    degraded_commits: AtomicU64,
    fenced_commits: AtomicU64,
}

impl Default for SyncGate {
    fn default() -> Self {
        SyncGate {
            required: AtomicUsize::new(0),
            policy: Mutex::new(SyncPolicy::Degrade(Duration::from_secs(1))),
            fenced: AtomicBool::new(false),
            lease_ok: AtomicBool::new(true),
            leader_hint: Mutex::new(None),
            inner: Mutex::new(GateInner::default()),
            cv: Condvar::new(),
            replicated: AtomicU64::new(0),
            degraded_commits: AtomicU64::new(0),
            fenced_commits: AtomicU64::new(0),
        }
    }
}

impl SyncGate {
    /// Blocks until the commit ending at `lsn` may be acknowledged, and
    /// says how. Callers must already have waited for local durability.
    pub fn wait_acked(&self, lsn: u64) -> AckOutcome {
        if self.required.load(Ordering::Acquire) == 0 {
            return if self.fenced.load(Ordering::Acquire) {
                self.fenced_commits.fetch_add(1, Ordering::Relaxed);
                AckOutcome::Fenced
            } else {
                AckOutcome::Synced
            };
        }
        let policy = *self.policy.lock();
        let start = Instant::now();
        let mut inner = self.inner.lock();
        loop {
            if self.fenced.load(Ordering::Acquire) {
                self.fenced_commits.fetch_add(1, Ordering::Relaxed);
                return AckOutcome::Fenced;
            }
            let n = self.required.load(Ordering::Acquire);
            if n == 0 || self.nth_acked(&inner, n) >= lsn {
                return AckOutcome::Synced;
            }
            let may_degrade = self.lease_ok.load(Ordering::Acquire);
            match policy {
                SyncPolicy::Degrade(window) if may_degrade => {
                    // With nobody connected to ack, the window is pure
                    // added latency: a leaseholder degrades immediately.
                    // This is what keeps a freshly promoted primary (no
                    // replicas yet) responsive.
                    if inner.peers.is_empty() || start.elapsed() >= window {
                        self.degraded_commits.fetch_add(1, Ordering::Relaxed);
                        return AckOutcome::Degraded;
                    }
                    self.cv.wait_until(&mut inner, start + window);
                }
                // Block policy — or a lease-less node, which must not
                // degrade no matter the policy. Re-check fencing often.
                _ => {
                    self.cv.wait_for(&mut inner, Duration::from_millis(50));
                }
            }
        }
    }

    /// Registers a connected replica; its acked LSN starts at 0.
    pub fn register_peer(&self) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.peers.insert(id, 0);
        self.cv.notify_all();
        id
    }

    /// Advances peer `id`'s acked LSN (never backward) and wakes
    /// waiters whose quorum may now be satisfied.
    pub fn advance_peer(&self, id: u64, lsn: u64) {
        let mut inner = self.inner.lock();
        if let Some(h) = inner.peers.get_mut(&id) {
            if lsn <= *h {
                return;
            }
            *h = lsn;
        } else {
            return;
        }
        let n = self.required.load(Ordering::Acquire).max(1);
        self.replicated
            .fetch_max(self.nth_acked(&inner, n), Ordering::AcqRel);
        self.cv.notify_all();
    }

    /// Drops a disconnected peer. Waiters wake so the degrade path can
    /// notice the quorum shrank.
    pub fn remove_peer(&self, id: u64) {
        self.inner.lock().peers.remove(&id);
        self.cv.notify_all();
    }

    /// The n-th highest acked LSN, or 0 when fewer than `n` replicas
    /// are connected.
    fn nth_acked(&self, inner: &GateInner, n: usize) -> u64 {
        if inner.peers.len() < n {
            return 0;
        }
        let mut acks: Vec<u64> = inner.peers.values().copied().collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        acks[n - 1]
    }

    /// Sets the required replica count (`SET SYNC_REPLICAS n`).
    pub fn set_required(&self, n: usize) {
        self.required.store(n, Ordering::Release);
        self.cv.notify_all();
    }

    /// Current required replica count.
    pub fn required(&self) -> usize {
        self.required.load(Ordering::Acquire)
    }

    /// Sets the degrade-or-block policy (`SET SYNC_POLICY ...`).
    pub fn set_policy(&self, p: SyncPolicy) {
        *self.policy.lock() = p;
        self.cv.notify_all();
    }

    /// Current policy.
    pub fn policy(&self) -> SyncPolicy {
        *self.policy.lock()
    }

    /// Fences the node: every present and future commit wait returns
    /// [`AckOutcome::Fenced`]. `leader` names where writes go now, when
    /// known. Idempotent.
    pub fn fence(&self, leader: Option<String>) {
        if let Some(l) = leader {
            *self.leader_hint.lock() = Some(l);
        }
        self.fenced.store(true, Ordering::Release);
        let _ = self.inner.lock();
        self.cv.notify_all();
    }

    /// Clears the fence (a node re-joining as a leader after proving a
    /// fresh majority — never called on mere reconnect).
    pub fn unfence(&self) {
        self.fenced.store(false, Ordering::Release);
        self.cv.notify_all();
    }

    /// True when fenced.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// Updates the lease view (majority held / lost). Losing the lease
    /// does not fence by itself, but it forbids degrading.
    pub fn set_lease_ok(&self, ok: bool) {
        self.lease_ok.store(ok, Ordering::Release);
        self.cv.notify_all();
    }

    /// True while the node may degrade (holds the lease or standalone).
    pub fn lease_ok(&self) -> bool {
        self.lease_ok.load(Ordering::Acquire)
    }

    /// The last known primary, for rejection messages.
    pub fn leader_hint(&self) -> Option<String> {
        self.leader_hint.lock().clone()
    }

    /// Records where the primary is (kept fresh by the HA loops so
    /// fencing can name it).
    pub fn set_leader_hint(&self, leader: Option<String>) {
        *self.leader_hint.lock() = leader;
    }

    /// Connected sync-capable peers.
    pub fn peer_count(&self) -> usize {
        self.inner.lock().peers.len()
    }

    /// Gauge: highest LSN known replicated to the required quorum.
    pub fn replicated_lsn(&self) -> u64 {
        self.replicated.load(Ordering::Acquire)
    }

    /// Gauge: commits acknowledged via the degrade path.
    pub fn degraded_commits(&self) -> u64 {
        self.degraded_commits.load(Ordering::Relaxed)
    }

    /// Gauge: commit waits refused because the node was fenced.
    pub fn fenced_commits(&self) -> u64 {
        self.fenced_commits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn no_sync_replicas_is_transparent() {
        let g = SyncGate::default();
        assert_eq!(g.wait_acked(100), AckOutcome::Synced);
    }

    #[test]
    fn quorum_ack_releases_waiter() {
        let g = Arc::new(SyncGate::default());
        g.set_required(1);
        g.set_policy(SyncPolicy::Block);
        let p = g.register_peer();
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || g2.wait_acked(10));
        std::thread::sleep(Duration::from_millis(30));
        g.advance_peer(p, 10);
        assert_eq!(t.join().unwrap(), AckOutcome::Synced);
        assert_eq!(g.replicated_lsn(), 10);
    }

    #[test]
    fn nth_highest_ack_gates_two_replicas() {
        let g = SyncGate::default();
        g.set_required(2);
        g.set_policy(SyncPolicy::Block);
        let a = g.register_peer();
        let b = g.register_peer();
        g.advance_peer(a, 50);
        // Only one replica at 50: a 2-replica commit at 20 must not pass.
        let inner = g.inner.lock();
        assert_eq!(g.nth_acked(&inner, 2), 0);
        drop(inner);
        g.advance_peer(b, 20);
        let inner = g.inner.lock();
        assert_eq!(g.nth_acked(&inner, 2), 20);
    }

    #[test]
    fn degrade_fires_without_peers_and_after_window() {
        let g = SyncGate::default();
        g.set_required(1);
        g.set_policy(SyncPolicy::Degrade(Duration::from_millis(40)));
        // No peers: immediate degrade.
        let t0 = Instant::now();
        assert_eq!(g.wait_acked(5), AckOutcome::Degraded);
        assert!(t0.elapsed() < Duration::from_millis(40));
        // A silent peer: degrade only after the window.
        let _p = g.register_peer();
        let t0 = Instant::now();
        assert_eq!(g.wait_acked(5), AckOutcome::Degraded);
        assert!(t0.elapsed() >= Duration::from_millis(35));
        assert_eq!(g.degraded_commits(), 2);
    }

    #[test]
    fn lease_loss_blocks_degrade_and_fence_rejects() {
        let g = Arc::new(SyncGate::default());
        g.set_required(1);
        g.set_policy(SyncPolicy::Degrade(Duration::from_millis(10)));
        g.set_lease_ok(false);
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || g2.wait_acked(5));
        // Without the lease the degrade window must NOT fire...
        std::thread::sleep(Duration::from_millis(60));
        assert!(!t.is_finished());
        // ...and fencing releases the waiter with a refusal.
        g.fence(Some("db-b:4001".into()));
        assert_eq!(t.join().unwrap(), AckOutcome::Fenced);
        assert_eq!(g.fenced_commits(), 1);
        assert_eq!(g.leader_hint().as_deref(), Some("db-b:4001"));
    }

    #[test]
    fn peer_disconnect_lets_leaseholder_degrade() {
        let g = Arc::new(SyncGate::default());
        g.set_required(1);
        g.set_policy(SyncPolicy::Degrade(Duration::from_secs(5)));
        let p = g.register_peer();
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || g2.wait_acked(5));
        std::thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished());
        g.remove_peer(p);
        assert_eq!(t.join().unwrap(), AckOutcome::Degraded);
    }
}
