//! The lock manager: hierarchical strict two-phase locking.
//!
//! Tables take intention locks (`IS`/`IX`), scans and DDL take `S`/`X`
//! table locks, and individual rows take `S`/`X`. Lock waits are bounded by
//! a deadline; timing out returns [`Error::LockTimeout`] and the caller is
//! expected to abort and retry — this is the deadlock-avoidance policy.

use std::collections::HashMap;
use std::hash::Hash;
use std::time::{Duration, Instant};

use bullfrog_common::{Error, Result, RowId, TableId, TxnId};
use parking_lot::{Condvar, Mutex};

/// Lock modes, in the classical hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared (table level).
    IS,
    /// Intention exclusive (table level).
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive (table level).
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// The standard multigranularity compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// Least upper bound of two modes — the mode a transaction holds after
    /// requesting `other` while already holding `self` (lock upgrade).
    pub fn combine(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            (S, IS) | (IS, S) => S,
            (IX, IS) | (IS, IX) => IX,
            _ => unreachable!("covered by the equality fast path"),
        }
    }

    /// True when holding `self` already implies `other`'s permissions.
    pub fn covers(self, other: LockMode) -> bool {
        self.combine(other) == self
    }
}

/// What a lock protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKey {
    /// A whole table.
    Table(TableId),
    /// One row.
    Row(TableId, RowId),
}

impl LockKey {
    /// The table this key belongs to (for error messages).
    pub fn table(self) -> TableId {
        match self {
            LockKey::Table(t) | LockKey::Row(t, _) => t,
        }
    }
}

/// Per-key lock state: which transactions hold which modes, plus a FIFO
/// wait queue for fairness (without it, a continuous stream of compatible
/// intention locks starves table-X requests — exactly what an eager
/// migration needs).
#[derive(Debug, Default)]
struct LockState {
    holders: Vec<(TxnId, LockMode)>,
    waiters: Vec<(TxnId, LockMode)>,
}

impl LockState {
    /// Can `txn` acquire `mode` given the other holders and the queue?
    /// Transactions that already hold the key (lock upgrades) bypass the
    /// queue; everyone else must be compatible with all waiters ahead of
    /// them, so a queued writer blocks later readers. Holds by `ally` are
    /// treated as compatible (see [`LockManager::acquire_deadline_ally`]).
    fn grantable(&self, txn: TxnId, mode: LockMode, ally: Option<TxnId>) -> bool {
        let compatible_with_holders = self
            .holders
            .iter()
            .filter(|(t, _)| *t != txn && Some(*t) != ally)
            .all(|(_, held)| held.compatible(mode));
        if !compatible_with_holders {
            return false;
        }
        if self.held_mode(txn).is_some() {
            return true; // upgrade: jump the queue
        }
        for (t, waiting_mode) in &self.waiters {
            if *t == txn {
                return true; // everyone ahead of us is compatible
            }
            if !waiting_mode.compatible(mode) {
                return false;
            }
        }
        true
    }

    fn enqueue(&mut self, txn: TxnId, mode: LockMode) {
        if !self.waiters.iter().any(|(t, _)| *t == txn) {
            self.waiters.push((txn, mode));
        }
    }

    fn dequeue(&mut self, txn: TxnId) {
        self.waiters.retain(|(t, _)| *t != txn);
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        if let Some(slot) = self.holders.iter_mut().find(|(t, _)| *t == txn) {
            slot.1 = slot.1.combine(mode);
        } else {
            self.holders.push((txn, mode));
        }
    }

    fn held_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }
}

struct Shard {
    locks: Mutex<HashMap<LockKey, LockState>>,
    /// Woken whenever any lock in this shard is released.
    released: Condvar,
}

/// The sharded lock table.
///
/// Granting a lock takes one shard mutex; waiting blocks on the shard's
/// condvar and rechecks on every release. Shards remove the obvious global
/// bottleneck (the paper partitions its migration data structures for the
/// same reason).
pub struct LockManager {
    shards: Vec<Shard>,
    default_timeout: Duration,
}

/// Number of lock-table shards (power of two).
const SHARDS: usize = 64;

impl LockManager {
    /// Creates a lock manager with the given wait deadline.
    pub fn new(default_timeout: Duration) -> Self {
        LockManager {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    locks: Mutex::new(HashMap::new()),
                    released: Condvar::new(),
                })
                .collect(),
            default_timeout,
        }
    }

    /// The configured lock-wait deadline.
    pub fn timeout(&self) -> Duration {
        self.default_timeout
    }

    fn shard(&self, key: &LockKey) -> &Shard {
        // Deterministic FNV (not the per-process-seeded DefaultHasher), so
        // shard assignment is reproducible across runs — same reasoning as
        // the trackers' partitioning.
        &self.shards[(bullfrog_common::fnv_hash_one(key) as usize) & (SHARDS - 1)]
    }

    /// Acquires `mode` on `key` for `txn`, blocking up to the default
    /// deadline. Returns `true` when this call made `txn` a **new holder**
    /// of the key (callers record it for release exactly once); upgrades of
    /// an already-held key return `false`.
    pub fn acquire(&self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<bool> {
        self.acquire_deadline(txn, key, mode, self.default_timeout)
    }

    /// As [`LockManager::acquire`] with an explicit deadline.
    pub fn acquire_deadline(
        &self,
        txn: TxnId,
        key: LockKey,
        mode: LockMode,
        timeout: Duration,
    ) -> Result<bool> {
        self.acquire_deadline_ally(txn, key, mode, timeout, None)
    }

    /// As [`LockManager::acquire_deadline`], but holds by `ally` are
    /// treated as compatible with the request.
    ///
    /// This exists for lazy migration transactions, which run on the
    /// thread of the client transaction that triggered them: the client
    /// may hold X locks on input rows it wrote itself (co-maintained
    /// plans with unfrozen inputs), and blocking on those locks would
    /// deadlock the thread against itself. The ally never waits — it is
    /// suspended while the migration runs — so only its holds matter.
    pub fn acquire_deadline_ally(
        &self,
        txn: TxnId,
        key: LockKey,
        mode: LockMode,
        timeout: Duration,
        ally: Option<TxnId>,
    ) -> Result<bool> {
        let shard = self.shard(&key);
        let deadline = Instant::now() + timeout;
        let mut locks = shard.locks.lock();
        loop {
            let state = locks.entry(key).or_default();
            if let Some(held) = state.held_mode(txn) {
                if held.covers(mode) {
                    state.dequeue(txn);
                    return Ok(false); // already strong enough
                }
            }
            if state.grantable(txn, mode, ally) {
                let newly = state.held_mode(txn).is_none();
                state.grant(txn, mode);
                state.dequeue(txn);
                // A grant can unblock queued requests behind us (e.g. two
                // queued readers); let them recheck.
                shard.released.notify_all();
                return Ok(newly);
            }
            state.enqueue(txn, mode);
            if shard.released.wait_until(&mut locks, deadline).timed_out() {
                if let Some(state) = locks.get_mut(&key) {
                    state.dequeue(txn);
                    if state.holders.is_empty() && state.waiters.is_empty() {
                        locks.remove(&key);
                    }
                }
                shard.released.notify_all();
                return Err(Error::LockTimeout {
                    txn,
                    table: key.table(),
                });
            }
        }
    }

    /// Non-blocking acquire; `Ok(false)`/`Ok(true)` as in `acquire`, error
    /// when the lock is unavailable *now*.
    pub fn try_acquire(&self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<bool> {
        let shard = self.shard(&key);
        let mut locks = shard.locks.lock();
        let state = locks.entry(key).or_default();
        if let Some(held) = state.held_mode(txn) {
            if held.covers(mode) {
                return Ok(false);
            }
        }
        if state.grantable(txn, mode, None) {
            let newly = state.held_mode(txn).is_none();
            state.grant(txn, mode);
            Ok(newly)
        } else {
            Err(Error::LockTimeout {
                txn,
                table: key.table(),
            })
        }
    }

    /// Releases every given key held by `txn` (commit/abort time — strict
    /// 2PL never releases early).
    pub fn release_all(&self, txn: TxnId, keys: impl IntoIterator<Item = LockKey>) {
        for key in keys {
            let shard = self.shard(&key);
            let mut locks = shard.locks.lock();
            if let Some(state) = locks.get_mut(&key) {
                state.holders.retain(|(t, _)| *t != txn);
                state.dequeue(txn);
                if state.holders.is_empty() && state.waiters.is_empty() {
                    locks.remove(&key);
                }
            }
            shard.released.notify_all();
        }
    }

    /// The mode `txn` currently holds on `key`, if any (diagnostics).
    pub fn held(&self, txn: TxnId, key: LockKey) -> Option<LockMode> {
        self.shard(&key).locks.lock().get(&key)?.held_mode(txn)
    }

    /// Total number of keys with at least one holder (diagnostics/tests).
    pub fn locked_key_count(&self) -> usize {
        self.shards.iter().map(|s| s.locks.lock().len()).sum()
    }
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("locked_keys", &self.locked_key_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const TABLE: TableId = TableId(1);

    fn row(n: u16) -> LockKey {
        LockKey::Row(TABLE, RowId::new(0, n))
    }

    fn lm() -> LockManager {
        LockManager::new(Duration::from_millis(20))
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        let compat = [
            (IS, IS, true),
            (IS, IX, true),
            (IS, S, true),
            (IS, SIX, true),
            (IS, X, false),
            (IX, IX, true),
            (IX, S, false),
            (IX, SIX, false),
            (IX, X, false),
            (S, S, true),
            (S, SIX, false),
            (S, X, false),
            (SIX, SIX, false),
            (SIX, X, false),
            (X, X, false),
        ];
        for (a, b, expect) in compat {
            assert_eq!(a.compatible(b), expect, "{a:?} vs {b:?}");
            assert_eq!(b.compatible(a), expect, "{b:?} vs {a:?} (symmetry)");
        }
    }

    #[test]
    fn combine_lattice() {
        use LockMode::*;
        assert_eq!(S.combine(IX), SIX);
        assert_eq!(IX.combine(S), SIX);
        assert_eq!(IS.combine(IX), IX);
        assert_eq!(S.combine(X), X);
        assert_eq!(SIX.combine(IS), SIX);
        assert!(X.covers(S));
        assert!(SIX.covers(IX));
        assert!(!S.covers(IX));
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = lm();
        assert!(lm.acquire(T1, row(1), LockMode::S).unwrap());
        assert!(lm.acquire(T2, row(1), LockMode::S).unwrap());
        assert_eq!(lm.held(T1, row(1)), Some(LockMode::S));
        assert_eq!(lm.held(T2, row(1)), Some(LockMode::S));
    }

    #[test]
    fn exclusive_blocks_until_timeout() {
        let lm = lm();
        lm.acquire(T1, row(1), LockMode::X).unwrap();
        let err = lm.acquire(T2, row(1), LockMode::S).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { txn: T2, .. }));
    }

    #[test]
    fn reacquire_is_idempotent() {
        let lm = lm();
        assert!(lm.acquire(T1, row(1), LockMode::X).unwrap());
        assert!(!lm.acquire(T1, row(1), LockMode::X).unwrap());
        assert!(!lm.acquire(T1, row(1), LockMode::S).unwrap(), "X covers S");
    }

    #[test]
    fn upgrade_s_to_x_when_sole_holder() {
        let lm = lm();
        assert!(lm.acquire(T1, row(1), LockMode::S).unwrap());
        // Upgrade succeeds but the txn is not a *new* holder.
        assert!(!lm.acquire(T1, row(1), LockMode::X).unwrap());
        assert_eq!(lm.held(T1, row(1)), Some(LockMode::X));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = lm();
        lm.acquire(T1, row(1), LockMode::S).unwrap();
        lm.acquire(T2, row(1), LockMode::S).unwrap();
        assert!(lm.acquire(T1, row(1), LockMode::X).is_err());
    }

    #[test]
    fn release_wakes_waiter() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        lm.acquire(T1, row(1), LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || lm2.acquire(T2, row(1), LockMode::X));
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(T1, [row(1)]);
        assert!(waiter.join().unwrap().is_ok());
        assert_eq!(lm.held(T2, row(1)), Some(LockMode::X));
    }

    #[test]
    fn intention_locks_on_table() {
        let lm = lm();
        let tbl = LockKey::Table(TABLE);
        lm.acquire(T1, tbl, LockMode::IX).unwrap();
        lm.acquire(T2, tbl, LockMode::IS).unwrap();
        // A third txn cannot take X while intents are held.
        assert!(lm.acquire(TxnId(3), tbl, LockMode::X).is_err());
        lm.release_all(T1, [tbl]);
        lm.release_all(T2, [tbl]);
        lm.acquire(TxnId(3), tbl, LockMode::X).unwrap();
    }

    #[test]
    fn try_acquire_does_not_block() {
        let lm = lm();
        lm.acquire(T1, row(1), LockMode::X).unwrap();
        let t0 = Instant::now();
        assert!(lm.try_acquire(T2, row(1), LockMode::S).is_err());
        assert!(t0.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn release_all_cleans_table() {
        let lm = lm();
        for i in 0..10 {
            lm.acquire(T1, row(i), LockMode::X).unwrap();
        }
        assert_eq!(lm.locked_key_count(), 10);
        lm.release_all(T1, (0..10).map(row));
        assert_eq!(lm.locked_key_count(), 0);
    }

    #[test]
    fn writer_is_not_starved_by_reader_stream() {
        // A continuous stream of IS lockers must not starve a queued X
        // request (the eager-migration pattern).
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        let key = LockKey::Table(TABLE);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for r in 0..3u64 {
            let lm = Arc::clone(&lm);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let txn = TxnId(1000 + r * 1_000_000 + i);
                    if lm.acquire(txn, key, LockMode::IS).is_ok() {
                        std::thread::sleep(Duration::from_micros(200));
                        lm.release_all(txn, [key]);
                    }
                    i += 1;
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        lm.acquire(TxnId(1), key, LockMode::X).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "X request starved for {:?}",
            t0.elapsed()
        );
        lm.release_all(TxnId(1), [key]);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn timed_out_waiter_leaves_no_queue_debris() {
        let lm = lm();
        lm.acquire(T1, row(1), LockMode::X).unwrap();
        assert!(lm.acquire(T2, row(1), LockMode::S).is_err());
        // T2 timed out; its queue entry must not block a fresh reader
        // after T1 releases.
        lm.release_all(T1, [row(1)]);
        lm.acquire(TxnId(3), row(1), LockMode::S).unwrap();
        assert_eq!(lm.locked_key_count(), 1);
    }

    #[test]
    fn concurrent_counter_under_x_locks() {
        // 8 threads × 100 increments through an X lock: no lost updates.
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        let counter = Arc::new(Mutex::new(0u64));
        let key = row(1);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let txn = TxnId(t * 1000 + i + 1);
                    lm.acquire(txn, key, LockMode::X).unwrap();
                    {
                        let mut c = counter.lock();
                        let v = *c;
                        std::thread::yield_now();
                        *c = v + 1;
                    }
                    lm.release_all(txn, [key]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
    }
}
