//! The commit-timestamp oracle (Snapshot engine mode).
//!
//! Commit timestamps are drawn under the WAL's core mutex (see
//! [`crate::wal::Wal::append_commit_durable`]) so timestamp order and LSN
//! order agree: if `ts_a < ts_b` then `lsn_a < lsn_b`. Readers never see a
//! timestamp until its transaction finished installing versions — the
//! **stable** timestamp trails the oldest drawn-but-unfinished commit, and
//! new snapshots read at the stable point. That makes a snapshot an
//! ordinary prefix of the commit order with no holes: every version at or
//! below it is fully installed.
//!
//! The oracle also tracks active snapshots. Their minimum bounds the
//! version-GC horizon (a chain node may be pruned only when no registered
//! snapshot can still need it), and the per-snapshot *writer* flag lets a
//! migration flip quiesce in-flight writers that began before the flip
//! (the SI analogue of the S-lock barrier the 2PL granule reads rely on).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct OracleInner {
    /// Drawn but not yet finished commit timestamps.
    in_flight: BTreeSet<u64>,
    /// Highest commit timestamp ever drawn.
    last: u64,
    /// Everything at or below this is fully installed.
    stable: u64,
    /// Active snapshots: registration seq → (snapshot ts, has writes).
    snapshots: BTreeMap<u64, (u64, bool)>,
    /// Next registration seq.
    next_seq: u64,
}

impl OracleInner {
    fn recompute_stable(&mut self) {
        let candidate = match self.in_flight.first() {
            Some(min) => min - 1,
            None => self.last,
        };
        self.stable = self.stable.max(candidate);
    }
}

/// Draws commit timestamps, tracks the stable horizon, and registers
/// active snapshots. One per [`crate::wal::Wal`].
#[derive(Default)]
pub struct TsOracle {
    inner: Mutex<OracleInner>,
    /// Signaled when a snapshot releases or a commit finishes (the flip
    /// quiesce and GC both park here).
    changed: Condvar,
    /// Lock-free mirror of `inner.stable` for monitoring.
    stable: AtomicU64,
}

impl TsOracle {
    /// A fresh oracle starting at timestamp 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fast-forwards the timestamp space past `ts` (recovery: resume past
    /// the highest commit timestamp found in the log or checkpoint, so
    /// post-restart commits never reuse a persisted timestamp).
    pub fn resume_past(&self, ts: u64) {
        let mut inner = self.inner.lock();
        if inner.last < ts {
            inner.last = ts;
        }
        inner.recompute_stable();
        self.stable.store(inner.stable, Ordering::Release);
    }

    /// Draws the next commit timestamp. The caller must already hold the
    /// WAL core mutex (that is what aligns timestamp and LSN order) and
    /// must call [`TsOracle::finish`] after installing its versions.
    pub fn draw(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.last += 1;
        let ts = inner.last;
        inner.in_flight.insert(ts);
        ts
    }

    /// Marks `ts` fully installed, advancing the stable horizon past it
    /// once every older drawn timestamp has also finished.
    pub fn finish(&self, ts: u64) {
        let mut inner = self.inner.lock();
        inner.in_flight.remove(&ts);
        inner.recompute_stable();
        self.stable.store(inner.stable, Ordering::Release);
        self.changed.notify_all();
    }

    /// The stable timestamp: the snapshot point handed to new readers.
    pub fn stable(&self) -> u64 {
        self.stable.load(Ordering::Acquire)
    }

    /// Blocks until the stable horizon reaches `ts`, i.e. until this
    /// commit is visible to new snapshots. Commit acknowledgement must
    /// park here: with concurrent committers, `finish(ts)` alone does
    /// not advance the horizon past `ts` while an older timestamp is
    /// still installing, and acking before visibility lets a caller
    /// publish "done" markers (e.g. migration granule state) that a
    /// fresh snapshot then contradicts. Bounded: every drawn timestamp
    /// is finished promptly by its committer. Returns false on timeout.
    pub fn wait_stable(&self, ts: u64, timeout: Duration) -> bool {
        if self.stable() >= ts {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if inner.stable >= ts {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.changed.wait_for(&mut inner, deadline - now);
        }
    }

    /// Highest commit timestamp drawn so far.
    pub fn last_drawn(&self) -> u64 {
        self.inner.lock().last
    }

    /// Registers a snapshot at the current stable timestamp; the returned
    /// handle unregisters on drop. Registration and horizon computation
    /// share one lock, so GC can never prune a version a just-registered
    /// snapshot still needs.
    pub fn begin_snapshot(self: &Arc<Self>) -> SnapshotHandle {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let ts = inner.stable;
        inner.snapshots.insert(seq, (ts, false));
        SnapshotHandle {
            oracle: Arc::clone(self),
            seq,
            ts,
        }
    }

    /// Flags the snapshot registered as `seq` as a writer (first in-place
    /// write); the flip quiesce waits on these.
    pub fn mark_writer(&self, seq: u64) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.snapshots.get_mut(&seq) {
            entry.1 = true;
        }
    }

    fn release(&self, seq: u64) {
        let mut inner = self.inner.lock();
        inner.snapshots.remove(&seq);
        self.changed.notify_all();
    }

    /// The version-GC horizon: the oldest timestamp any active snapshot
    /// (or a brand-new one) could read at. Chains may be pruned below it.
    pub fn gc_horizon(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .snapshots
            .values()
            .map(|(ts, _)| *ts)
            .min()
            .unwrap_or(inner.stable)
            .min(inner.stable)
    }

    /// Number of currently registered snapshots.
    pub fn active_snapshots(&self) -> usize {
        self.inner.lock().snapshots.len()
    }

    /// A barrier sequence: snapshots registered before this call have
    /// `seq` below the returned value. Pair with
    /// [`TsOracle::quiesce_writers_before`].
    pub fn barrier_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Blocks until no registered snapshot with `seq < barrier` has the
    /// writer flag set — i.e. every transaction that started before the
    /// barrier and wrote anything has committed or aborted. Returns false
    /// on timeout. A migration flip uses this so granule reads (which run
    /// lock-free at their own snapshot) can never miss a pre-flip
    /// straggler's in-flight write to an input table.
    pub fn quiesce_writers_before(&self, barrier: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let blocked = inner
                .snapshots
                .range(..barrier)
                .any(|(_, (_, writer))| *writer);
            if !blocked {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.changed.wait_for(&mut inner, deadline - now);
        }
    }
}

impl std::fmt::Debug for TsOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsOracle")
            .field("stable", &self.stable())
            .finish()
    }
}

/// An active snapshot registration; unregisters on drop.
pub struct SnapshotHandle {
    oracle: Arc<TsOracle>,
    seq: u64,
    ts: u64,
}

impl SnapshotHandle {
    /// The snapshot timestamp reads run at.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Registration sequence (quiesce barrier ordering).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Flags this snapshot's transaction as a writer.
    pub fn mark_writer(&self) {
        self.oracle.mark_writer(self.seq);
    }
}

impl std::fmt::Debug for SnapshotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHandle")
            .field("seq", &self.seq)
            .field("ts", &self.ts)
            .finish()
    }
}

impl Drop for SnapshotHandle {
    fn drop(&mut self) {
        self.oracle.release(self.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_trails_oldest_in_flight() {
        let o = Arc::new(TsOracle::new());
        assert_eq!(o.stable(), 0);
        let a = o.draw();
        let b = o.draw();
        assert_eq!((a, b), (1, 2));
        assert_eq!(o.stable(), 0, "nothing finished yet");
        o.finish(b);
        assert_eq!(o.stable(), 0, "ts 1 still installing");
        o.finish(a);
        assert_eq!(o.stable(), 2, "prefix complete");
    }

    #[test]
    fn wait_stable_blocks_until_prefix_finishes() {
        let o = Arc::new(TsOracle::new());
        let a = o.draw();
        let b = o.draw();
        o.finish(b);
        assert!(
            !o.wait_stable(b, Duration::from_millis(20)),
            "ts 1 still installing, ts 2 must not be visible"
        );
        let o2 = Arc::clone(&o);
        let h = std::thread::spawn(move || o2.wait_stable(b, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        o.finish(a);
        assert!(h.join().unwrap());
        assert!(o.wait_stable(a, Duration::from_millis(1)));
    }

    #[test]
    fn snapshots_pin_the_gc_horizon() {
        let o = Arc::new(TsOracle::new());
        let t = o.draw();
        o.finish(t);
        let snap = o.begin_snapshot();
        assert_eq!(snap.ts(), 1);
        for _ in 0..3 {
            let t = o.draw();
            o.finish(t);
        }
        assert_eq!(o.stable(), 4);
        assert_eq!(o.gc_horizon(), 1, "held down by the old snapshot");
        drop(snap);
        assert_eq!(o.gc_horizon(), 4);
        assert_eq!(o.active_snapshots(), 0);
    }

    #[test]
    fn quiesce_waits_for_pre_barrier_writers() {
        let o = Arc::new(TsOracle::new());
        let writer = o.begin_snapshot();
        writer.mark_writer();
        let reader = o.begin_snapshot();
        let barrier = o.barrier_seq();
        assert!(
            !o.quiesce_writers_before(barrier, Duration::from_millis(20)),
            "writer still active"
        );
        drop(reader); // readers never block the quiesce
        let o2 = Arc::clone(&o);
        let h =
            std::thread::spawn(move || o2.quiesce_writers_before(barrier, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        drop(writer);
        assert!(h.join().unwrap());
        // Writers that begin after the barrier never block it.
        let late = o.begin_snapshot();
        late.mark_writer();
        assert!(o.quiesce_writers_before(barrier, Duration::from_millis(20)));
    }

    #[test]
    fn resume_past_restores_the_frontier() {
        let o = TsOracle::new();
        o.resume_past(41);
        assert_eq!(o.stable(), 41);
        let mut inner_next = o.draw();
        assert_eq!(inner_next, 42);
        o.finish(inner_next);
        inner_next = o.draw();
        assert_eq!(inner_next, 43);
        o.finish(inner_next);
        assert_eq!(o.stable(), 43);
    }
}
