//! Transaction objects and id assignment.

use std::sync::atomic::{AtomicU64, Ordering};

use bullfrog_common::{Error, Result, TxnId};

use crate::lock::LockKey;
use crate::ts::SnapshotHandle;
use crate::undo::UndoRecord;
use crate::wal::LogRecord;

/// Transaction lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Running; may read and write.
    Active,
    /// Successfully committed.
    Committed,
    /// Rolled back.
    Aborted,
}

/// A transaction's bookkeeping: identity, 2PL lock set, undo log, and redo
/// records destined for the WAL.
///
/// A transaction is driven by exactly one worker thread, so the struct is
/// plain mutable state; the engine (which owns catalog + lock manager +
/// WAL) performs the actual commit/abort protocol.
#[derive(Debug)]
pub struct Transaction {
    id: TxnId,
    state: TxnState,
    /// A transaction whose locks this one may pass through (lazy
    /// migration transactions set this to the client transaction that
    /// triggered them — see `LockManager::acquire_deadline_ally`).
    ally: Option<TxnId>,
    /// Every lock key acquired (released wholesale at commit/abort; strict
    /// 2PL never releases early).
    pub locks: Vec<LockKey>,
    /// Undo records in acquisition order (applied in reverse on abort).
    pub undo: Vec<UndoRecord>,
    /// Redo records appended to the WAL at commit.
    pub redo: Vec<LogRecord>,
    /// Registered read snapshot (Snapshot engine mode; `None` under 2PL).
    /// Dropping it — explicitly at commit/abort or with the transaction —
    /// releases the GC-horizon pin.
    snapshot: Option<SnapshotHandle>,
    /// True once any read or write ran at the registered snapshot. A
    /// still-unused snapshot may be replaced with a fresh one (lazy
    /// migration advances the client past granule commits it just
    /// triggered); a used one must stay put for repeatable reads.
    snapshot_used: bool,
}

impl Transaction {
    fn new(id: TxnId) -> Self {
        Transaction {
            id,
            state: TxnState::Active,
            ally: None,
            locks: Vec::new(),
            undo: Vec::new(),
            redo: Vec::new(),
            snapshot: None,
            snapshot_used: false,
        }
    }

    /// Transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Current state.
    pub fn state(&self) -> TxnState {
        self.state
    }

    /// Declares `parent` an ally: its locks never conflict with this
    /// transaction's requests. Set by lazy migration transactions for the
    /// client transaction whose request triggered them (which is
    /// suspended on this thread until the migration finishes).
    pub fn set_ally(&mut self, parent: TxnId) {
        self.ally = Some(parent);
    }

    /// The declared ally, if any.
    pub fn ally(&self) -> Option<TxnId> {
        self.ally
    }

    /// Attaches the snapshot this transaction reads at (Snapshot engine
    /// mode; the engine sets it at begin, and may replace a still-unused
    /// one). The previous handle, if any, drops and unregisters.
    pub fn set_snapshot(&mut self, snap: SnapshotHandle) {
        self.snapshot = Some(snap);
        self.snapshot_used = false;
    }

    /// Flags the snapshot as used (first read or write at it).
    pub fn mark_snapshot_used(&mut self) {
        self.snapshot_used = true;
    }

    /// Whether any read or write ran at the registered snapshot yet.
    pub fn snapshot_used(&self) -> bool {
        self.snapshot_used
    }

    /// The registered snapshot, if any.
    pub fn snapshot(&self) -> Option<&SnapshotHandle> {
        self.snapshot.as_ref()
    }

    /// Snapshot timestamp reads run at (`None` under 2PL).
    pub fn snapshot_ts(&self) -> Option<u64> {
        self.snapshot.as_ref().map(SnapshotHandle::ts)
    }

    /// Releases the snapshot registration (commit/abort path; dropping
    /// the handle unpins the GC horizon).
    pub fn release_snapshot(&mut self) {
        self.snapshot = None;
    }

    /// Errors unless the transaction is still active.
    pub fn assert_active(&self) -> Result<()> {
        match self.state {
            TxnState::Active => Ok(()),
            TxnState::Aborted => Err(Error::TxnAborted(self.id)),
            TxnState::Committed => Err(Error::TxnNotActive(self.id)),
        }
    }

    /// Records a newly acquired lock for release at end-of-transaction.
    pub fn record_lock(&mut self, key: LockKey) {
        self.locks.push(key);
    }

    /// Appends an undo record.
    pub fn push_undo(&mut self, rec: UndoRecord) {
        self.undo.push(rec);
    }

    /// Appends a redo record.
    pub fn push_redo(&mut self, rec: LogRecord) {
        self.redo.push(rec);
    }

    /// Marks the transaction committed (engine calls this after the WAL
    /// append succeeds). Idempotent transitions are rejected.
    pub fn mark_committed(&mut self) -> Result<()> {
        self.assert_active()?;
        self.state = TxnState::Committed;
        Ok(())
    }

    /// Marks the transaction aborted.
    pub fn mark_aborted(&mut self) -> Result<()> {
        self.assert_active()?;
        self.state = TxnState::Aborted;
        Ok(())
    }
}

/// Hands out transaction ids.
#[derive(Debug)]
pub struct TxnManager {
    next: AtomicU64,
}

impl TxnManager {
    /// A manager starting at txn id 1.
    pub fn new() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
        }
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction {
        Transaction::new(TxnId(self.next.fetch_add(1, Ordering::Relaxed)))
    }

    /// Number of transactions started so far.
    pub fn started(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::TableId;

    #[test]
    fn ids_are_monotonic_and_unique() {
        let mgr = TxnManager::new();
        let a = mgr.begin();
        let b = mgr.begin();
        assert!(a.id() < b.id());
        assert_eq!(mgr.started(), 2);
    }

    #[test]
    fn state_transitions() {
        let mgr = TxnManager::new();
        let mut t = mgr.begin();
        assert_eq!(t.state(), TxnState::Active);
        t.assert_active().unwrap();
        t.mark_committed().unwrap();
        assert_eq!(t.state(), TxnState::Committed);
        assert!(matches!(t.assert_active(), Err(Error::TxnNotActive(_))));
        assert!(t.mark_aborted().is_err(), "cannot abort a committed txn");

        let mut t = mgr.begin();
        t.mark_aborted().unwrap();
        assert!(matches!(t.assert_active(), Err(Error::TxnAborted(_))));
        assert!(t.mark_committed().is_err(), "cannot commit an aborted txn");
    }

    #[test]
    fn bookkeeping_accumulates() {
        let mgr = TxnManager::new();
        let mut t = mgr.begin();
        t.record_lock(LockKey::Table(TableId(1)));
        t.push_undo(UndoRecord::Insert {
            table: TableId(1),
            rid: bullfrog_common::RowId::new(0, 0),
        });
        t.push_redo(LogRecord::Begin(t.id()));
        assert_eq!(t.locks.len(), 1);
        assert_eq!(t.undo.len(), 1);
        assert_eq!(t.redo.len(), 1);
    }

    #[test]
    fn concurrent_begin_unique_ids() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let mgr = Arc::new(TxnManager::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let mgr = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|_| mgr.begin().id()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id));
            }
        }
        assert_eq!(seen.len(), 1600);
    }
}
