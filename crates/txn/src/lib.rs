//! Transactions for BullFrog: strict two-phase locking, undo records,
//! and a redo write-ahead log.
//!
//! The migration algorithms in `bullfrog-core` need exactly two guarantees
//! from this layer (paper §3.2):
//!
//! 1. **Atomic migration transactions** — a batch of inserts into the new
//!    schema either all commit or all roll back, so the tracker bits can be
//!    flipped *after* commit and reset *after* abort.
//! 2. **Conflict isolation** — client transactions on overlapping data
//!    conflict through ordinary row locks, never through the migration
//!    trackers (those have their own latches).
//!
//! Deadlock handling follows the paper's spirit ("Dividing work into
//! multiple transactions simplifies abort handling and avoids deadlock"):
//! lock waits carry a deadline, and a timeout aborts the requesting
//! transaction, which retries.

pub mod epoch;
pub mod lock;
pub mod manager;
pub mod sync_gate;
pub mod ts;
pub mod undo;
pub mod wal;

pub use epoch::{Ballot, EpochStore};
pub use lock::{LockKey, LockManager, LockMode};
pub use manager::{Transaction, TxnManager, TxnState};
pub use sync_gate::{AckOutcome, SyncGate, SyncPolicy};
pub use ts::{SnapshotHandle, TsOracle};
pub use undo::UndoRecord;
pub use wal::{CommitTicket, LogRecord, Wal, WalOptions, WalStatsSnapshot};
