//! TPC-C random generators (clause 2.1.6 and 4.3.2 of the spec).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// TPC-C's last-name syllables (clause 4.3.2.3).
const SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Seeded TPC-C random source. Deterministic per seed so loads and
/// workloads are reproducible.
pub struct TpccRng {
    rng: StdRng,
    /// C constant for C_LAST NURand (clause 2.1.6.1).
    c_last: u64,
    /// C constant for C_ID NURand.
    c_id: u64,
    /// C constant for OL_I_ID NURand.
    c_ol_i_id: u64,
}

impl TpccRng {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let c_last = rng.gen_range(0..256);
        let c_id = rng.gen_range(0..1024);
        let c_ol_i_id = rng.gen_range(0..8192);
        TpccRng {
            rng,
            c_last,
            c_id,
            c_ol_i_id,
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive, per the spec).
    pub fn uniform(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// NURand(A, x, y) — non-uniform random (clause 2.1.6).
    pub fn nurand(&mut self, a: u64, x: i64, y: i64) -> i64 {
        let c = match a {
            255 => self.c_last,
            1023 => self.c_id,
            8191 => self.c_ol_i_id,
            _ => 0,
        } as i64;
        let r1 = self.uniform(0, a as i64);
        let r2 = self.uniform(x, y);
        (((r1 | r2) + c) % (y - x + 1)) + x
    }

    /// Customer id via NURand(1023, 1, n).
    pub fn customer_id(&mut self, customers_per_district: i64) -> i64 {
        self.nurand(1023, 1, customers_per_district)
    }

    /// Item id via NURand(8191, 1, n).
    pub fn item_id(&mut self, items: i64) -> i64 {
        self.nurand(8191, 1, items)
    }

    /// Last name for a number in `[0, 999]` (clause 4.3.2.3).
    pub fn last_name_for(num: i64) -> String {
        let num = num.clamp(0, 999) as usize;
        format!(
            "{}{}{}",
            SYLLABLES[num / 100],
            SYLLABLES[(num / 10) % 10],
            SYLLABLES[num % 10]
        )
    }

    /// A last name for the *load* (NURand over 0..=999 capped by the
    /// customer count so tiny scales still find their names).
    pub fn rand_last_name(&mut self, max_num: i64) -> String {
        let num = self.nurand(255, 0, 999.min(max_num.max(0)));
        Self::last_name_for(num)
    }

    /// Alphanumeric string of random length in `[lo, hi]`.
    pub fn a_string(&mut self, lo: usize, hi: usize) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        let len = self.rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| CHARS[self.rng.gen_range(0..CHARS.len())] as char)
            .collect()
    }

    /// Numeric string of random length in `[lo, hi]`.
    pub fn n_string(&mut self, lo: usize, hi: usize) -> String {
        let len = self.rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| (b'0' + self.rng.gen_range(0..10u8)) as char)
            .collect()
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.rng.gen_range(0u32..100) < pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_inclusive() {
        let mut r = TpccRng::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.uniform(1, 5);
            assert!((1..=5).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn nurand_stays_in_range() {
        let mut r = TpccRng::new(7);
        for _ in 0..5000 {
            let v = r.nurand(1023, 1, 3000);
            assert!((1..=3000).contains(&v));
            let v = r.nurand(8191, 1, 100_000);
            assert!((1..=100_000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // Non-uniformity: the histogram over a small range should be far
        // from flat (some values much more likely).
        let mut r = TpccRng::new(3);
        let mut counts = [0u32; 101];
        for _ in 0..20_000 {
            counts[r.nurand(1023, 1, 100) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts[1..].iter().min().unwrap() as f64;
        assert!(max / (min + 1.0) > 2.0, "expected visible skew");
    }

    #[test]
    fn last_names_follow_syllables() {
        assert_eq!(TpccRng::last_name_for(0), "BARBARBAR");
        assert_eq!(TpccRng::last_name_for(371), "PRICALLYOUGHT");
        assert_eq!(TpccRng::last_name_for(999), "EINGEINGEING");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<i64> = {
            let mut r = TpccRng::new(42);
            (0..10).map(|_| r.uniform(0, 1000)).collect()
        };
        let b: Vec<i64> = {
            let mut r = TpccRng::new(42);
            (0..10).map(|_| r.uniform(0, 1000)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn strings_have_requested_lengths() {
        let mut r = TpccRng::new(9);
        for _ in 0..100 {
            let s = r.a_string(8, 16);
            assert!((8..=16).contains(&s.len()));
            let n = r.n_string(4, 4);
            assert_eq!(n.len(), 4);
            assert!(n.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
