//! TPC-C consistency conditions (clause 3.3.2), used by integration tests
//! before/during/after migrations.

use std::collections::BTreeMap;

use bullfrog_common::{Error, Result};
use bullfrog_engine::Database;

/// Clause 3.3.2.1: `W_YTD = sum(D_YTD)` per warehouse.
pub fn check_warehouse_ytd(db: &Database) -> Result<()> {
    let mut district_sums: BTreeMap<i64, i64> = BTreeMap::new();
    for (_, d) in db.select_unlocked("district", None)? {
        *district_sums.entry(d[1].as_i64().unwrap()).or_insert(0) += d[8].as_i64().unwrap_or(0);
    }
    for (_, w) in db.select_unlocked("warehouse", None)? {
        let w_id = w[0].as_i64().unwrap();
        let w_ytd = w[7].as_i64().unwrap_or(0);
        let d_sum = district_sums.get(&w_id).copied().unwrap_or(0);
        if w_ytd != d_sum {
            return Err(Error::Internal(format!(
                "warehouse {w_id}: w_ytd={w_ytd} but sum(d_ytd)={d_sum}"
            )));
        }
    }
    Ok(())
}

/// Clause 3.3.2.2 (abridged): `D_NEXT_O_ID - 1 = max(O_ID)` per district.
pub fn check_district_order_ids(db: &Database) -> Result<()> {
    let mut max_o: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    for (_, o) in db.select_unlocked("orders", None)? {
        let key = (o[0].as_i64().unwrap(), o[1].as_i64().unwrap());
        let o_id = o[2].as_i64().unwrap();
        let e = max_o.entry(key).or_insert(0);
        *e = (*e).max(o_id);
    }
    for (_, d) in db.select_unlocked("district", None)? {
        let key = (d[1].as_i64().unwrap(), d[0].as_i64().unwrap());
        let next = d[9].as_i64().unwrap();
        let max = max_o.get(&key).copied().unwrap_or(0);
        if next - 1 != max {
            return Err(Error::Internal(format!(
                "district {key:?}: next_o_id={next} but max(o_id)={max}"
            )));
        }
    }
    Ok(())
}

/// §4.2 invariant: every `order_totals` row equals `SUM(ol_amount)` of its
/// order's lines.
pub fn check_order_totals(db: &Database) -> Result<()> {
    let mut sums: BTreeMap<(i64, i64, i64), i64> = BTreeMap::new();
    for (_, ol) in db.select_unlocked("order_line", None)? {
        let key = (
            ol[0].as_i64().unwrap(),
            ol[1].as_i64().unwrap(),
            ol[2].as_i64().unwrap(),
        );
        *sums.entry(key).or_insert(0) += ol[8].as_i64().unwrap_or(0);
    }
    for (_, t) in db.select_unlocked("order_totals", None)? {
        let key = (
            t[0].as_i64().unwrap(),
            t[1].as_i64().unwrap(),
            t[2].as_i64().unwrap(),
        );
        let total = t[3].as_i64().unwrap_or(0);
        let expect = sums.get(&key).copied().unwrap_or(0);
        if total != expect {
            return Err(Error::Internal(format!(
                "order_totals {key:?}: stored {total}, lines sum to {expect}"
            )));
        }
    }
    Ok(())
}

/// §4.1 invariant (after migration completes): the split tables contain
/// exactly the customers of the original table, with matching columns.
pub fn check_split_complete(db: &Database) -> Result<()> {
    let customers = db.select_unlocked("customer", None)?;
    let pubs = db.select_unlocked("customer_pub", None)?;
    let privs = db.select_unlocked("customer_priv", None)?;
    if customers.len() != pubs.len() || customers.len() != privs.len() {
        return Err(Error::Internal(format!(
            "split cardinality: customer={} pub={} priv={}",
            customers.len(),
            pubs.len(),
            privs.len()
        )));
    }
    let pub_t = db.table("customer_pub")?;
    let priv_t = db.table("customer_priv")?;
    for (_, c) in &customers {
        let key = [c[0].clone(), c[1].clone(), c[2].clone()];
        let (_, p) = pub_t
            .get_by_pk(&key)
            .ok_or_else(|| Error::Internal(format!("pub missing {key:?}")))?;
        if p[4] != c[4] {
            return Err(Error::Internal(format!(
                "pub last-name mismatch for {key:?}: {} vs {}",
                p[4], c[4]
            )));
        }
        let (_, v) = priv_t
            .get_by_pk(&key)
            .ok_or_else(|| Error::Internal(format!("priv missing {key:?}")))?;
        // Balance may legitimately have moved post-flip; columns that are
        // immutable in the workload must match.
        if v[3] != c[10] || v[4] != c[11] {
            return Err(Error::Internal(format!("priv credit mismatch for {key:?}")));
        }
    }
    Ok(())
}

/// §4.3 invariant (after migration completes): `orderline_stock` holds one
/// row per (order_line, stock row of its item), for the *pre-flip* order
/// lines. `max_old_rid_rows` is the order_line live count at flip time.
pub fn check_join_cardinality(db: &Database, old_order_lines: usize) -> Result<()> {
    // Count stock rows per item.
    let mut stock_per_item: BTreeMap<i64, i64> = BTreeMap::new();
    for (_, s) in db.select_unlocked("stock", None)? {
        *stock_per_item.entry(s[1].as_i64().unwrap()).or_insert(0) += 1;
    }
    let mut expected = 0i64;
    for (_, ol) in db
        .select_unlocked("order_line", None)?
        .into_iter()
        .take(old_order_lines)
    {
        expected += stock_per_item
            .get(&ol[4].as_i64().unwrap())
            .copied()
            .unwrap_or(0);
    }
    let got = db.table("orderline_stock")?.live_count() as i64;
    if got < expected {
        return Err(Error::Internal(format!(
            "orderline_stock has {got} rows, expected at least {expected}"
        )));
    }
    Ok(())
}

/// No order is both delivered (carrier set) and still in `neworder`.
pub fn check_neworder_consistency(db: &Database) -> Result<()> {
    let pending: std::collections::BTreeSet<(i64, i64, i64)> = db
        .select_unlocked("neworder", None)?
        .into_iter()
        .map(|(_, r)| {
            (
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            )
        })
        .collect();
    for (_, o) in db.select_unlocked("orders", None)? {
        let key = (
            o[0].as_i64().unwrap(),
            o[1].as_i64().unwrap(),
            o[2].as_i64().unwrap(),
        );
        let delivered = !o[5].is_null();
        if delivered && pending.contains(&key) {
            return Err(Error::Internal(format!(
                "order {key:?} delivered but still pending"
            )));
        }
        if !delivered && !pending.contains(&key) {
            return Err(Error::Internal(format!(
                "order {key:?} undelivered but not pending"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load, TpccScale};

    #[test]
    fn fresh_load_passes_all_checks() {
        let db = Database::new();
        load(&db, &TpccScale::tiny()).unwrap();
        check_warehouse_ytd(&db).unwrap();
        check_district_order_ids(&db).unwrap();
        check_neworder_consistency(&db).unwrap();
    }
}
