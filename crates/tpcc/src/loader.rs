//! TPC-C population (clause 4.3.3), at a configurable scale.

use bullfrog_common::{Result, Row, Value};
use bullfrog_engine::Database;

use crate::gen::TpccRng;
use crate::schema;

/// Database population sizes. The spec fixes districts/warehouse = 10,
/// customers/district = 3000, items = 100k; those are configurable here so
/// tests and CI-speed benchmarks can shrink the database while keeping the
/// shape (the benches document their chosen scale).
#[derive(Debug, Clone)]
pub struct TpccScale {
    /// Number of warehouses (the spec's scale factor).
    pub warehouses: i64,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: i64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: i64,
    /// Item catalog size (spec: 100_000).
    pub items: i64,
    /// Initial orders per district (spec: 3000, last 900 undelivered).
    pub orders_per_district: i64,
    /// RNG seed for deterministic loads.
    pub seed: u64,
}

impl TpccScale {
    /// Tiny scale for unit/integration tests (hundreds of rows).
    pub fn tiny() -> Self {
        TpccScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 30,
            items: 50,
            orders_per_district: 20,
            seed: 0xBE11F406,
        }
    }

    /// Benchmark scale: small enough to load in seconds, large enough for
    /// migrations to take visible time.
    pub fn bench() -> Self {
        TpccScale {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 1000,
            orders_per_district: 300,
            seed: 0xBE11F406,
        }
    }

    /// The paper's configuration (50 warehouses → 1.5M customers). Loading
    /// this in-memory is possible but slow; the benches use
    /// [`TpccScale::bench`] and note the substitution.
    pub fn paper() -> Self {
        TpccScale {
            warehouses: 50,
            districts_per_warehouse: 10,
            customers_per_district: 3000,
            items: 100_000,
            orders_per_district: 3000,
            seed: 0xBE11F406,
        }
    }

    /// Total customers.
    pub fn total_customers(&self) -> i64 {
        self.warehouses * self.districts_per_warehouse * self.customers_per_district
    }

    /// First undelivered order id per district (last 30% stay new, per the
    /// spec's 2100/3000 ratio rounded to 70%).
    pub fn first_new_order(&self) -> i64 {
        (self.orders_per_district * 7) / 10 + 1
    }
}

/// Creates the schema and loads the initial population. Returns the RNG so
/// callers can continue the deterministic stream.
pub fn load(db: &Database, scale: &TpccScale) -> Result<TpccRng> {
    schema::create_all(db)?;
    let mut rng = TpccRng::new(scale.seed);

    for i in 1..=scale.items {
        db.insert_unlogged(
            "item",
            Row(vec![
                Value::Int(i),
                Value::Int(rng.uniform(1, 10_000)),
                Value::text(format!("item-{i}-{}", rng.a_string(4, 10))),
                Value::Decimal(rng.uniform(100, 10_000)), // $1.00–$100.00
                Value::text(rng.a_string(8, 16)),
            ]),
        )?;
    }

    for w in 1..=scale.warehouses {
        db.insert_unlogged(
            "warehouse",
            Row(vec![
                Value::Int(w),
                Value::text(format!("wh{w}")),
                Value::text(rng.a_string(8, 16)),
                Value::text(rng.a_string(8, 16)),
                Value::text(rng.a_string(2, 2)),
                Value::text(rng.n_string(9, 9)),
                Value::Float(rng.uniform_f(0.0, 0.2)),
                // W_YTD = sum of its districts' D_YTD (consistency cond. 1).
                Value::Decimal(scale.districts_per_warehouse * 3_000_000),
            ]),
        )?;
        for i in 1..=scale.items {
            db.insert_unlogged(
                "stock",
                Row(vec![
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.uniform(10, 100)),
                    Value::Decimal(0),
                    Value::Int(0),
                    Value::Int(0),
                    Value::text(rng.a_string(8, 16)),
                ]),
            )?;
        }
        for d in 1..=scale.districts_per_warehouse {
            db.insert_unlogged(
                "district",
                Row(vec![
                    Value::Int(d),
                    Value::Int(w),
                    Value::text(format!("d{w}-{d}")),
                    Value::text(rng.a_string(8, 16)),
                    Value::text(rng.a_string(8, 16)),
                    Value::text(rng.a_string(2, 2)),
                    Value::text(rng.n_string(9, 9)),
                    Value::Float(rng.uniform_f(0.0, 0.2)),
                    Value::Decimal(3_000_000),
                    Value::Int(scale.orders_per_district + 1),
                ]),
            )?;
            load_customers(db, &mut rng, scale, w, d)?;
            load_orders(db, &mut rng, scale, w, d)?;
        }
    }
    Ok(rng)
}

fn load_customers(
    db: &Database,
    rng: &mut TpccRng,
    scale: &TpccScale,
    w: i64,
    d: i64,
) -> Result<()> {
    for c in 1..=scale.customers_per_district {
        // First third get deterministic last names so by-name lookups work
        // at every scale (spec: NURand names for c > 1000).
        let last = if c <= scale.customers_per_district / 3 {
            TpccRng::last_name_for(c - 1)
        } else {
            rng.rand_last_name(scale.customers_per_district - 1)
        };
        let credit = if rng.chance(10) { "BC" } else { "GC" };
        db.insert_unlogged(
            "customer",
            Row(vec![
                Value::Int(w),
                Value::Int(d),
                Value::Int(c),
                Value::text(rng.a_string(6, 10)),
                Value::text(last),
                Value::text(rng.a_string(8, 16)),
                Value::text(rng.a_string(8, 16)),
                Value::text(rng.a_string(2, 2)),
                Value::text(rng.n_string(9, 9)),
                Value::text(rng.n_string(16, 16)),
                Value::text(credit),
                Value::Decimal(5_000_000), // $50,000.00 credit limit
                Value::Float(rng.uniform_f(0.0, 0.5)),
                Value::Decimal(-1000), // -$10.00 balance
                Value::Decimal(1000),
                Value::Int(1),
                Value::Int(0),
            ]),
        )?;
        db.insert_unlogged(
            "history",
            Row(vec![
                Value::Int(c),
                Value::Int(d),
                Value::Int(w),
                Value::Int(d),
                Value::Int(w),
                Value::Timestamp(0),
                Value::Decimal(1000),
                Value::text(rng.a_string(12, 24)),
            ]),
        )?;
    }
    Ok(())
}

fn load_orders(db: &Database, rng: &mut TpccRng, scale: &TpccScale, w: i64, d: i64) -> Result<()> {
    // A permutation of customer ids for o_c_id (clause 4.3.3.1).
    let mut perm: Vec<i64> = (1..=scale.customers_per_district).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.uniform(0, i as i64) as usize;
        perm.swap(i, j);
    }
    let first_new = scale.first_new_order();
    for o in 1..=scale.orders_per_district {
        let c = perm[(o - 1) as usize % perm.len()];
        let ol_cnt = rng.uniform(5, 15);
        let delivered = o < first_new;
        db.insert_unlogged(
            "orders",
            Row(vec![
                Value::Int(w),
                Value::Int(d),
                Value::Int(o),
                Value::Int(c),
                Value::Timestamp(o * 1_000_000),
                if delivered {
                    Value::Int(rng.uniform(1, 10))
                } else {
                    Value::Null
                },
                Value::Int(ol_cnt),
                Value::Int(1),
            ]),
        )?;
        if !delivered {
            db.insert_unlogged(
                "neworder",
                Row(vec![Value::Int(w), Value::Int(d), Value::Int(o)]),
            )?;
        }
        for n in 1..=ol_cnt {
            let amount = if delivered {
                0
            } else {
                rng.uniform(1, 999_999)
            };
            db.insert_unlogged(
                "order_line",
                Row(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(o),
                    Value::Int(n),
                    Value::Int(rng.uniform(1, scale.items)),
                    Value::Int(w),
                    if delivered {
                        Value::Timestamp(o * 1_000_000)
                    } else {
                        Value::Null
                    },
                    Value::Int(5),
                    Value::Decimal(amount),
                    Value::text(rng.a_string(12, 24)),
                ]),
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_load_has_expected_cardinalities() {
        let db = Database::new();
        let scale = TpccScale::tiny();
        load(&db, &scale).unwrap();
        assert_eq!(db.table("warehouse").unwrap().live_count(), 1);
        assert_eq!(db.table("district").unwrap().live_count(), 2);
        assert_eq!(db.table("customer").unwrap().live_count(), 60);
        assert_eq!(db.table("item").unwrap().live_count(), 50);
        assert_eq!(db.table("stock").unwrap().live_count(), 50);
        assert_eq!(db.table("orders").unwrap().live_count(), 40);
        // 30% of orders are new.
        let new_orders = db.table("neworder").unwrap().live_count();
        assert_eq!(new_orders, 2 * (20 - (20 * 7 / 10)));
        // 5..=15 lines per order.
        let lines = db.table("order_line").unwrap().live_count();
        assert!((40 * 5..=40 * 15).contains(&lines));
    }

    #[test]
    fn load_is_deterministic() {
        let rows = |seed| {
            let db = Database::new();
            let mut s = TpccScale::tiny();
            s.seed = seed;
            load(&db, &s).unwrap();
            db.select_unlocked("customer", None)
                .unwrap()
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(1), rows(1));
        assert_ne!(rows(1), rows(2));
    }

    #[test]
    fn district_next_o_id_is_consistent_with_orders() {
        let db = Database::new();
        let scale = TpccScale::tiny();
        load(&db, &scale).unwrap();
        for (_, d) in db.select_unlocked("district", None).unwrap() {
            assert_eq!(d[9], Value::Int(scale.orders_per_district + 1));
        }
    }
}
