//! TPC-C for BullFrog: the standard five-transaction workload plus the
//! paper's schema-migration extensions (§4).
//!
//! - [`schema`] — the nine TPC-C tables and their indexes;
//! - [`gen`] — TPC-C random generators (NURand, last names, a-strings);
//! - [`loader`] — population at a configurable [`TpccScale`];
//! - [`txns`] — NewOrder / Payment / OrderStatus / Delivery / StockLevel,
//!   written against [`ClientAccess`](bullfrog_core::ClientAccess) in both
//!   the pre-migration ([`Variant::Base`]) and post-migration forms;
//! - [`migrations`] — the three evolutions evaluated in the paper:
//!   customer **table split** (§4.1, 1:n → bitmap), order-line
//!   **aggregation** (§4.2, n:1 → hashmap), and the order_line ⋈ stock
//!   **join denormalization** (§4.3, n:n → hashmap), plus the FK-annotated
//!   split variants of §4.5;
//! - [`driver`] — transaction-mix execution with retries;
//! - [`checks`] — consistency assertions used by integration tests.

pub mod checks;
pub mod driver;
pub mod gen;
pub mod loader;
pub mod migrations;
pub mod schema;
pub mod txns;

pub use driver::{Driver, TxnKind, TxnOutcome};
pub use gen::TpccRng;
pub use loader::{load, TpccScale};
pub use migrations::Scenario;
pub use txns::Variant;
