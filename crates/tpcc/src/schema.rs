//! The nine TPC-C tables (clause 1.3), trimmed only of filler columns
//! (`*_data` padding is shortened, per-district stock strings dropped) —
//! every column a transaction or migration touches is present.

use bullfrog_common::{ColumnDef, DataType, Result, TableSchema};
use bullfrog_engine::Database;

/// warehouse(w_id, name, street, city, state, zip, tax, ytd)
pub fn warehouse() -> TableSchema {
    TableSchema::new(
        "warehouse",
        vec![
            ColumnDef::new("w_id", DataType::Int),
            ColumnDef::new("w_name", DataType::Text),
            ColumnDef::new("w_street", DataType::Text),
            ColumnDef::new("w_city", DataType::Text),
            ColumnDef::new("w_state", DataType::Text),
            ColumnDef::new("w_zip", DataType::Text),
            ColumnDef::new("w_tax", DataType::Float),
            ColumnDef::new("w_ytd", DataType::Decimal),
        ],
    )
    .with_primary_key(&["w_id"])
}

/// district(d_id, w_id, name, ..., tax, ytd, next_o_id)
pub fn district() -> TableSchema {
    TableSchema::new(
        "district",
        vec![
            ColumnDef::new("d_id", DataType::Int),
            ColumnDef::new("d_w_id", DataType::Int),
            ColumnDef::new("d_name", DataType::Text),
            ColumnDef::new("d_street", DataType::Text),
            ColumnDef::new("d_city", DataType::Text),
            ColumnDef::new("d_state", DataType::Text),
            ColumnDef::new("d_zip", DataType::Text),
            ColumnDef::new("d_tax", DataType::Float),
            ColumnDef::new("d_ytd", DataType::Decimal),
            ColumnDef::new("d_next_o_id", DataType::Int),
        ],
    )
    .with_primary_key(&["d_w_id", "d_id"])
}

/// customer — the table split by the §4.1 migration.
pub fn customer() -> TableSchema {
    TableSchema::new(
        "customer",
        vec![
            ColumnDef::new("c_w_id", DataType::Int),
            ColumnDef::new("c_d_id", DataType::Int),
            ColumnDef::new("c_id", DataType::Int),
            ColumnDef::new("c_first", DataType::Text),
            ColumnDef::new("c_last", DataType::Text),
            ColumnDef::new("c_street", DataType::Text),
            ColumnDef::new("c_city", DataType::Text),
            ColumnDef::new("c_state", DataType::Text),
            ColumnDef::new("c_zip", DataType::Text),
            ColumnDef::new("c_phone", DataType::Text),
            ColumnDef::new("c_credit", DataType::Text),
            ColumnDef::new("c_credit_lim", DataType::Decimal),
            ColumnDef::new("c_discount", DataType::Float),
            ColumnDef::new("c_balance", DataType::Decimal),
            ColumnDef::new("c_ytd_payment", DataType::Decimal),
            ColumnDef::new("c_payment_cnt", DataType::Int),
            ColumnDef::new("c_delivery_cnt", DataType::Int),
        ],
    )
    .with_primary_key(&["c_w_id", "c_d_id", "c_id"])
}

/// history(h_c_id, h_c_d_id, h_c_w_id, h_d_id, h_w_id, h_date, h_amount, h_data)
pub fn history() -> TableSchema {
    TableSchema::new(
        "history",
        vec![
            ColumnDef::new("h_c_id", DataType::Int),
            ColumnDef::new("h_c_d_id", DataType::Int),
            ColumnDef::new("h_c_w_id", DataType::Int),
            ColumnDef::new("h_d_id", DataType::Int),
            ColumnDef::new("h_w_id", DataType::Int),
            ColumnDef::new("h_date", DataType::Timestamp),
            ColumnDef::new("h_amount", DataType::Decimal),
            ColumnDef::new("h_data", DataType::Text),
        ],
    )
}

/// neworder(no_o_id, no_d_id, no_w_id)
pub fn neworder() -> TableSchema {
    TableSchema::new(
        "neworder",
        vec![
            ColumnDef::new("no_w_id", DataType::Int),
            ColumnDef::new("no_d_id", DataType::Int),
            ColumnDef::new("no_o_id", DataType::Int),
        ],
    )
    .with_primary_key(&["no_w_id", "no_d_id", "no_o_id"])
}

/// orders(o_id, o_d_id, o_w_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt, o_all_local)
pub fn orders() -> TableSchema {
    TableSchema::new(
        "orders",
        vec![
            ColumnDef::new("o_w_id", DataType::Int),
            ColumnDef::new("o_d_id", DataType::Int),
            ColumnDef::new("o_id", DataType::Int),
            ColumnDef::new("o_c_id", DataType::Int),
            ColumnDef::new("o_entry_d", DataType::Timestamp),
            ColumnDef::nullable("o_carrier_id", DataType::Int),
            ColumnDef::new("o_ol_cnt", DataType::Int),
            ColumnDef::new("o_all_local", DataType::Int),
        ],
    )
    .with_primary_key(&["o_w_id", "o_d_id", "o_id"])
}

/// order_line — input of the §4.2 aggregation and §4.3 join migrations.
pub fn order_line() -> TableSchema {
    TableSchema::new(
        "order_line",
        vec![
            ColumnDef::new("ol_w_id", DataType::Int),
            ColumnDef::new("ol_d_id", DataType::Int),
            ColumnDef::new("ol_o_id", DataType::Int),
            ColumnDef::new("ol_number", DataType::Int),
            ColumnDef::new("ol_i_id", DataType::Int),
            ColumnDef::new("ol_supply_w_id", DataType::Int),
            ColumnDef::nullable("ol_delivery_d", DataType::Timestamp),
            ColumnDef::new("ol_quantity", DataType::Int),
            ColumnDef::new("ol_amount", DataType::Decimal),
            ColumnDef::new("ol_dist_info", DataType::Text),
        ],
    )
    .with_primary_key(&["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])
}

/// item(i_id, i_im_id, i_name, i_price, i_data)
pub fn item() -> TableSchema {
    TableSchema::new(
        "item",
        vec![
            ColumnDef::new("i_id", DataType::Int),
            ColumnDef::new("i_im_id", DataType::Int),
            ColumnDef::new("i_name", DataType::Text),
            ColumnDef::new("i_price", DataType::Decimal),
            ColumnDef::new("i_data", DataType::Text),
        ],
    )
    .with_primary_key(&["i_id"])
}

/// stock(s_i_id, s_w_id, s_quantity, s_ytd, s_order_cnt, s_remote_cnt, s_data)
pub fn stock() -> TableSchema {
    TableSchema::new(
        "stock",
        vec![
            ColumnDef::new("s_w_id", DataType::Int),
            ColumnDef::new("s_i_id", DataType::Int),
            ColumnDef::new("s_quantity", DataType::Int),
            ColumnDef::new("s_ytd", DataType::Decimal),
            ColumnDef::new("s_order_cnt", DataType::Int),
            ColumnDef::new("s_remote_cnt", DataType::Int),
            ColumnDef::new("s_data", DataType::Text),
        ],
    )
    .with_primary_key(&["s_w_id", "s_i_id"])
}

/// Creates all nine tables and their secondary indexes.
pub fn create_all(db: &Database) -> Result<()> {
    db.create_table(warehouse())?;
    db.create_table(district())?;
    db.create_table(customer())?;
    db.create_table(history())?;
    db.create_table(item())?;
    db.create_table(stock())?;
    db.create_table(orders())?;
    db.create_table(neworder())?;
    db.create_table(order_line())?;
    // Secondary indexes the transactions rely on.
    db.create_index(
        "customer",
        "customer_last_idx",
        &["c_w_id", "c_d_id", "c_last"],
        false,
    )?;
    db.create_index(
        "orders",
        "orders_customer_idx",
        &["o_w_id", "o_d_id", "o_c_id"],
        false,
    )?;
    db.create_index("order_line", "order_line_item_idx", &["ol_i_id"], false)?;
    db.create_index("stock", "stock_item_idx", &["s_i_id"], false)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_all_builds_nine_tables_plus_indexes() {
        let db = Database::new();
        create_all(&db).unwrap();
        let names = db.catalog().table_names();
        assert_eq!(names.len(), 9);
        for t in [
            "warehouse",
            "district",
            "customer",
            "history",
            "neworder",
            "orders",
            "order_line",
            "item",
            "stock",
        ] {
            assert!(names.contains(&t.to_string()), "{t} missing");
        }
        assert!(db
            .table("customer")
            .unwrap()
            .index("customer_last_idx")
            .is_some());
        assert!(db
            .table("order_line")
            .unwrap()
            .index("order_line_item_idx")
            .is_some());
    }

    #[test]
    fn history_has_no_primary_key() {
        assert!(history().primary_key.is_empty());
    }

    #[test]
    fn composite_pks_resolve() {
        let ol = order_line();
        assert_eq!(ol.pk_indices().unwrap(), vec![0, 1, 2, 3]);
    }
}
