//! The five TPC-C transactions, written against
//! [`ClientAccess`](bullfrog_core::ClientAccess) in both the original and
//! the post-migration schema shapes.
//!
//! Each transaction takes a [`Variant`] deciding which physical tables it
//! touches — [`Variant::Base`] is standard TPC-C; the others are the
//! paper's §4 post-migration rewrites. The workload driver switches
//! variants the moment the strategy reports
//! [`SchemaVersion::New`](bullfrog_core::SchemaVersion::New) (the paper's
//! big flip of the front-end instances).

mod delivery;
mod helpers;
mod new_order;
mod order_status;
mod payment;
mod stock_level;

pub use delivery::{delivery, DeliveryParams};
pub use helpers::CustomerSelector;
pub use new_order::{new_order, NewOrderItem, NewOrderParams};
pub use order_status::{order_status, OrderStatusParams};
pub use payment::{payment, PaymentParams};
pub use stock_level::{stock_level, StockLevelParams};

/// Which schema generation the transaction bodies run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The original nine-table TPC-C schema.
    Base,
    /// §4.1: `customer` split into `customer_pub` + `customer_priv`.
    CustomerSplit,
    /// §4.2: `order_totals` co-maintained next to `order_line`.
    OrderTotals,
    /// §4.3: `orderline_stock` replaces `order_line` and `stock`.
    JoinDenorm,
}
