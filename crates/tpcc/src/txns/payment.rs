//! The Payment transaction (TPC-C clause 2.5) — 43% of the mix.

use bullfrog_common::{Error, Result, Row, Value};
use bullfrog_core::ClientAccess;
use bullfrog_engine::LockPolicy;
use bullfrog_txn::Transaction;

use super::helpers::{bump_decimal, bump_int, fin_cols, find_customer, CustomerSelector};
use super::Variant;

/// Payment inputs.
#[derive(Debug, Clone)]
pub struct PaymentParams {
    /// Warehouse receiving the payment.
    pub w_id: i64,
    /// District receiving the payment.
    pub d_id: i64,
    /// Customer's home warehouse (15% remote per spec).
    pub c_w_id: i64,
    /// Customer's home district.
    pub c_d_id: i64,
    /// Customer selector (60% by last name).
    pub selector: CustomerSelector,
    /// Payment amount (cents).
    pub amount: i64,
    /// Timestamp (µs).
    pub now: i64,
}

/// Runs Payment; returns the paying customer's id.
pub fn payment(
    access: &dyn ClientAccess,
    txn: &mut Transaction,
    variant: Variant,
    p: &PaymentParams,
) -> Result<i64> {
    // Customer financials FIRST: on a migrating schema this op may block
    // on lazy migration, and it must do so before this transaction holds
    // the hot warehouse/district locks (the paper runs migration work
    // before the client transaction for the same reason).
    let customer = find_customer(
        access,
        txn,
        variant,
        p.c_w_id,
        p.c_d_id,
        &p.selector,
        LockPolicy::Exclusive,
    )?;
    let cols = fin_cols(variant);
    let mut updated = bump_decimal(&customer.fin_row, cols.balance, -p.amount)?;
    updated = bump_decimal(&updated, cols.ytd, p.amount)?;
    updated = bump_int(&updated, cols.pay_cnt, 1)?;
    access.update(txn, customer.fin_table, customer.fin_rid, updated)?;

    // Warehouse YTD.
    let (w_rid, w_row) = access
        .get_by_pk(
            txn,
            "warehouse",
            &[Value::Int(p.w_id)],
            LockPolicy::Exclusive,
        )?
        .ok_or(Error::RowNotFound)?;
    access.update(txn, "warehouse", w_rid, bump_decimal(&w_row, 7, p.amount)?)?;

    // District YTD.
    let d_key = [Value::Int(p.w_id), Value::Int(p.d_id)];
    let (d_rid, d_row) = access
        .get_by_pk(txn, "district", &d_key, LockPolicy::Exclusive)?
        .ok_or(Error::RowNotFound)?;
    access.update(txn, "district", d_rid, bump_decimal(&d_row, 8, p.amount)?)?;

    // History record.
    access.insert(
        txn,
        "history",
        Row(vec![
            Value::Int(customer.c_id),
            Value::Int(p.c_d_id),
            Value::Int(p.c_w_id),
            Value::Int(p.d_id),
            Value::Int(p.w_id),
            Value::Timestamp(p.now),
            Value::Decimal(p.amount),
            Value::text("payment"),
        ]),
    )?;
    Ok(customer.c_id)
}
