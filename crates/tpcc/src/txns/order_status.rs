//! The OrderStatus transaction (TPC-C clause 2.6) — 4% of the mix,
//! read-only.

use bullfrog_common::{Error, Result};
use bullfrog_core::ClientAccess;
use bullfrog_engine::LockPolicy;
use bullfrog_query::Expr;
use bullfrog_txn::Transaction;

use super::helpers::{find_customer, CustomerSelector};
use super::Variant;

/// OrderStatus inputs.
#[derive(Debug, Clone)]
pub struct OrderStatusParams {
    /// Warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Customer selector (60% by last name).
    pub selector: CustomerSelector,
}

/// Result: the customer's balance, last order id, and its line count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderStatusResult {
    /// Balance at read time.
    pub balance: i64,
    /// Most recent order id (None when the customer never ordered).
    pub last_order: Option<i64>,
    /// Lines in that order.
    pub lines: usize,
}

/// Runs OrderStatus.
pub fn order_status(
    access: &dyn ClientAccess,
    txn: &mut Transaction,
    variant: Variant,
    p: &OrderStatusParams,
) -> Result<OrderStatusResult> {
    let customer = find_customer(
        access,
        txn,
        variant,
        p.w_id,
        p.d_id,
        &p.selector,
        LockPolicy::Shared,
    )?;

    // Most recent order of the customer.
    let pred = Expr::column("o_w_id")
        .eq(Expr::lit(p.w_id))
        .and(Expr::column("o_d_id").eq(Expr::lit(p.d_id)))
        .and(Expr::column("o_c_id").eq(Expr::lit(customer.c_id)));
    let orders = access.select(txn, "orders", Some(&pred), LockPolicy::Shared)?;
    let last = orders.iter().filter_map(|(_, r)| r[2].as_i64()).max();
    let Some(o_id) = last else {
        return Ok(OrderStatusResult {
            balance: customer.balance,
            last_order: None,
            lines: 0,
        });
    };

    // Its order lines.
    let lines = match variant {
        Variant::JoinDenorm => {
            let pred = Expr::column("ol_w_id")
                .eq(Expr::lit(p.w_id))
                .and(Expr::column("ol_d_id").eq(Expr::lit(p.d_id)))
                .and(Expr::column("ol_o_id").eq(Expr::lit(o_id)));
            let rows = access.select(txn, "orderline_stock", Some(&pred), LockPolicy::Shared)?;
            // The denormalized table has one row per (line, stock-wh) pair.
            let mut numbers: Vec<i64> = rows.iter().filter_map(|(_, r)| r[3].as_i64()).collect();
            numbers.sort_unstable();
            numbers.dedup();
            numbers.len()
        }
        _ => {
            let pred = Expr::column("ol_w_id")
                .eq(Expr::lit(p.w_id))
                .and(Expr::column("ol_d_id").eq(Expr::lit(p.d_id)))
                .and(Expr::column("ol_o_id").eq(Expr::lit(o_id)));
            access
                .select(txn, "order_line", Some(&pred), LockPolicy::Shared)?
                .len()
        }
    };
    if lines == 0 {
        return Err(Error::Internal(format!(
            "order ({}, {}, {o_id}) has no lines",
            p.w_id, p.d_id
        )));
    }
    Ok(OrderStatusResult {
        balance: customer.balance,
        last_order: Some(o_id),
        lines,
    })
}
