//! The StockLevel transaction (TPC-C clause 2.8) — 4% of the mix,
//! read-only. Counts distinct items in the district's last 20 orders whose
//! stock is below a threshold.

use bullfrog_common::{Error, Result, Value};
use bullfrog_core::ClientAccess;
use bullfrog_engine::LockPolicy;
use bullfrog_query::Expr;
use bullfrog_txn::Transaction;

use super::Variant;

/// StockLevel inputs.
#[derive(Debug, Clone)]
pub struct StockLevelParams {
    /// Warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Quantity threshold (10..=20 per spec).
    pub threshold: i64,
}

/// Runs StockLevel; returns the low-stock distinct item count.
pub fn stock_level(
    access: &dyn ClientAccess,
    txn: &mut Transaction,
    variant: Variant,
    p: &StockLevelParams,
) -> Result<i64> {
    // District's next order id bounds the window.
    let d_key = [Value::Int(p.w_id), Value::Int(p.d_id)];
    let (_, d_row) = access
        .get_by_pk(txn, "district", &d_key, LockPolicy::Shared)?
        .ok_or(Error::RowNotFound)?;
    let next_o = d_row[9].as_i64().ok_or(Error::RowNotFound)?;
    let lo = (next_o - 20).max(1);

    match variant {
        Variant::JoinDenorm => {
            // The denormalized table answers the query directly — this is
            // the read the §4.3 migration was designed to accelerate.
            let pred = Expr::column("ol_w_id")
                .eq(Expr::lit(p.w_id))
                .and(Expr::column("ol_d_id").eq(Expr::lit(p.d_id)))
                .and(Expr::column("ol_o_id").ge(Expr::lit(lo)))
                .and(Expr::column("ol_o_id").lt(Expr::lit(next_o)))
                .and(Expr::column("s_w_id").eq(Expr::lit(p.w_id)))
                .and(Expr::column("s_quantity").lt(Expr::lit(p.threshold)));
            let rows = access.select(txn, "orderline_stock", Some(&pred), LockPolicy::Shared)?;
            let mut items: Vec<i64> = rows.iter().filter_map(|(_, r)| r[4].as_i64()).collect();
            items.sort_unstable();
            items.dedup();
            Ok(items.len() as i64)
        }
        _ => {
            // Recent order lines, then probe stock per distinct item.
            let pred = Expr::column("ol_w_id")
                .eq(Expr::lit(p.w_id))
                .and(Expr::column("ol_d_id").eq(Expr::lit(p.d_id)))
                .and(Expr::column("ol_o_id").ge(Expr::lit(lo)))
                .and(Expr::column("ol_o_id").lt(Expr::lit(next_o)));
            let rows = access.select(txn, "order_line", Some(&pred), LockPolicy::Shared)?;
            let mut items: Vec<i64> = rows.iter().filter_map(|(_, r)| r[4].as_i64()).collect();
            items.sort_unstable();
            items.dedup();
            let mut low = 0;
            for i in items {
                let s_key = [Value::Int(p.w_id), Value::Int(i)];
                if let Some((_, s_row)) =
                    access.get_by_pk(txn, "stock", &s_key, LockPolicy::Shared)?
                {
                    if s_row[2].as_i64().unwrap_or(i64::MAX) < p.threshold {
                        low += 1;
                    }
                }
            }
            Ok(low)
        }
    }
}
