//! The Delivery transaction (TPC-C clause 2.7) — 4% of the mix. Delivers
//! the oldest undelivered order of every district of a warehouse.

use bullfrog_common::{Error, Result, Value};
use bullfrog_core::ClientAccess;
use bullfrog_engine::LockPolicy;
use bullfrog_query::Expr;
use bullfrog_txn::Transaction;

use super::helpers::{bump_decimal, bump_int, fin_cols, find_customer, CustomerSelector};
use super::Variant;

/// Delivery inputs.
#[derive(Debug, Clone)]
pub struct DeliveryParams {
    /// Warehouse being delivered.
    pub w_id: i64,
    /// Districts per warehouse (loop bound).
    pub districts: i64,
    /// Carrier id (1..=10).
    pub carrier: i64,
    /// Delivery timestamp (µs).
    pub now: i64,
}

/// Runs Delivery; returns how many districts had an order to deliver.
pub fn delivery(
    access: &dyn ClientAccess,
    txn: &mut Transaction,
    variant: Variant,
    p: &DeliveryParams,
) -> Result<usize> {
    let mut delivered = 0;
    for d in 1..=p.districts {
        // Oldest undelivered order.
        let pred = Expr::column("no_w_id")
            .eq(Expr::lit(p.w_id))
            .and(Expr::column("no_d_id").eq(Expr::lit(d)));
        let pending = access.select(txn, "neworder", Some(&pred), LockPolicy::Exclusive)?;
        let Some((no_rid, no_row)) = pending
            .into_iter()
            .min_by_key(|(_, r)| r[2].as_i64().unwrap_or(i64::MAX))
        else {
            continue; // this district is fully delivered
        };
        let o_id = no_row[2].as_i64().ok_or(Error::RowNotFound)?;
        access.delete(txn, "neworder", no_rid)?;

        // Mark the order delivered.
        let o_key = [Value::Int(p.w_id), Value::Int(d), Value::Int(o_id)];
        let (o_rid, mut o_row) = access
            .get_by_pk(txn, "orders", &o_key, LockPolicy::Exclusive)?
            .ok_or(Error::RowNotFound)?;
        let c_id = o_row[3].as_i64().ok_or(Error::RowNotFound)?;
        o_row.set(5, Value::Int(p.carrier));
        access.update(txn, "orders", o_rid, o_row)?;

        // Total the order's lines and stamp their delivery date.
        let total = match variant {
            Variant::JoinDenorm => {
                let pred = Expr::column("ol_w_id")
                    .eq(Expr::lit(p.w_id))
                    .and(Expr::column("ol_d_id").eq(Expr::lit(d)))
                    .and(Expr::column("ol_o_id").eq(Expr::lit(o_id)));
                let rows =
                    access.select(txn, "orderline_stock", Some(&pred), LockPolicy::Exclusive)?;
                // One row per (line, stock-wh): sum each line once.
                let mut seen = std::collections::BTreeSet::new();
                let mut total = 0i64;
                for (rid, mut row) in rows {
                    let n = row[3].as_i64().unwrap_or(0);
                    if seen.insert(n) {
                        total += row[7].as_i64().unwrap_or(0);
                    }
                    row.set(5, Value::Timestamp(p.now));
                    access.update(txn, "orderline_stock", rid, row)?;
                }
                total
            }
            Variant::OrderTotals => {
                // §4.2: read the maintained aggregate instead of summing —
                // this get is what lazily migrates the group.
                let key = [Value::Int(p.w_id), Value::Int(d), Value::Int(o_id)];
                let total = access
                    .get_by_pk(txn, "order_totals", &key, LockPolicy::Shared)?
                    .map(|(_, r)| r[3].as_i64().unwrap_or(0))
                    .ok_or_else(|| {
                        Error::Internal(format!(
                            "order_totals missing for ({}, {d}, {o_id})",
                            p.w_id
                        ))
                    })?;
                // Delivery dates still live on order_line.
                let pred = Expr::column("ol_w_id")
                    .eq(Expr::lit(p.w_id))
                    .and(Expr::column("ol_d_id").eq(Expr::lit(d)))
                    .and(Expr::column("ol_o_id").eq(Expr::lit(o_id)));
                for (rid, mut row) in
                    access.select(txn, "order_line", Some(&pred), LockPolicy::Exclusive)?
                {
                    row.set(6, Value::Timestamp(p.now));
                    access.update(txn, "order_line", rid, row)?;
                }
                total
            }
            _ => {
                let pred = Expr::column("ol_w_id")
                    .eq(Expr::lit(p.w_id))
                    .and(Expr::column("ol_d_id").eq(Expr::lit(d)))
                    .and(Expr::column("ol_o_id").eq(Expr::lit(o_id)));
                let rows = access.select(txn, "order_line", Some(&pred), LockPolicy::Exclusive)?;
                let mut total = 0i64;
                for (rid, mut row) in rows {
                    total += row[8].as_i64().unwrap_or(0);
                    row.set(6, Value::Timestamp(p.now));
                    access.update(txn, "order_line", rid, row)?;
                }
                total
            }
        };

        // Credit the customer.
        let customer = find_customer(
            access,
            txn,
            variant,
            p.w_id,
            d,
            &CustomerSelector::Id(c_id),
            LockPolicy::Exclusive,
        )?;
        let cols = fin_cols(variant);
        let mut updated = bump_decimal(&customer.fin_row, cols.balance, total)?;
        updated = bump_int(&updated, cols.delivery_cnt, 1)?;
        access.update(txn, customer.fin_table, customer.fin_rid, updated)?;
        delivered += 1;
    }
    Ok(delivered)
}
