//! Shared helpers for the transaction bodies.

use bullfrog_common::{Error, Result, Row, RowId, Value};
use bullfrog_core::ClientAccess;
use bullfrog_engine::LockPolicy;
use bullfrog_query::Expr;
use bullfrog_txn::Transaction;

use super::Variant;

/// How a transaction identifies the customer (TPC-C clause 2.5.2: 60% by
/// last name, 40% by id).
#[derive(Debug, Clone)]
pub enum CustomerSelector {
    /// Direct id.
    Id(i64),
    /// By last name; the spec picks the ceil(n/2)-th match ordered by
    /// first name.
    LastName(String),
}

/// A located customer: ids plus the row(s) that carry its financial state.
pub struct CustomerRef {
    // (`credit` is read by workloads that branch on bad credit; the
    // shipped transactions keep it for API completeness.)
    /// Customer id.
    pub c_id: i64,
    /// Discount (NewOrder pricing).
    pub discount: f64,
    /// Credit flag ("GC"/"BC"); kept for workloads branching on bad
    /// credit even though the shipped transaction bodies don't.
    #[allow(dead_code)]
    pub credit: String,
    /// Current balance (cents).
    pub balance: i64,
    /// The row holding the financial columns (customer or customer_priv).
    pub fin_rid: RowId,
    /// That row's current image.
    pub fin_row: Row,
    /// Which table `fin_rid` belongs to.
    pub fin_table: &'static str,
}

/// Positions of the financial columns in `fin_table`'s schema.
pub struct FinCols {
    /// c_balance position.
    pub balance: usize,
    /// c_ytd_payment position.
    pub ytd: usize,
    /// c_payment_cnt position.
    pub pay_cnt: usize,
    /// c_delivery_cnt position.
    pub delivery_cnt: usize,
}

/// Financial column positions for the given variant.
pub fn fin_cols(variant: Variant) -> FinCols {
    match variant {
        // customer: ... c_balance=13, c_ytd_payment=14, c_payment_cnt=15,
        // c_delivery_cnt=16
        Variant::Base | Variant::OrderTotals | Variant::JoinDenorm => FinCols {
            balance: 13,
            ytd: 14,
            pay_cnt: 15,
            delivery_cnt: 16,
        },
        // customer_priv: c_w_id,c_d_id,c_id,c_credit,c_credit_lim,
        // c_discount,c_balance=6,c_ytd_payment=7,c_payment_cnt=8,
        // c_delivery_cnt=9
        Variant::CustomerSplit => FinCols {
            balance: 6,
            ytd: 7,
            pay_cnt: 8,
            delivery_cnt: 9,
        },
    }
}

/// Locates a customer under the given variant and lock policy for the
/// financial row.
pub fn find_customer(
    access: &dyn ClientAccess,
    txn: &mut Transaction,
    variant: Variant,
    w: i64,
    d: i64,
    selector: &CustomerSelector,
    policy: LockPolicy,
) -> Result<CustomerRef> {
    let c_id = match selector {
        CustomerSelector::Id(c) => *c,
        CustomerSelector::LastName(name) => {
            // Resolve the id through the table carrying names.
            let (table, id_idx, first_idx) = match variant {
                Variant::CustomerSplit => ("customer_pub", 2usize, 3usize),
                _ => ("customer", 2usize, 3usize),
            };
            let pred = Expr::column("c_w_id")
                .eq(Expr::lit(w))
                .and(Expr::column("c_d_id").eq(Expr::lit(d)))
                .and(Expr::column("c_last").eq(Expr::lit(name.as_str())));
            let mut matches = access.select(txn, table, Some(&pred), LockPolicy::Shared)?;
            if matches.is_empty() {
                return Err(Error::RowNotFound);
            }
            matches.sort_by(|a, b| a.1[first_idx].cmp(&b.1[first_idx]));
            // ceil(n/2)-th match, 1-based → zero-based index.
            let pick = matches.len().div_ceil(2) - 1;
            matches[pick].1[id_idx].as_i64().ok_or(Error::RowNotFound)?
        }
    };

    let key = [Value::Int(w), Value::Int(d), Value::Int(c_id)];
    match variant {
        Variant::CustomerSplit => {
            let (rid, row) = access
                .get_by_pk(txn, "customer_priv", &key, policy)?
                .ok_or(Error::RowNotFound)?;
            Ok(CustomerRef {
                c_id,
                discount: match row[5] {
                    Value::Float(f) => f,
                    _ => 0.0,
                },
                credit: row[3].as_str().unwrap_or("GC").to_owned(),
                balance: row[6].as_i64().unwrap_or(0),
                fin_rid: rid,
                fin_row: row,
                fin_table: "customer_priv",
            })
        }
        _ => {
            let (rid, row) = access
                .get_by_pk(txn, "customer", &key, policy)?
                .ok_or(Error::RowNotFound)?;
            Ok(CustomerRef {
                c_id,
                discount: match row[12] {
                    Value::Float(f) => f,
                    _ => 0.0,
                },
                credit: row[10].as_str().unwrap_or("GC").to_owned(),
                balance: row[13].as_i64().unwrap_or(0),
                fin_rid: rid,
                fin_row: row,
                fin_table: "customer",
            })
        }
    }
}

/// Adds `delta` (cents) to the decimal at `idx`, returning the new row.
pub fn bump_decimal(row: &Row, idx: usize, delta: i64) -> Result<Row> {
    let mut out = row.clone();
    let cur = out[idx].as_i64().unwrap_or(0);
    out.set(idx, Value::Decimal(cur + delta));
    Ok(out)
}

/// Adds `delta` to the integer at `idx`, returning the new row.
pub fn bump_int(row: &Row, idx: usize, delta: i64) -> Result<Row> {
    let mut out = row.clone();
    let cur = out[idx].as_i64().unwrap_or(0);
    out.set(idx, Value::Int(cur + delta));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumpers_adjust_in_place() {
        let r = Row(vec![Value::Decimal(100), Value::Int(5)]);
        assert_eq!(bump_decimal(&r, 0, -30).unwrap()[0], Value::Decimal(70));
        assert_eq!(bump_int(&r, 1, 2).unwrap()[1], Value::Int(7));
    }

    #[test]
    fn fin_cols_match_schemas() {
        let base = crate::schema::customer();
        let f = fin_cols(Variant::Base);
        assert_eq!(base.col_index("c_balance").unwrap(), f.balance);
        assert_eq!(base.col_index("c_delivery_cnt").unwrap(), f.delivery_cnt);
        let split = crate::migrations::customer_priv_schema(crate::migrations::FkLevel::None);
        let f = fin_cols(Variant::CustomerSplit);
        assert_eq!(split.col_index("c_balance").unwrap(), f.balance);
        assert_eq!(split.col_index("c_payment_cnt").unwrap(), f.pay_cnt);
    }
}
