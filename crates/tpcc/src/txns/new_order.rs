//! The NewOrder transaction (TPC-C clause 2.4) — 45% of the mix.

use bullfrog_common::{Error, Result, Row, Value};
use bullfrog_core::ClientAccess;
use bullfrog_engine::LockPolicy;
use bullfrog_query::Expr;
use bullfrog_txn::Transaction;

use super::helpers::{bump_int, find_customer, CustomerSelector};
use super::Variant;

/// One order line request.
#[derive(Debug, Clone)]
pub struct NewOrderItem {
    /// Item id; an id of 0 models the spec's 1% "unused item" that forces
    /// a user abort after some work was done.
    pub i_id: i64,
    /// Supplying warehouse.
    pub supply_w_id: i64,
    /// Quantity ordered.
    pub quantity: i64,
}

/// NewOrder inputs.
#[derive(Debug, Clone)]
pub struct NewOrderParams {
    /// Home warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Customer.
    pub c_id: i64,
    /// 5–15 order lines.
    pub items: Vec<NewOrderItem>,
    /// Entry timestamp (µs).
    pub now: i64,
}

/// Runs NewOrder; returns the order id. An `Err(RowNotFound)` from an
/// item id of 0 is the spec's intentional 1% rollback.
pub fn new_order(
    access: &dyn ClientAccess,
    txn: &mut Transaction,
    variant: Variant,
    p: &NewOrderParams,
) -> Result<i64> {
    let w_key = [Value::Int(p.w_id)];
    let (_, _warehouse) = access
        .get_by_pk(txn, "warehouse", &w_key, LockPolicy::Shared)?
        .ok_or(Error::RowNotFound)?;

    // Customer discount/credit first (see payment.rs: any lazy-migration
    // wait must happen before the hot district lock is held).
    let customer = find_customer(
        access,
        txn,
        variant,
        p.w_id,
        p.d_id,
        &CustomerSelector::Id(p.c_id),
        LockPolicy::Shared,
    )?;
    let _ = customer.discount;

    // District: take the next order id.
    let d_key = [Value::Int(p.w_id), Value::Int(p.d_id)];
    let (d_rid, d_row) = access
        .get_by_pk(txn, "district", &d_key, LockPolicy::Exclusive)?
        .ok_or(Error::RowNotFound)?;
    let o_id = d_row[9].as_i64().ok_or(Error::RowNotFound)?;
    access.update(txn, "district", d_rid, bump_int(&d_row, 9, 1)?)?;

    // Order + NewOrder rows.
    let all_local = p.items.iter().all(|i| i.supply_w_id == p.w_id) as i64;
    access.insert(
        txn,
        "orders",
        Row(vec![
            Value::Int(p.w_id),
            Value::Int(p.d_id),
            Value::Int(o_id),
            Value::Int(p.c_id),
            Value::Timestamp(p.now),
            Value::Null,
            Value::Int(p.items.len() as i64),
            Value::Int(all_local),
        ]),
    )?;
    access.insert(
        txn,
        "neworder",
        Row(vec![
            Value::Int(p.w_id),
            Value::Int(p.d_id),
            Value::Int(o_id),
        ]),
    )?;

    let mut total: i64 = 0;
    for (n, line) in p.items.iter().enumerate() {
        if line.i_id == 0 {
            // Unused item: the spec's forced rollback path.
            return Err(Error::RowNotFound);
        }
        let (_, item) = access
            .get_by_pk(txn, "item", &[Value::Int(line.i_id)], LockPolicy::Shared)?
            .ok_or(Error::RowNotFound)?;
        let price = item[3].as_i64().unwrap_or(0);
        let amount = price * line.quantity;
        total += amount;

        match variant {
            Variant::JoinDenorm => {
                // The stock state lives embedded in orderline_stock: read
                // the item's current embedded quantity (this is what pulls
                // the item's group through lazy migration)...
                let probe = Expr::column("ol_i_id")
                    .eq(Expr::lit(line.i_id))
                    .and(Expr::column("s_w_id").eq(Expr::lit(line.supply_w_id)));
                let existing =
                    access.select(txn, "orderline_stock", Some(&probe), LockPolicy::Shared)?;
                let (s_qty, s_ytd, s_cnt) = existing
                    .iter()
                    .map(|(_, r)| {
                        (
                            r[9].as_i64().unwrap_or(50),
                            r[10].as_i64().unwrap_or(0),
                            r[11].as_i64().unwrap_or(0),
                        )
                    })
                    .max_by_key(|(_, _, cnt)| *cnt)
                    .unwrap_or((50, 0, 0));
                let new_qty = if s_qty - line.quantity >= 10 {
                    s_qty - line.quantity
                } else {
                    s_qty - line.quantity + 91
                };
                // ...and append the denormalized order line carrying the
                // updated embedded stock columns (denormalization accepts
                // that older rows keep their stale embedded copies).
                access.insert(
                    txn,
                    "orderline_stock",
                    Row(vec![
                        Value::Int(p.w_id),
                        Value::Int(p.d_id),
                        Value::Int(o_id),
                        Value::Int((n + 1) as i64),
                        Value::Int(line.i_id),
                        Value::Null,
                        Value::Int(line.quantity),
                        Value::Decimal(amount),
                        Value::Int(line.supply_w_id),
                        Value::Int(new_qty),
                        Value::Decimal(s_ytd + line.quantity),
                        Value::Int(s_cnt + 1),
                    ]),
                )?;
            }
            _ => {
                // Stock FOR UPDATE.
                let s_key = [Value::Int(line.supply_w_id), Value::Int(line.i_id)];
                let (s_rid, s_row) = access
                    .get_by_pk(txn, "stock", &s_key, LockPolicy::Exclusive)?
                    .ok_or(Error::RowNotFound)?;
                let s_qty = s_row[2].as_i64().unwrap_or(0);
                let new_qty = if s_qty - line.quantity >= 10 {
                    s_qty - line.quantity
                } else {
                    s_qty - line.quantity + 91
                };
                let mut new_stock = s_row.clone();
                new_stock.set(2, Value::Int(new_qty));
                new_stock.set(
                    3,
                    Value::Decimal(s_row[3].as_i64().unwrap_or(0) + line.quantity),
                );
                new_stock.set(4, Value::Int(s_row[4].as_i64().unwrap_or(0) + 1));
                access.update(txn, "stock", s_rid, new_stock)?;

                access.insert(
                    txn,
                    "order_line",
                    Row(vec![
                        Value::Int(p.w_id),
                        Value::Int(p.d_id),
                        Value::Int(o_id),
                        Value::Int((n + 1) as i64),
                        Value::Int(line.i_id),
                        Value::Int(line.supply_w_id),
                        Value::Null,
                        Value::Int(line.quantity),
                        Value::Decimal(amount),
                        Value::text("dist-info"),
                    ]),
                )?;
            }
        }
    }

    // §4.2 variant: the application co-maintains the aggregate table.
    // Upsert: reading the key first lets BullFrog's lazy machinery settle
    // the group (it may have just computed it from this very
    // transaction's order lines), then the app writes the final total.
    if variant == Variant::OrderTotals {
        let key = [Value::Int(p.w_id), Value::Int(p.d_id), Value::Int(o_id)];
        match access.get_by_pk(txn, "order_totals", &key, LockPolicy::Exclusive)? {
            Some((rid, row)) => {
                let mut updated = row;
                updated.set(3, Value::Decimal(total));
                access.update(txn, "order_totals", rid, updated)?;
            }
            None => {
                access.insert(
                    txn,
                    "order_totals",
                    Row(vec![
                        Value::Int(p.w_id),
                        Value::Int(p.d_id),
                        Value::Int(o_id),
                        Value::Decimal(total),
                    ]),
                )?;
            }
        }
    }
    Ok(o_id)
}
