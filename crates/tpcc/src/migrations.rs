//! The paper's three schema evolutions over TPC-C, as migration plans.

use bullfrog_common::{ColumnDef, DataType, Result, TableSchema};
use bullfrog_core::{MigrationPlan, MigrationStatement};
use bullfrog_engine::Database;
use bullfrog_query::{AggFunc, ColRef, Expr, SelectSpec};

/// Which evolution an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// §4.1: split `customer` into `customer_pub` + `customer_priv`
    /// (1:n w.r.t. customer → two bitmap statements).
    CustomerSplit,
    /// §4.2: maintain per-order totals of `order_line` in a separate
    /// `order_totals` table (n:1 → hashmap). Backwards compatible: the
    /// old tables stay live and post-migration transactions maintain both.
    OrderTotals,
    /// §4.3: denormalize `order_line ⋈ stock` (on item id) into
    /// `orderline_stock` (n:n → hashmap), replacing both tables.
    JoinDenorm,
}

/// FOREIGN KEY configurations for the §4.5 constraint experiments
/// (Figure 12) on the customer split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FkLevel {
    /// Primary keys only.
    #[default]
    None,
    /// Both split outputs declare `(c_w_id, c_d_id) → district`.
    District,
    /// District FKs plus a cross-split FK `customer_priv → customer_pub`.
    ///
    /// The paper's wording ("foreign key constraints from the Customer
    /// table to Order and District") cannot be declared literally —
    /// `orders(o_w_id, o_d_id, o_c_id)` is not unique, so nothing can
    /// reference it. The cross-split FK reproduces the *measured effect*:
    /// every constrained insert forces additional data (the referenced
    /// slice) to migrate first.
    OrderAndDistrict,
}

/// Schema of `customer_pub` (the less private half of the split).
pub fn customer_pub_schema(fk: FkLevel) -> TableSchema {
    let mut s = TableSchema::new(
        "customer_pub",
        vec![
            ColumnDef::new("c_w_id", DataType::Int),
            ColumnDef::new("c_d_id", DataType::Int),
            ColumnDef::new("c_id", DataType::Int),
            ColumnDef::new("c_first", DataType::Text),
            ColumnDef::new("c_last", DataType::Text),
            ColumnDef::new("c_street", DataType::Text),
            ColumnDef::new("c_city", DataType::Text),
            ColumnDef::new("c_state", DataType::Text),
            ColumnDef::new("c_zip", DataType::Text),
            ColumnDef::new("c_phone", DataType::Text),
        ],
    )
    .with_primary_key(&["c_w_id", "c_d_id", "c_id"]);
    if fk != FkLevel::None {
        s = s.with_foreign_key(
            "customer_pub_district_fk",
            &["c_w_id", "c_d_id"],
            "district",
            &["d_w_id", "d_id"],
        );
    }
    s
}

/// Schema of `customer_priv` (the financial half of the split).
pub fn customer_priv_schema(fk: FkLevel) -> TableSchema {
    let mut s = TableSchema::new(
        "customer_priv",
        vec![
            ColumnDef::new("c_w_id", DataType::Int),
            ColumnDef::new("c_d_id", DataType::Int),
            ColumnDef::new("c_id", DataType::Int),
            ColumnDef::new("c_credit", DataType::Text),
            ColumnDef::new("c_credit_lim", DataType::Decimal),
            ColumnDef::new("c_discount", DataType::Float),
            ColumnDef::new("c_balance", DataType::Decimal),
            ColumnDef::new("c_ytd_payment", DataType::Decimal),
            ColumnDef::new("c_payment_cnt", DataType::Int),
            ColumnDef::new("c_delivery_cnt", DataType::Int),
        ],
    )
    .with_primary_key(&["c_w_id", "c_d_id", "c_id"]);
    if fk != FkLevel::None {
        s = s.with_foreign_key(
            "customer_priv_district_fk",
            &["c_w_id", "c_d_id"],
            "district",
            &["d_w_id", "d_id"],
        );
    }
    if fk == FkLevel::OrderAndDistrict {
        s = s.with_foreign_key(
            "customer_priv_pub_fk",
            &["c_w_id", "c_d_id", "c_id"],
            "customer_pub",
            &["c_w_id", "c_d_id", "c_id"],
        );
    }
    s
}

/// §4.1 table-split plan (with optional §4.5 FK constraints).
pub fn customer_split_plan(fk: FkLevel) -> MigrationPlan {
    let pub_cols = [
        "c_w_id", "c_d_id", "c_id", "c_first", "c_last", "c_street", "c_city", "c_state", "c_zip",
        "c_phone",
    ];
    let priv_cols = [
        "c_w_id",
        "c_d_id",
        "c_id",
        "c_credit",
        "c_credit_lim",
        "c_discount",
        "c_balance",
        "c_ytd_payment",
        "c_payment_cnt",
        "c_delivery_cnt",
    ];
    let mut pub_spec = SelectSpec::new().from_table("customer", "c");
    for col in pub_cols {
        pub_spec = pub_spec.select(col, Expr::col("c", col));
    }
    let mut priv_spec = SelectSpec::new().from_table("customer", "c");
    for col in priv_cols {
        priv_spec = priv_spec.select(col, Expr::col("c", col));
    }
    MigrationPlan::new("customer_split")
        .with_statement(MigrationStatement::new(customer_pub_schema(fk), pub_spec))
        .with_statement(MigrationStatement::new(customer_priv_schema(fk), priv_spec))
}

/// As [`customer_split_plan`] with page-granularity bitmap tracking
/// (§4.4.3, Figure 11).
pub fn customer_split_plan_granular(fk: FkLevel, granule_rows: u64) -> MigrationPlan {
    let mut plan = customer_split_plan(fk);
    for s in &mut plan.statements {
        s.granule_rows = granule_rows.max(1);
    }
    plan
}

/// Schema of the §4.2 `order_totals` table.
pub fn order_totals_schema() -> TableSchema {
    TableSchema::new(
        "order_totals",
        vec![
            ColumnDef::new("ot_w_id", DataType::Int),
            ColumnDef::new("ot_d_id", DataType::Int),
            ColumnDef::new("ot_o_id", DataType::Int),
            ColumnDef::nullable("ot_total", DataType::Decimal),
        ],
    )
    .with_primary_key(&["ot_w_id", "ot_d_id", "ot_o_id"])
}

/// §4.2 aggregation plan: per-order `SUM(ol_amount)` materialized as a
/// table the application co-maintains. Backwards compatible, and the old
/// tables stay writable (post-migration transactions insert order lines
/// *and* maintain `order_totals`; lazy migration covers the pre-existing
/// orders, whose totals are stable).
pub fn order_totals_plan() -> MigrationPlan {
    let spec = SelectSpec::new()
        .from_table("order_line", "ol")
        .select("ot_w_id", Expr::col("ol", "ol_w_id"))
        .select("ot_d_id", Expr::col("ol", "ol_d_id"))
        .select("ot_o_id", Expr::col("ol", "ol_o_id"))
        .select_agg("ot_total", AggFunc::Sum, Expr::col("ol", "ol_amount"));
    let mut plan = MigrationPlan::new("order_totals")
        .with_statement(MigrationStatement::new(order_totals_schema(), spec))
        .backwards_compatible();
    plan.freeze_inputs = false;
    plan
}

/// Schema of the §4.3 `orderline_stock` denormalization.
pub fn orderline_stock_schema() -> TableSchema {
    TableSchema::new(
        "orderline_stock",
        vec![
            ColumnDef::new("ol_w_id", DataType::Int),
            ColumnDef::new("ol_d_id", DataType::Int),
            ColumnDef::new("ol_o_id", DataType::Int),
            ColumnDef::new("ol_number", DataType::Int),
            ColumnDef::new("ol_i_id", DataType::Int),
            ColumnDef::nullable("ol_delivery_d", DataType::Timestamp),
            ColumnDef::new("ol_quantity", DataType::Int),
            ColumnDef::new("ol_amount", DataType::Decimal),
            ColumnDef::new("s_w_id", DataType::Int),
            ColumnDef::new("s_quantity", DataType::Int),
            ColumnDef::new("s_ytd", DataType::Decimal),
            ColumnDef::new("s_order_cnt", DataType::Int),
        ],
    )
    .with_primary_key(&["ol_w_id", "ol_d_id", "ol_o_id", "ol_number", "s_w_id"])
}

/// §4.3 join-denormalization plan: `order_line ⋈ stock ON ol_i_id =
/// s_i_id` — a many-to-many join (each item id appears in many order lines
/// and in one stock row per warehouse), tracked by a hashmap keyed on the
/// join attribute (§3.6's group option).
pub fn orderline_stock_plan() -> MigrationPlan {
    let spec = SelectSpec::new()
        .from_table("order_line", "ol")
        .from_table("stock", "s")
        .join_on(ColRef::new("ol", "ol_i_id"), ColRef::new("s", "s_i_id"))
        .select("ol_w_id", Expr::col("ol", "ol_w_id"))
        .select("ol_d_id", Expr::col("ol", "ol_d_id"))
        .select("ol_o_id", Expr::col("ol", "ol_o_id"))
        .select("ol_number", Expr::col("ol", "ol_number"))
        .select("ol_i_id", Expr::col("ol", "ol_i_id"))
        .select("ol_delivery_d", Expr::col("ol", "ol_delivery_d"))
        .select("ol_quantity", Expr::col("ol", "ol_quantity"))
        .select("ol_amount", Expr::col("ol", "ol_amount"))
        .select("s_w_id", Expr::col("s", "s_w_id"))
        .select("s_quantity", Expr::col("s", "s_quantity"))
        .select("s_ytd", Expr::col("s", "s_ytd"))
        .select("s_order_cnt", Expr::col("s", "s_order_cnt"));
    MigrationPlan::new("orderline_stock")
        .with_statement(MigrationStatement::new(orderline_stock_schema(), spec))
}

impl Scenario {
    /// The plan for this scenario (split uses [`FkLevel::None`]).
    pub fn plan(self) -> MigrationPlan {
        match self {
            Scenario::CustomerSplit => customer_split_plan(FkLevel::None),
            Scenario::OrderTotals => order_totals_plan(),
            Scenario::JoinDenorm => orderline_stock_plan(),
        }
    }

    /// Creates the secondary indexes post-migration transactions rely on;
    /// call right after submitting/registering the plan (output tables
    /// must exist).
    pub fn create_output_indexes(self, db: &Database) -> Result<()> {
        match self {
            Scenario::CustomerSplit => db.create_index(
                "customer_pub",
                "customer_pub_last_idx",
                &["c_w_id", "c_d_id", "c_last"],
                false,
            ),
            Scenario::OrderTotals => Ok(()),
            Scenario::JoinDenorm => {
                db.create_index(
                    "orderline_stock",
                    "orderline_stock_item_idx",
                    &["ol_i_id"],
                    false,
                )?;
                db.create_index(
                    "orderline_stock",
                    "orderline_stock_order_idx",
                    &["ol_w_id", "ol_d_id", "ol_o_id"],
                    false,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load, TpccScale};
    use bullfrog_core::{MigrationCategory, Tracking};

    fn loaded_db() -> Database {
        let db = Database::new();
        load(&db, &TpccScale::tiny()).unwrap();
        db
    }

    #[test]
    fn split_resolves_to_two_bitmaps() {
        let db = loaded_db();
        let mut plan = customer_split_plan(FkLevel::None);
        plan.resolve(&db).unwrap();
        assert_eq!(plan.statements.len(), 2);
        for s in &plan.statements {
            assert_eq!(s.category(), MigrationCategory::OneToOne);
            assert!(matches!(s.tracking(), Tracking::Bitmap { .. }));
        }
        assert!(plan.big_flip);
    }

    #[test]
    fn totals_resolve_to_hashmap_n_to_1() {
        let db = loaded_db();
        let mut plan = order_totals_plan();
        plan.resolve(&db).unwrap();
        let s = &plan.statements[0];
        assert_eq!(s.category(), MigrationCategory::ManyToOne);
        match s.tracking() {
            Tracking::Hash {
                key_alias,
                key_exprs,
            } => {
                assert_eq!(key_alias, "ol");
                assert_eq!(key_exprs.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(!plan.big_flip);
        assert!(!plan.freeze_inputs);
    }

    #[test]
    fn join_resolves_to_hashmap_n_to_n() {
        let db = loaded_db();
        let mut plan = orderline_stock_plan();
        plan.resolve(&db).unwrap();
        let s = &plan.statements[0];
        assert_eq!(s.category(), MigrationCategory::ManyToMany);
        assert!(matches!(s.tracking(), Tracking::Hash { .. }));
    }

    #[test]
    fn fk_levels_add_constraints() {
        assert!(customer_priv_schema(FkLevel::None).foreign_keys.is_empty());
        assert_eq!(
            customer_priv_schema(FkLevel::District).foreign_keys.len(),
            1
        );
        assert_eq!(
            customer_priv_schema(FkLevel::OrderAndDistrict)
                .foreign_keys
                .len(),
            2
        );
    }

    #[test]
    fn granular_plan_sets_page_granules() {
        let plan = customer_split_plan_granular(FkLevel::None, 64);
        assert!(plan.statements.iter().all(|s| s.granule_rows == 64));
    }
}
