//! Transaction-mix driver: parameter generation (per the spec's clauses
//! 2.4–2.8), the 45/43/4/4/4 mix, retry-on-conflict execution, and the
//! variant switch at the schema flip.

use bullfrog_common::Error;
use bullfrog_core::{ClientAccess, SchemaVersion};

use crate::gen::TpccRng;
use crate::loader::TpccScale;
use crate::migrations::Scenario;
use crate::txns::{
    delivery, new_order, order_status, payment, stock_level, CustomerSelector, DeliveryParams,
    NewOrderItem, NewOrderParams, OrderStatusParams, PaymentParams, StockLevelParams, Variant,
};

/// The five transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// 45%.
    NewOrder,
    /// 43%.
    Payment,
    /// 4%.
    OrderStatus,
    /// 4%.
    Delivery,
    /// 4%.
    StockLevel,
}

impl TxnKind {
    /// Draws a kind at the standard mix percentages.
    pub fn pick(rng: &mut TpccRng) -> TxnKind {
        match rng.uniform(1, 100) {
            1..=45 => TxnKind::NewOrder,
            46..=88 => TxnKind::Payment,
            89..=92 => TxnKind::OrderStatus,
            93..=96 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }

    /// All kinds (reporting).
    pub fn all() -> [TxnKind; 5] {
        [
            TxnKind::NewOrder,
            TxnKind::Payment,
            TxnKind::OrderStatus,
            TxnKind::Delivery,
            TxnKind::StockLevel,
        ]
    }
}

/// How one transaction attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed (possibly after retries).
    Committed,
    /// The spec's intentional NewOrder rollback (unused item).
    UserAbort,
    /// Gave up after exhausting retries, or hit a non-retryable error.
    Failed(Error),
}

impl TxnOutcome {
    /// Whether the outcome counts as successfully processed work.
    pub fn is_success(&self) -> bool {
        matches!(self, TxnOutcome::Committed | TxnOutcome::UserAbort)
    }
}

/// Parameter generator + executor for the TPC-C mix.
pub struct Driver {
    /// Scale the database was loaded at.
    pub scale: TpccScale,
    /// Which post-migration variant to use once the strategy flips.
    pub scenario: Option<Scenario>,
    /// Retries on lock conflicts before reporting failure.
    pub max_retries: usize,
    /// Probability (percent) of the NewOrder unused-item rollback.
    pub rollback_pct: u32,
    /// Mix weights for [NewOrder, Payment, OrderStatus, Delivery,
    /// StockLevel]; defaults to the spec's 45/43/4/4/4.
    pub weights: [u32; 5],
}

impl Driver {
    /// Driver for a scale and optional scenario.
    pub fn new(scale: TpccScale, scenario: Option<Scenario>) -> Self {
        Driver {
            scale,
            scenario,
            max_retries: 20,
            rollback_pct: 1,
            weights: [45, 43, 4, 4, 4],
        }
    }

    /// Draws a transaction kind at this driver's mix weights.
    pub fn pick_kind(&self, rng: &mut TpccRng) -> TxnKind {
        let total: u32 = self.weights.iter().sum();
        let mut draw = rng.uniform(1, total.max(1) as i64) as u32;
        for (kind, w) in [
            TxnKind::NewOrder,
            TxnKind::Payment,
            TxnKind::OrderStatus,
            TxnKind::Delivery,
            TxnKind::StockLevel,
        ]
        .into_iter()
        .zip(self.weights)
        {
            if draw <= w {
                return kind;
            }
            draw -= w;
        }
        TxnKind::NewOrder
    }

    /// Which transaction variant applies right now.
    pub fn variant(&self, access: &dyn ClientAccess) -> Variant {
        match (access.version(), self.scenario) {
            (SchemaVersion::New, Some(Scenario::CustomerSplit)) => Variant::CustomerSplit,
            (SchemaVersion::New, Some(Scenario::OrderTotals)) => Variant::OrderTotals,
            (SchemaVersion::New, Some(Scenario::JoinDenorm)) => Variant::JoinDenorm,
            _ => Variant::Base,
        }
    }

    fn customer_selector(&self, rng: &mut TpccRng) -> CustomerSelector {
        if rng.chance(60) {
            let bound = (self.scale.customers_per_district / 3 - 1).max(0);
            let num = rng.nurand(255, 0, bound.min(999));
            CustomerSelector::LastName(TpccRng::last_name_for(num))
        } else {
            CustomerSelector::Id(rng.customer_id(self.scale.customers_per_district))
        }
    }

    /// Runs one transaction of `kind`, retrying on lock conflicts with the
    /// same parameters (per the spec).
    pub fn run_one(
        &self,
        access: &dyn ClientAccess,
        rng: &mut TpccRng,
        kind: TxnKind,
        now: i64,
    ) -> TxnOutcome {
        let variant = self.variant(access);
        let w = rng.uniform(1, self.scale.warehouses);
        let d = rng.uniform(1, self.scale.districts_per_warehouse);

        enum Params {
            N(NewOrderParams),
            P(PaymentParams),
            O(OrderStatusParams),
            D(DeliveryParams),
            S(StockLevelParams),
        }
        let params = match kind {
            TxnKind::NewOrder => {
                let ol_cnt = rng.uniform(5, 15);
                let rollback = self.rollback_pct > 0 && rng.chance(self.rollback_pct);
                let items = (0..ol_cnt)
                    .map(|n| {
                        let last = n == ol_cnt - 1;
                        NewOrderItem {
                            i_id: if rollback && last {
                                0
                            } else {
                                rng.item_id(self.scale.items)
                            },
                            supply_w_id: if self.scale.warehouses > 1 && rng.chance(1) {
                                // 1% remote supply.
                                let mut other = rng.uniform(1, self.scale.warehouses);
                                if other == w {
                                    other = other % self.scale.warehouses + 1;
                                }
                                other
                            } else {
                                w
                            },
                            quantity: rng.uniform(1, 10),
                        }
                    })
                    .collect();
                Params::N(NewOrderParams {
                    w_id: w,
                    d_id: d,
                    c_id: rng.customer_id(self.scale.customers_per_district),
                    items,
                    now,
                })
            }
            TxnKind::Payment => {
                // 15% remote customers when there is more than one wh.
                let (c_w, c_d) = if self.scale.warehouses > 1 && rng.chance(15) {
                    let mut other = rng.uniform(1, self.scale.warehouses);
                    if other == w {
                        other = other % self.scale.warehouses + 1;
                    }
                    (other, rng.uniform(1, self.scale.districts_per_warehouse))
                } else {
                    (w, d)
                };
                Params::P(PaymentParams {
                    w_id: w,
                    d_id: d,
                    c_w_id: c_w,
                    c_d_id: c_d,
                    selector: self.customer_selector(rng),
                    amount: rng.uniform(100, 500_000),
                    now,
                })
            }
            TxnKind::OrderStatus => Params::O(OrderStatusParams {
                w_id: w,
                d_id: d,
                selector: self.customer_selector(rng),
            }),
            TxnKind::Delivery => Params::D(DeliveryParams {
                w_id: w,
                districts: self.scale.districts_per_warehouse,
                carrier: rng.uniform(1, 10),
                now,
            }),
            TxnKind::StockLevel => Params::S(StockLevelParams {
                w_id: w,
                d_id: d,
                threshold: rng.uniform(10, 20),
            }),
        };

        let db = access.db();
        let mut last_err = None;
        for _ in 0..=self.max_retries {
            let mut txn = db.begin();
            let result = match &params {
                Params::N(p) => new_order(access, &mut txn, variant, p).map(|_| ()),
                Params::P(p) => payment(access, &mut txn, variant, p).map(|_| ()),
                Params::O(p) => order_status(access, &mut txn, variant, p).map(|_| ()),
                Params::D(p) => delivery(access, &mut txn, variant, p).map(|_| ()),
                Params::S(p) => stock_level(access, &mut txn, variant, p).map(|_| ()),
            };
            match result {
                Ok(()) => match db.commit(&mut txn) {
                    Ok(()) => return TxnOutcome::Committed,
                    Err(e) => {
                        db.abort(&mut txn);
                        last_err = Some(e);
                    }
                },
                Err(Error::RowNotFound) if kind == TxnKind::NewOrder => {
                    // The unused-item rollback: abort and count as a
                    // processed (user-aborted) transaction.
                    db.abort(&mut txn);
                    return TxnOutcome::UserAbort;
                }
                Err(e) if e.is_retryable() => {
                    db.abort(&mut txn);
                    last_err = Some(e);
                }
                Err(e) => {
                    db.abort(&mut txn);
                    return TxnOutcome::Failed(e);
                }
            }
        }
        TxnOutcome::Failed(last_err.unwrap_or(Error::Internal("retries exhausted".into())))
    }
}
