//! End-to-end TPC-C workload tests: the plain mix, then each of the
//! paper's three schema evolutions running live under the mix, with
//! consistency checks before and after.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_core::{BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, Passthrough};
use bullfrog_engine::{Database, DbConfig};
use bullfrog_tpcc::{checks, load, Driver, Scenario, TpccRng, TpccScale, TxnKind, TxnOutcome};

fn test_db() -> Arc<Database> {
    Arc::new(Database::with_config(DbConfig {
        lock_timeout: Duration::from_millis(100),
        // TPC-C deletes neworder rows whose orders are referenced nowhere;
        // full incoming-FK scans are wasteful here.
        enforce_fk_on_delete: false,
        ..Default::default()
    }))
}

fn scale() -> TpccScale {
    TpccScale {
        warehouses: 1,
        districts_per_warehouse: 2,
        customers_per_district: 60,
        items: 100,
        orders_per_district: 30,
        seed: 7,
    }
}

fn run_mix(
    access: &dyn ClientAccess,
    driver: &Driver,
    rng: &mut TpccRng,
    n: usize,
) -> (usize, usize) {
    let mut committed = 0;
    let mut failed = 0;
    for i in 0..n {
        let kind = TxnKind::pick(rng);
        match driver.run_one(access, rng, kind, (i as i64 + 1) * 1_000_000) {
            TxnOutcome::Committed | TxnOutcome::UserAbort => committed += 1,
            TxnOutcome::Failed(e) => {
                failed += 1;
                eprintln!("txn {kind:?} failed: {e}");
            }
        }
    }
    (committed, failed)
}

#[test]
fn base_mix_runs_clean_and_consistent() {
    let db = test_db();
    let s = scale();
    let mut rng = load(&db, &s).unwrap();
    let access = Passthrough::new(Arc::clone(&db));
    let driver = Driver::new(s, None);
    let (committed, failed) = run_mix(&access, &driver, &mut rng, 300);
    assert_eq!(failed, 0, "{committed} committed");
    checks::check_warehouse_ytd(&db).unwrap();
    checks::check_district_order_ids(&db).unwrap();
    checks::check_neworder_consistency(&db).unwrap();
}

fn bullfrog_config() -> BullfrogConfig {
    BullfrogConfig {
        background: BackgroundConfig {
            enabled: true,
            start_delay: Duration::from_millis(50),
            batch: 64,
            pause: Duration::from_millis(1),
            threads: 2,
        },
        ..Default::default()
    }
}

/// Shared scenario harness: run the mix, flip mid-run, keep running, wait
/// for completion, check invariants.
fn run_scenario(scenario: Scenario) -> Arc<Database> {
    let db = test_db();
    let s = scale();
    let mut rng = load(&db, &s).unwrap();
    let bf = Bullfrog::with_config(Arc::clone(&db), bullfrog_config());
    let driver = Driver::new(s, Some(scenario));

    // Pre-flip traffic.
    let (_, failed) = run_mix(&bf, &driver, &mut rng, 100);
    assert_eq!(failed, 0, "pre-flip mix must be clean");

    // The single-step migration: logical flip now.
    bf.submit_migration(scenario.plan()).unwrap();
    scenario.create_output_indexes(&db).unwrap();

    // Post-flip traffic drives lazy migration.
    let (committed, failed) = run_mix(&bf, &driver, &mut rng, 300);
    assert_eq!(failed, 0, "post-flip mix must be clean ({committed} ok)");

    assert!(
        bf.wait_migration_complete(Duration::from_secs(300)),
        "background + client-driven migration must complete; stats: {}",
        bf.active().map(|a| a.stats.summary()).unwrap_or_default()
    );
    bf.shutdown_background();

    // More traffic after completion.
    let (_, failed) = run_mix(&bf, &driver, &mut rng, 100);
    assert_eq!(failed, 0, "post-completion mix must be clean");
    db
}

#[test]
fn customer_split_scenario_end_to_end() {
    let db = run_scenario(Scenario::CustomerSplit);
    checks::check_district_order_ids(&db).unwrap();
    checks::check_neworder_consistency(&db).unwrap();
    checks::check_split_complete(&db).unwrap();
    // Warehouse YTD still consistent (payments kept working throughout).
    checks::check_warehouse_ytd(&db).unwrap();
}

#[test]
fn order_totals_scenario_end_to_end() {
    let db = run_scenario(Scenario::OrderTotals);
    checks::check_warehouse_ytd(&db).unwrap();
    checks::check_district_order_ids(&db).unwrap();
    checks::check_order_totals(&db).unwrap();
    // Every order must have a totals row by completion (old via lazy/
    // background, new via app maintenance).
    let orders = db.table("orders").unwrap().live_count();
    let totals = db.table("order_totals").unwrap().live_count();
    assert_eq!(orders, totals);
}

#[test]
fn join_denorm_scenario_end_to_end() {
    let db = run_scenario(Scenario::JoinDenorm);
    checks::check_warehouse_ytd(&db).unwrap();
    checks::check_district_order_ids(&db).unwrap();
    checks::check_neworder_consistency(&db).unwrap();
    // The denormalized table covers at least the pre-flip join.
    let old_lines = 0; // all pre-flip lines count; checked via cardinality
    let _ = old_lines;
    assert!(db.table("orderline_stock").unwrap().live_count() > 0);
}
