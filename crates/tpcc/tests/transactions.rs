//! Unit-level tests of each TPC-C transaction body against a freshly
//! loaded database (base variant), checking the exact row mutations the
//! spec prescribes.

use std::sync::Arc;

use bullfrog_common::Value;
use bullfrog_core::Passthrough;
use bullfrog_engine::{Database, DbConfig};
use bullfrog_tpcc::txns::{
    delivery, new_order, order_status, payment, stock_level, CustomerSelector, DeliveryParams,
    NewOrderItem, NewOrderParams, OrderStatusParams, PaymentParams, StockLevelParams, Variant,
};
use bullfrog_tpcc::{load, TpccScale};

fn setup() -> (Arc<Database>, Passthrough, TpccScale) {
    let db = Arc::new(Database::with_config(DbConfig {
        enforce_fk_on_delete: false,
        ..Default::default()
    }));
    let scale = TpccScale::tiny();
    load(&db, &scale).unwrap();
    let access = Passthrough::new(Arc::clone(&db));
    (db, access, scale)
}

#[test]
fn new_order_mutates_everything_the_spec_says() {
    let (db, access, scale) = setup();
    let next_before = db
        .table("district")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(1)])
        .unwrap()
        .1[9]
        .as_i64()
        .unwrap();
    let stock_before = db
        .table("stock")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(5)])
        .unwrap()
        .1[2]
        .as_i64()
        .unwrap();

    let p = NewOrderParams {
        w_id: 1,
        d_id: 1,
        c_id: 3,
        items: vec![
            NewOrderItem {
                i_id: 5,
                supply_w_id: 1,
                quantity: 4,
            },
            NewOrderItem {
                i_id: 6,
                supply_w_id: 1,
                quantity: 2,
            },
        ],
        now: 42,
    };
    let mut txn = db.begin();
    let o_id = new_order(&access, &mut txn, Variant::Base, &p).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(o_id, next_before);

    // District advanced.
    let next_after = db
        .table("district")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(1)])
        .unwrap()
        .1[9]
        .as_i64()
        .unwrap();
    assert_eq!(next_after, next_before + 1);
    // Order, neworder, and two order lines exist.
    let okey = [Value::Int(1), Value::Int(1), Value::Int(o_id)];
    let (_, o) = db.table("orders").unwrap().get_by_pk(&okey).unwrap();
    assert_eq!(o[3], Value::Int(3));
    assert_eq!(o[6], Value::Int(2));
    assert!(db.table("neworder").unwrap().get_by_pk(&okey).is_some());
    let lines = db
        .select_unlocked(
            "order_line",
            Some(
                &bullfrog_query::Expr::column("ol_o_id")
                    .eq(bullfrog_query::Expr::lit(o_id))
                    .and(bullfrog_query::Expr::column("ol_d_id").eq(bullfrog_query::Expr::lit(1))),
            ),
        )
        .unwrap();
    assert_eq!(lines.len(), 2);
    // Stock decreased (no reorder wrap at these quantities).
    let stock_after = db
        .table("stock")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(5)])
        .unwrap()
        .1[2]
        .as_i64()
        .unwrap();
    if stock_before - 4 >= 10 {
        assert_eq!(stock_after, stock_before - 4);
    } else {
        assert_eq!(stock_after, stock_before - 4 + 91);
    }
    let _ = scale;
}

#[test]
fn new_order_rollback_leaves_no_trace() {
    let (db, access, _) = setup();
    let next_before = db
        .table("district")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(1)])
        .unwrap()
        .1[9]
        .as_i64()
        .unwrap();
    let orders_before = db.table("orders").unwrap().live_count();
    let p = NewOrderParams {
        w_id: 1,
        d_id: 1,
        c_id: 3,
        items: vec![
            NewOrderItem {
                i_id: 5,
                supply_w_id: 1,
                quantity: 4,
            },
            NewOrderItem {
                i_id: 0,
                supply_w_id: 1,
                quantity: 1,
            }, // unused item
        ],
        now: 42,
    };
    let mut txn = db.begin();
    assert!(new_order(&access, &mut txn, Variant::Base, &p).is_err());
    db.abort(&mut txn);
    assert_eq!(db.table("orders").unwrap().live_count(), orders_before);
    let next_after = db
        .table("district")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(1)])
        .unwrap()
        .1[9]
        .as_i64()
        .unwrap();
    assert_eq!(next_after, next_before, "district increment rolled back");
}

#[test]
fn payment_moves_exact_amounts() {
    let (db, access, _) = setup();
    let w_ytd = db
        .table("warehouse")
        .unwrap()
        .get_by_pk(&[Value::Int(1)])
        .unwrap()
        .1[7]
        .as_i64()
        .unwrap();
    let c_key = [Value::Int(1), Value::Int(1), Value::Int(2)];
    let bal = db.table("customer").unwrap().get_by_pk(&c_key).unwrap().1[13]
        .as_i64()
        .unwrap();

    let p = PaymentParams {
        w_id: 1,
        d_id: 1,
        c_w_id: 1,
        c_d_id: 1,
        selector: CustomerSelector::Id(2),
        amount: 12_345,
        now: 7,
    };
    let mut txn = db.begin();
    let c_id = payment(&access, &mut txn, Variant::Base, &p).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(c_id, 2);
    assert_eq!(
        db.table("warehouse")
            .unwrap()
            .get_by_pk(&[Value::Int(1)])
            .unwrap()
            .1[7]
            .as_i64()
            .unwrap(),
        w_ytd + 12_345
    );
    let c = db.table("customer").unwrap().get_by_pk(&c_key).unwrap().1;
    assert_eq!(c[13].as_i64().unwrap(), bal - 12_345);
    assert_eq!(c[15], Value::Int(2)); // payment_cnt 1 -> 2
}

#[test]
fn payment_by_last_name_picks_middle_match() {
    let (db, access, _) = setup();
    // Loader gives the first third deterministic names; find one.
    let name = bullfrog_tpcc::TpccRng::last_name_for(0);
    let p = PaymentParams {
        w_id: 1,
        d_id: 1,
        c_w_id: 1,
        c_d_id: 1,
        selector: CustomerSelector::LastName(name.clone()),
        amount: 100,
        now: 7,
    };
    let mut txn = db.begin();
    let c_id = payment(&access, &mut txn, Variant::Base, &p).unwrap();
    db.commit(&mut txn).unwrap();
    // The paid customer really has that last name.
    let c = db
        .table("customer")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(1), Value::Int(c_id)])
        .unwrap()
        .1;
    assert_eq!(c[4], Value::text(name));
}

#[test]
fn delivery_clears_oldest_new_orders_and_credits_customers() {
    let (db, access, scale) = setup();
    let pending_before = db.table("neworder").unwrap().live_count();
    assert!(pending_before > 0);
    let p = DeliveryParams {
        w_id: 1,
        districts: scale.districts_per_warehouse,
        carrier: 7,
        now: 99,
    };
    let mut txn = db.begin();
    let delivered = delivery(&access, &mut txn, Variant::Base, &p).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(delivered, scale.districts_per_warehouse as usize);
    assert_eq!(
        db.table("neworder").unwrap().live_count(),
        pending_before - delivered
    );
    // The delivered orders now carry the carrier id.
    let first_new = scale.first_new_order();
    let o = db
        .table("orders")
        .unwrap()
        .get_by_pk(&[Value::Int(1), Value::Int(1), Value::Int(first_new)])
        .unwrap()
        .1;
    assert_eq!(o[5], Value::Int(7));
}

#[test]
fn order_status_reports_last_order() {
    let (db, access, _) = setup();
    let p = OrderStatusParams {
        w_id: 1,
        d_id: 1,
        selector: CustomerSelector::Id(1),
    };
    let mut txn = db.begin();
    let st = order_status(&access, &mut txn, Variant::Base, &p).unwrap();
    db.commit(&mut txn).unwrap();
    if let Some(o) = st.last_order {
        assert!(o >= 1);
        assert!(st.lines >= 5, "TPC-C orders have at least 5 lines");
    }
}

#[test]
fn stock_level_counts_low_items() {
    let (db, access, _) = setup();
    // Threshold above any possible quantity counts every recent item;
    // threshold 0 counts none.
    let mut txn = db.begin();
    let all = stock_level(
        &access,
        &mut txn,
        Variant::Base,
        &StockLevelParams {
            w_id: 1,
            d_id: 1,
            threshold: 1_000_000,
        },
    )
    .unwrap();
    let none = stock_level(
        &access,
        &mut txn,
        Variant::Base,
        &StockLevelParams {
            w_id: 1,
            d_id: 1,
            threshold: 0,
        },
    )
    .unwrap();
    db.commit(&mut txn).unwrap();
    assert!(all > 0);
    assert_eq!(none, 0);
}
