//! Blocking BFNET1 client.
//!
//! [`Client`] wraps one TCP connection, sends the preamble on connect,
//! and reuses the connection for every subsequent call — the loadgen
//! binary and tests never pay a reconnect per statement. Simple calls
//! are request/response; [`Client::pipeline`] and
//! [`Client::pipeline_execute`] write a batch of request frames
//! back-to-back and then read the batch's responses, which the server
//! guarantees to return **in request order** (a failed statement yields
//! an error in its slot, never a desynchronized stream).
//!
//! Prepared statements ([`Client::prepare`] / [`Client::execute_prepared`]
//! / [`Client::close_stmt`]) cache a parsed template server-side under a
//! client-chosen id; `EXECUTE` ships only the id and a row of parameter
//! values, skipping SQL text transfer and parsing per call.
//!
//! Errors split three ways: [`ClientError::Io`] (the transport broke),
//! [`ClientError::Protocol`] (the peer spoke something that is not
//! BFNET1), and [`ClientError::Server`] (the statement failed; the
//! connection is still usable, and `retryable` says whether resubmitting
//! may succeed).

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bullfrog_common::Row;

use crate::cluster::{ClusterReq, ExchangeSpec, ShardMap};
use crate::wire::{self, HaReq, Request, Response};

/// Extracts the primary address a read-only/fenced rejection names, if
/// any — the re-route target for a client that talked to the wrong
/// node. Both the replica's `READ_ONLY` message and the fenced
/// ex-primary's error end with `... the primary at <addr>`.
pub fn primary_hint(message: &str) -> Option<String> {
    let rest = message.split("primary at ").nth(1)?;
    let addr = rest.split_whitespace().next()?;
    if addr.is_empty() || addr == "unknown" {
        return None;
    }
    Some(addr.to_string())
}

/// A decoded `HA_STATE` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaStateReply {
    /// Whether the request (renew/vote) was granted; `true` for probes.
    pub granted: bool,
    /// The responder's fencing epoch.
    pub epoch: u64,
    /// The responder's role (`leader`/`follower`/`candidate`/`witness`).
    pub role: String,
    /// Who the responder believes is leader (may be empty).
    pub leader: String,
    /// Milliseconds left on the lease the responder has granted.
    pub lease_ms: u64,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure; the connection is dead.
    Io(std::io::Error),
    /// Framing/decoding failure; the connection is not trustworthy.
    Protocol(String),
    /// The server executed the request and reported an error; the
    /// connection remains usable.
    Server {
        /// Whether a retry may succeed (lock timeouts, server busy).
        retryable: bool,
        /// Machine-readable classification
        /// ([`err_code`](crate::wire::err_code)) — e.g. distinguishing
        /// "server busy" from "read-only replica", which are both
        /// retryable but want different retry targets.
        code: u8,
        /// Server-reported cause.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server {
                retryable,
                code,
                message,
            } => {
                write!(
                    f,
                    "server: {message} (retryable: {retryable}, code: {code})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A query's successful outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// A result set.
    Rows {
        /// Output column names.
        names: Vec<String>,
        /// Output rows.
        rows: Vec<Row>,
    },
    /// A write/DDL acknowledgement.
    Ok {
        /// Rows written.
        affected: u64,
    },
}

/// One BFNET1 connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and sends the preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        wire::write_preamble(&mut stream)?;
        Ok(Client { stream })
    }

    /// As [`Client::connect`] with a connect timeout per resolved
    /// address.
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> ClientResult<Client> {
        let mut stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        wire::write_preamble(&mut stream)?;
        Ok(Client { stream })
    }

    /// Writes one request frame without reading a response; pair with
    /// [`Client::recv`] for pipelined batches.
    fn send(&mut self, request: &Request) -> ClientResult<()> {
        wire::write_frame(&mut self.stream, &request.encode())?;
        Ok(())
    }

    /// Reads one response, reassembling chunked `ROWS` results that the
    /// server split across frames.
    fn recv(&mut self) -> ClientResult<Response> {
        wire::read_response(&mut self.stream)
            .map_err(|e| ClientError::Protocol(e.to_string()))?
            .ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            })
    }

    fn round_trip(&mut self, request: &Request) -> ClientResult<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Maps a query-shaped response to its reply (or per-statement
    /// server error).
    fn reply_of(response: Response) -> ClientResult<QueryReply> {
        match response {
            Response::Rows { names, rows } => Ok(QueryReply::Rows { names, rows }),
            Response::Ok { affected } => Ok(QueryReply::Ok { affected }),
            Response::Err {
                retryable,
                code,
                message,
            } => Err(ClientError::Server {
                retryable,
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to a query: {other:?}"
            ))),
        }
    }

    fn expect_reply(&mut self, request: &Request) -> ClientResult<QueryReply> {
        let response = self.round_trip(request)?;
        Self::reply_of(response)
    }

    /// Executes one SQL statement.
    pub fn query(&mut self, sql: &str) -> ClientResult<QueryReply> {
        self.expect_reply(&Request::Query(sql.to_string()))
    }

    /// Caches `sql` (with `?` parameter placeholders) server-side under
    /// `id`, replacing any previous statement with that id. Returns the
    /// template's parameter count.
    pub fn prepare(&mut self, id: u64, sql: &str) -> ClientResult<u64> {
        match self.expect_reply(&Request::Prepare {
            id,
            sql: sql.to_string(),
        })? {
            QueryReply::Ok { affected } => Ok(affected),
            QueryReply::Rows { .. } => Err(ClientError::Protocol(
                "unexpected result set in reply to PREPARE".into(),
            )),
        }
    }

    /// Executes the prepared statement `id`, binding `params` to its
    /// placeholders in order. The reply is identical to running the
    /// statement with the parameters inlined as literals.
    pub fn execute_prepared(&mut self, id: u64, params: Row) -> ClientResult<QueryReply> {
        self.expect_reply(&Request::Execute { id, params })
    }

    /// Drops the prepared statement `id` from the server-side cache.
    pub fn close_stmt(&mut self, id: u64) -> ClientResult<()> {
        match self.expect_reply(&Request::CloseStmt { id })? {
            QueryReply::Ok { .. } => Ok(()),
            QueryReply::Rows { .. } => Err(ClientError::Protocol(
                "unexpected result set in reply to CLOSE_STMT".into(),
            )),
        }
    }

    /// Pipelines a batch of statements: request frames are written
    /// back-to-back (without waiting for responses) and the responses
    /// collected in request order. The outer `Err` is a dead
    /// connection; per-statement failures land in their slot of the
    /// returned vector. Batches of any size are safe: once the encoded
    /// requests outgrow what kernel socket buffers are sure to absorb,
    /// the write moves to a helper thread and responses are drained
    /// concurrently, so the two directions can never deadlock.
    pub fn pipeline(&mut self, sqls: &[String]) -> ClientResult<Vec<ClientResult<QueryReply>>> {
        let requests: Vec<Request> = sqls.iter().map(|sql| Request::Query(sql.clone())).collect();
        self.pipeline_requests(&requests)
    }

    /// Pipelines `EXECUTE`s of one prepared statement, one per
    /// parameter row — the cheapest way to push many statements through
    /// a connection (no SQL text, no parse, one round trip).
    pub fn pipeline_execute(
        &mut self,
        id: u64,
        batches: &[Row],
    ) -> ClientResult<Vec<ClientResult<QueryReply>>> {
        let requests: Vec<Request> = batches
            .iter()
            .map(|params| Request::Execute {
                id,
                params: params.clone(),
            })
            .collect();
        self.pipeline_requests(&requests)
    }

    /// Encoded batches at or under this size are written in one burst
    /// before any response is read: they fit comfortably in the kernel
    /// socket buffers, so the server can never be stuck writing
    /// responses while we are stuck writing requests. Larger batches
    /// write from a helper thread while this thread reads.
    const PIPELINE_BURST_MAX: usize = 64 << 10;

    fn pipeline_requests(
        &mut self,
        requests: &[Request],
    ) -> ClientResult<Vec<ClientResult<QueryReply>>> {
        let mut frames: Vec<u8> = Vec::new();
        for request in requests {
            // Writes to a Vec are infallible.
            let _ = wire::write_frame(&mut frames, &request.encode());
        }
        if frames.len() <= Self::PIPELINE_BURST_MAX {
            self.stream.write_all(&frames)?;
            let mut replies = Vec::with_capacity(requests.len());
            for _ in requests {
                replies.push(Self::reply_of(self.recv()?));
            }
            return Ok(replies);
        }

        // The batch is too big to park in socket buffers: writing it
        // all before reading could fill both directions (we block
        // writing requests, the server blocks writing responses) and
        // trip the server's write timeout. A helper thread streams the
        // requests while this thread drains responses as they arrive.
        let mut writer = self.stream.try_clone()?;
        let sender = std::thread::Builder::new()
            .name("bf-client-pipeline".into())
            .spawn(move || writer.write_all(&frames))
            .map_err(ClientError::Io)?;
        let mut replies = Vec::with_capacity(requests.len());
        let mut read_err: Option<ClientError> = None;
        for _ in requests {
            match self.recv() {
                Ok(response) => replies.push(Self::reply_of(response)),
                // A dead connection also unblocks the writer, so the
                // join below cannot hang on it.
                Err(e) => {
                    read_err = Some(e);
                    break;
                }
            }
        }
        let wrote = sender
            .join()
            .map_err(|_| ClientError::Protocol("pipeline writer thread panicked".into()))?;
        if let Some(e) = read_err {
            return Err(e);
        }
        wrote?;
        Ok(replies)
    }

    /// Executes a statement and returns its affected-row count; a
    /// result set is a protocol error.
    pub fn execute(&mut self, sql: &str) -> ClientResult<u64> {
        match self.query(sql)? {
            QueryReply::Ok { affected } => Ok(affected),
            QueryReply::Rows { .. } => Err(ClientError::Protocol(
                "expected an OK reply, got a result set".into(),
            )),
        }
    }

    /// Executes a statement, retrying (bounded) while the server reports
    /// a retryable error — remote lock timeouts under contention.
    pub fn execute_retry(&mut self, sql: &str, max_attempts: usize) -> ClientResult<u64> {
        let mut last: Option<ClientError> = None;
        for _ in 0..max_attempts {
            match self.execute(sql) {
                Ok(n) => return Ok(n),
                Err(ClientError::Server {
                    retryable: true,
                    code,
                    message,
                }) => {
                    last = Some(ClientError::Server {
                        retryable: true,
                        code,
                        message,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("retry limit of zero".into())))
    }

    /// Executes a SELECT and returns `(names, rows)`; an OK reply is a
    /// protocol error.
    pub fn query_rows(&mut self, sql: &str) -> ClientResult<(Vec<String>, Vec<Row>)> {
        match self.query(sql)? {
            QueryReply::Rows { names, rows } => Ok((names, rows)),
            QueryReply::Ok { .. } => Err(ClientError::Protocol(
                "expected a result set, got an OK reply".into(),
            )),
        }
    }

    /// Asks the server to run a checkpoint cycle; returns the records
    /// absorbed.
    pub fn checkpoint(&mut self) -> ClientResult<u64> {
        match self.round_trip(&Request::Checkpoint)? {
            Response::Ok { affected } => Ok(affected),
            Response::Err {
                retryable,
                code,
                message,
            } => Err(ClientError::Server {
                retryable,
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected checkpoint reply {other:?}"
            ))),
        }
    }

    /// Fetches the server's `STATUS` counters.
    pub fn status(&mut self) -> ClientResult<Vec<(String, i64)>> {
        match self.round_trip(&Request::Status)? {
            Response::Stats(pairs) => Ok(pairs),
            other => Err(ClientError::Protocol(format!(
                "unexpected status reply {other:?}"
            ))),
        }
    }

    /// Fetches the server's full metrics snapshot: counters, gauges,
    /// latency histograms, and recent migration-lifecycle spans.
    pub fn metrics(&mut self) -> ClientResult<bullfrog_obs::MetricsSnapshot> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(ClientError::Protocol(format!(
                "unexpected metrics reply {other:?}"
            ))),
        }
    }

    /// Requests a graceful server shutdown. The server acknowledges,
    /// then drains every session and syncs its WAL.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Ok { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected shutdown reply {other:?}"
            ))),
        }
    }

    /// Fetches the node's installed shard map (does not mark the
    /// connection as a coordinator).
    pub fn cluster_get_map(&mut self) -> ClientResult<ShardMap> {
        match self.round_trip(&Request::Cluster(ClusterReq::GetMap))? {
            Response::ShardMap(map) => Ok(map),
            Response::Err {
                retryable,
                code,
                message,
            } => Err(ClientError::Server {
                retryable,
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected shard-map reply {other:?}"
            ))),
        }
    }

    /// Installs `map` on the node (which owns slot `self_index`).
    /// Coordinator-only; marks this connection as admin.
    pub fn cluster_set_map(&mut self, self_index: u32, map: &ShardMap) -> ClientResult<()> {
        self.cluster_ack(ClusterReq::SetMap {
            self_index,
            map: map.clone(),
        })
    }

    /// Phase one of a two-phase schema flip: stage `sql` on the node and
    /// open its `FLIP_PENDING` window. Returns the cross-node exchange
    /// work the coordinator owes after every node commits.
    pub fn cluster_prepare(&mut self, sql: &str) -> ClientResult<Vec<ExchangeSpec>> {
        let op = ClusterReq::Prepare {
            sql: sql.to_string(),
        };
        match self.round_trip(&Request::Cluster(op))? {
            Response::Prepared { exchange } => Ok(exchange),
            Response::Err {
                retryable,
                code,
                message,
            } => Err(ClientError::Server {
                retryable,
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected prepare reply {other:?}"
            ))),
        }
    }

    /// Phase two: run the staged flip DDL (local logical flip; lazy
    /// migration of the node's partition starts).
    pub fn cluster_commit(&mut self) -> ClientResult<()> {
        self.cluster_ack(ClusterReq::Commit)
    }

    /// Drops a staged flip and unblocks the node's tables.
    pub fn cluster_abort(&mut self) -> ClientResult<()> {
        self.cluster_ack(ClusterReq::Abort)
    }

    /// Releases the post-commit exchange hold on n:1 output tables.
    pub fn cluster_end_exchange(&mut self) -> ClientResult<()> {
        self.cluster_ack(ClusterReq::EndExchange)
    }

    /// Sends one HA protocol request and decodes the `HA_STATE` reply.
    pub fn ha(&mut self, req: HaReq) -> ClientResult<HaStateReply> {
        match self.round_trip(&Request::Ha(req))? {
            Response::HaState {
                granted,
                epoch,
                role,
                leader,
                lease_ms,
            } => Ok(HaStateReply {
                granted,
                epoch,
                role,
                leader,
                lease_ms,
            }),
            Response::Err {
                retryable,
                code,
                message,
            } => Err(ClientError::Server {
                retryable,
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected HA reply {other:?}"
            ))),
        }
    }

    /// Probes the peer's HA state (role, epoch, leader, lease).
    pub fn ha_state(&mut self) -> ClientResult<HaStateReply> {
        self.ha(HaReq::State)
    }

    fn cluster_ack(&mut self, op: ClusterReq) -> ClientResult<()> {
        match self.round_trip(&Request::Cluster(op))? {
            Response::Ok { .. } => Ok(()),
            Response::Err {
                retryable,
                code,
                message,
            } => Err(ClientError::Server {
                retryable,
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected cluster reply {other:?}"
            ))),
        }
    }
}
