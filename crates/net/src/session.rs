//! Per-connection session: statement execution and transaction
//! lifecycle.
//!
//! A [`Session`] owns at most one open [`Transaction`]. Statements
//! outside an explicit `BEGIN`/`COMMIT` bracket run in autocommit: the
//! session begins a transaction, executes, and commits (or aborts on
//! error) before replying. Dropping a session — which is what happens
//! when the client disconnects or the server drains — aborts any open
//! transaction, so a half-finished remote transaction can never leave
//! locks or uncommitted rows behind.
//!
//! All DML flows through [`ClientAccess`], so when the session's access
//! is a [`Bullfrog`](bullfrog_core::Bullfrog) controller every remote
//! read and write gets the lazy-migration interposition: touching a
//! not-yet-migrated slice of an output table migrates it, exactly once,
//! before the statement proceeds.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_common::{Error, Result, Row};
use bullfrog_core::{Bullfrog, ClientAccess, Passthrough};
use bullfrog_engine::exec::ExecOptions;
use bullfrog_engine::LockPolicy;
use bullfrog_sql::{
    parse_statement, parse_template, reorder_insert_rows, PreparedTemplate, Statement,
};
use bullfrog_txn::{AckOutcome, CommitTicket, SyncPolicy, Transaction};

use crate::cluster::ClusterMember;
use crate::server::{DdlEvent, HaHooks, ReadOnly, ReplicationHooks};
use crate::wire::{err_code, Response};

/// Counters shared by every session of a server. The handles live on
/// the database's [`bullfrog_obs::Registry`] under `sessions.*`, so
/// `STATUS` and `METRICS` read the same storage — the two reports can
/// never disagree on a total.
pub struct SessionCounters {
    /// Statements executed (including failed ones).
    pub statements: Arc<bullfrog_obs::Counter>,
    /// Statements that returned an error.
    pub errors: Arc<bullfrog_obs::Counter>,
    /// Rows returned to clients.
    pub rows_returned: Arc<bullfrog_obs::Counter>,
    /// Rows written (insert/update/delete) by committed statements.
    pub rows_written: Arc<bullfrog_obs::Counter>,
    /// Transactions committed (autocommit and explicit).
    pub commits: Arc<bullfrog_obs::Counter>,
    /// Transactions aborted (errors, rollbacks, disconnects).
    pub aborts: Arc<bullfrog_obs::Counter>,
}

impl SessionCounters {
    /// Counters registered on `reg` under the `sessions.*` names.
    pub fn new(reg: &bullfrog_obs::Registry) -> Self {
        SessionCounters {
            statements: reg.counter("sessions.statements"),
            errors: reg.counter("sessions.errors"),
            rows_returned: reg.counter("sessions.rows_returned"),
            rows_written: reg.counter("sessions.rows_written"),
            commits: reg.counter("sessions.commits"),
            aborts: reg.counter("sessions.aborts"),
        }
    }

    fn bump(c: &bullfrog_obs::Counter, n: u64) {
        c.add(n);
    }
}

impl Default for SessionCounters {
    /// Unregistered counters, for sessions built without a server (the
    /// normal path is [`SessionCounters::new`] on the database's
    /// registry).
    fn default() -> Self {
        SessionCounters {
            statements: Arc::new(bullfrog_obs::Counter::new()),
            errors: Arc::new(bullfrog_obs::Counter::new()),
            rows_returned: Arc::new(bullfrog_obs::Counter::new()),
            rows_written: Arc::new(bullfrog_obs::Counter::new()),
            commits: Arc::new(bullfrog_obs::Counter::new()),
            aborts: Arc::new(bullfrog_obs::Counter::new()),
        }
    }
}

/// How long a session waits in `FINALIZE MIGRATION` for stragglers.
const FINALIZE_WAIT: Duration = Duration::from_secs(5);

/// Per-session prepared-statement cache cap; a `PREPARE` with a fresh
/// id past this is refused rather than silently evicting.
const MAX_PREPARED: usize = 256;

/// One cached `PREPARE`: the parsed template plus its original text
/// (kept for error context; templates are DML-only so the text never
/// reaches the DDL journal).
struct PreparedStmt {
    template: PreparedTemplate,
    sql: String,
}

/// One client session.
pub struct Session {
    bf: Arc<Bullfrog>,
    counters: Arc<SessionCounters>,
    statement_timeout: Duration,
    txn: Option<Transaction>,
    /// `SET COMMIT_MODE NOWAIT(n)`: the bounded window of un-durable
    /// commit tickets (`None` = synchronous commits).
    commit_window: Option<CommitWindow>,
    /// Primary-side replication: DDL runs through the journal.
    hooks: Option<Arc<dyn ReplicationHooks>>,
    /// Replica-side read-only mode.
    read_only: Option<ReadOnly>,
    /// Cluster-member enforcement (shard ownership, flip windows).
    cluster: Option<Arc<ClusterMember>>,
    /// HA-member enforcement: writes and DDL are refused while this
    /// node is not the leaseholder.
    ha: Option<Arc<dyn HaHooks>>,
    /// `PREPARE`d statement templates, keyed by the client-chosen id.
    prepared: HashMap<u64, PreparedStmt>,
    /// Set once this connection issues a cluster-control operation: the
    /// coordinator's own statements (flip DDL, the exchange's
    /// cross-shard reads and merge writes) bypass enforcement.
    cluster_admin: bool,
    /// Rows written by statements of the *open* explicit transaction.
    /// `sessions.rows_written` counts committed writes only, so these
    /// stay pending until `COMMIT` and vanish on rollback or abort.
    pending_rows_written: u64,
}

/// The `NOWAIT(max_unacked)` session state: every commit is
/// acknowledged at WAL-enqueue time, and the session blocks on the
/// oldest outstanding ticket once more than `max_unacked` commits are
/// still un-durable.
struct CommitWindow {
    max_unacked: u64,
    outstanding: VecDeque<CommitTicket>,
}

impl CommitWindow {
    /// Admits a fresh ticket: prune tickets the durable horizon already
    /// covers, then block on the oldest while the window is over
    /// capacity. The wait is on the *merged* horizon (see
    /// `CommitTicket::wait`) composed with the synchronous-replication
    /// gate, so a drained window implies every earlier commit of this
    /// session is durable and (under `SYNC_REPLICAS`) replicated.
    fn push(&mut self, ticket: CommitTicket) -> AckOutcome {
        self.outstanding.push_back(ticket);
        while self.outstanding.front().is_some_and(|t| t.is_durable()) {
            self.outstanding.pop_front();
        }
        let mut worst = AckOutcome::Synced;
        while self.outstanding.len() as u64 > self.max_unacked {
            let t = self.outstanding.pop_front().expect("len > 0");
            worst = worse(worst, t.wait_acked());
        }
        worst
    }

    fn drain(&mut self) -> AckOutcome {
        let mut worst = AckOutcome::Synced;
        for t in self.outstanding.drain(..) {
            worst = worse(worst, t.wait_acked());
        }
        worst
    }
}

/// Combines two gate outcomes, keeping the more severe one.
fn worse(a: AckOutcome, b: AckOutcome) -> AckOutcome {
    use AckOutcome::{Degraded, Fenced, Synced};
    match (a, b) {
        (Fenced, _) | (_, Fenced) => Fenced,
        (Degraded, _) | (_, Degraded) => Degraded,
        _ => Synced,
    }
}

/// True for statements that mutate data or the catalog — the set the
/// HA leadership gate refuses on a non-leader.
fn statement_writes(stmt: &Statement) -> bool {
    matches!(
        stmt,
        Statement::Insert { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. }
            | Statement::CreateTable(_)
            | Statement::CreateTableAs { .. }
            | Statement::FinalizeMigration { .. }
    )
}

impl Session {
    /// Creates a session over `bf`, reporting into `counters`.
    pub fn new(
        bf: Arc<Bullfrog>,
        counters: Arc<SessionCounters>,
        statement_timeout: Duration,
    ) -> Self {
        Session {
            bf,
            counters,
            statement_timeout,
            txn: None,
            commit_window: None,
            hooks: None,
            read_only: None,
            cluster: None,
            ha: None,
            prepared: HashMap::new(),
            cluster_admin: false,
            pending_rows_written: 0,
        }
    }

    /// Routes this session's DDL through the primary's replication
    /// journal.
    pub fn with_ddl_hooks(mut self, hooks: Arc<dyn ReplicationHooks>) -> Self {
        self.hooks = Some(hooks);
        self
    }

    /// Makes this a read-only replica session.
    pub fn with_read_only(mut self, ro: ReadOnly) -> Self {
        self.read_only = Some(ro);
        self
    }

    /// Enables cluster-member enforcement on this session.
    pub fn with_cluster(mut self, member: Arc<ClusterMember>) -> Self {
        self.cluster = Some(member);
        self
    }

    /// Enables HA-member enforcement on this session.
    pub fn with_ha(mut self, ha: Arc<dyn HaHooks>) -> Self {
        self.ha = Some(ha);
        self
    }

    /// Marks this session as the flip coordinator's: its statements
    /// bypass shard-ownership and flip-window enforcement (the same
    /// trust model as the `SHUTDOWN` opcode).
    pub fn set_cluster_admin(&mut self) {
        self.cluster_admin = true;
    }

    /// True while an explicit transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Parses and executes one statement, returning the wire response.
    /// Errors abort the statement's transaction (and a surrounding
    /// explicit transaction too — its locks are gone, so pretending it
    /// is still open would be a lie) but never poison the session.
    pub fn execute(&mut self, sql: &str) -> Response {
        SessionCounters::bump(&self.counters.statements, 1);
        let started = Instant::now();
        let stmt = match parse_statement(sql) {
            Ok(stmt) => stmt,
            Err(e) => return self.fail(&e),
        };
        self.gate_and_run(stmt, sql, started)
    }

    /// Parses `sql` as a parameterized template and caches it under the
    /// client-chosen `id` (re-preparing an id replaces its statement).
    /// Only DML templates are accepted — transaction control, DDL, and
    /// admin statements have no parameters to bind and gain nothing
    /// from caching. Replies `OK` with the parameter count.
    pub fn prepare(&mut self, id: u64, sql: &str) -> Response {
        SessionCounters::bump(&self.counters.statements, 1);
        let template = match parse_template(sql) {
            Ok(t) => t,
            Err(e) => return self.fail(&e),
        };
        match template.statement() {
            Statement::Select(_)
            | Statement::Insert { .. }
            | Statement::InsertExprs { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. } => {}
            _ => {
                return self.fail(&Error::Eval(
                    "PREPARE supports only SELECT, INSERT, UPDATE, and DELETE".into(),
                ))
            }
        }
        if self.prepared.len() >= MAX_PREPARED && !self.prepared.contains_key(&id) {
            return self.fail(&Error::Eval(format!(
                "prepared-statement cache full ({MAX_PREPARED} statements); CLOSE one first"
            )));
        }
        let n_params = template.n_params();
        self.prepared.insert(
            id,
            PreparedStmt {
                template,
                sql: sql.to_string(),
            },
        );
        Response::Ok {
            affected: u64::from(n_params),
        }
    }

    /// Binds `params` into the cached template `id` and executes the
    /// resulting statement through exactly the gates and run path a
    /// `QUERY` takes — responses are byte-identical to executing the
    /// statement with the parameters folded in as literals.
    pub fn execute_prepared(&mut self, id: u64, params: &Row) -> Response {
        SessionCounters::bump(&self.counters.statements, 1);
        let started = Instant::now();
        let Some(entry) = self.prepared.get(&id) else {
            return self.fail(&Error::Eval(format!("unknown prepared statement {id}")));
        };
        let sql = entry.sql.clone();
        let stmt = match entry.template.bind(&params.0) {
            Ok(stmt) => stmt,
            Err(e) => return self.fail(&e),
        };
        self.gate_and_run(stmt, &sql, started)
    }

    /// Drops the cached template `id`, freeing its cache slot.
    pub fn close_stmt(&mut self, id: u64) -> Response {
        SessionCounters::bump(&self.counters.statements, 1);
        match self.prepared.remove(&id) {
            Some(_) => Response::Ok { affected: 0 },
            None => self.fail(&Error::Eval(format!("unknown prepared statement {id}"))),
        }
    }

    /// The post-parse execution path shared by `QUERY` and `EXECUTE`:
    /// read-only routing, HA leadership and cluster-ownership gates,
    /// then the statement runner.
    fn gate_and_run(&mut self, stmt: Statement, sql: &str, started: Instant) -> Response {
        // A promoted replica flips `writable` and its sessions leave
        // read-only routing without reconnecting.
        if let Some(ro) = &self.read_only {
            if !ro.writable.load(Ordering::Acquire) {
                return self.run_read_only(stmt);
            }
        }
        // HA leadership gate: a member that does not hold the lease
        // refuses writes and DDL up front, naming the leader so clients
        // re-route. Reads and session-local settings still run.
        if statement_writes(&stmt) {
            if let Some(leader) = self.ha.as_ref().and_then(|ha| ha.write_block()) {
                SessionCounters::bump(&self.counters.errors, 1);
                return Response::Err {
                    retryable: false,
                    code: err_code::READ_ONLY,
                    message: format!(
                        "not the HA leader: writes and DDL must go to the primary at {leader}"
                    ),
                };
            }
        }
        if let Some(member) = &self.cluster {
            if !self.cluster_admin {
                if let Some(resp) = member.reject(self.bf.db(), &stmt) {
                    // Refused before execution: no transaction state to
                    // clean up, and an open explicit transaction stays
                    // open (the statement never ran).
                    SessionCounters::bump(&self.counters.errors, 1);
                    return resp;
                }
            }
        }
        match self.run(stmt, sql, started) {
            Ok(resp) => resp,
            Err(e) => self.fail(&e),
        }
    }

    /// Error path shared by every statement: count it, abort any open
    /// transaction, and build the wire error.
    fn fail(&mut self, e: &Error) -> Response {
        SessionCounters::bump(&self.counters.errors, 1);
        // A failed statement cannot leave a broken transaction open
        // behind the client's back.
        if let Some(mut txn) = self.txn.take() {
            self.bf.db().abort(&mut txn);
            self.pending_rows_written = 0;
            SessionCounters::bump(&self.counters.aborts, 1);
        }
        Response::from_error(e)
    }

    /// Aborts any open transaction (disconnect / drain path) and drains
    /// the async-commit window so an orderly close acknowledges nothing
    /// it cannot keep.
    pub fn abort_open(&mut self) {
        if let Some(mut txn) = self.txn.take() {
            self.bf.db().abort(&mut txn);
            self.pending_rows_written = 0;
            SessionCounters::bump(&self.counters.aborts, 1);
        }
        if let Some(w) = &mut self.commit_window {
            w.drain();
        }
    }

    /// Replica statement surface: `SELECT` runs against the local heaps
    /// under the apply gate; everything else is redirected to the
    /// primary with a retryable [`err_code::READ_ONLY`] error.
    fn run_read_only(&mut self, stmt: Statement) -> Response {
        let ro = self.read_only.clone().expect("read_only checked");
        match stmt {
            Statement::Select(spec) => {
                // Hold the apply gate's read half for the whole
                // statement: the log applier takes the write half per
                // transaction batch, so this read sees only whole
                // transactions. Reads bypass the migration controller
                // (`Passthrough`) — interposition would try to *write*
                // migrated rows, and this node's granule state comes
                // from the primary's log, never from local work.
                let _gate = ro.gate.read();
                let pass = Passthrough::new(Arc::clone(self.bf.db()));
                let result = (|| {
                    let spec = bullfrog_sql::qualify_spec(self.bf.db(), &spec)?;
                    let mut txn = self.bf.db().begin();
                    let out = pass.execute_spec(
                        &mut txn,
                        &spec,
                        &ExecOptions {
                            lock: LockPolicy::Shared,
                            ..ExecOptions::default()
                        },
                    );
                    self.bf.db().abort(&mut txn); // read-only; release locks
                    out
                })();
                match result {
                    Ok(out) => {
                        SessionCounters::bump(&self.counters.rows_returned, out.rows.len() as u64);
                        Response::Rows {
                            names: out.names,
                            rows: out.rows,
                        }
                    }
                    Err(e) => {
                        SessionCounters::bump(&self.counters.errors, 1);
                        Response::from_error(&e)
                    }
                }
            }
            _ => {
                SessionCounters::bump(&self.counters.errors, 1);
                Response::Err {
                    retryable: true,
                    code: err_code::READ_ONLY,
                    message: format!(
                        "read-only replica: writes and DDL must go to the primary at {}",
                        ro.primary
                    ),
                }
            }
        }
    }

    fn run(&mut self, stmt: Statement, sql: &str, started: Instant) -> Result<Response> {
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(Error::Eval("transaction already open".into()));
                }
                self.txn = Some(self.bf.db().begin());
                Ok(Response::Ok { affected: 0 })
            }
            Statement::Commit => {
                let mut txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::Eval("COMMIT outside a transaction".into()))?;
                let acked_lsn = self.commit_txn(&mut txn)?;
                Ok(Response::Ok {
                    affected: acked_lsn,
                })
            }
            Statement::CommitNowait => {
                let mut txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::Eval("COMMIT outside a transaction".into()))?;
                // Acknowledge at enqueue time; the shard flusher makes the
                // batch durable in the background. The server's shutdown
                // drain syncs the WAL, so an orderly stop loses nothing.
                // `affected` carries the ticket's wait-LSN so clients can
                // correlate with `wal.durable_lsn` in STATUS.
                let ticket = self.bf.db().commit_nowait(&mut txn)?;
                SessionCounters::bump(&self.counters.commits, 1);
                SessionCounters::bump(&self.counters.rows_written, self.pending_rows_written);
                self.pending_rows_written = 0;
                Ok(Response::Ok {
                    affected: ticket.wait_lsn(),
                })
            }
            Statement::Rollback => {
                let mut txn = self
                    .txn
                    .take()
                    .ok_or_else(|| Error::Eval("ROLLBACK outside a transaction".into()))?;
                self.bf.db().abort(&mut txn);
                self.pending_rows_written = 0;
                SessionCounters::bump(&self.counters.aborts, 1);
                Ok(Response::Ok { affected: 0 })
            }
            Statement::SetCommitMode { max_unacked } => {
                // Leaving NOWAIT (or shrinking the window) drains first:
                // the mode switch must not silently strand acknowledged
                // commits outside any window bound.
                if let Some(w) = &mut self.commit_window {
                    if matches!(w.drain(), AckOutcome::Fenced) {
                        return Err(self.fenced_error());
                    }
                }
                self.commit_window = max_unacked.map(|max_unacked| CommitWindow {
                    max_unacked,
                    outstanding: VecDeque::new(),
                });
                Ok(Response::Ok { affected: 0 })
            }
            Statement::SetSyncReplicas { count } => {
                self.bf.db().wal().sync_gate().set_required(count as usize);
                Ok(Response::Ok { affected: 0 })
            }
            Statement::SetSyncPolicy { degrade_ms } => {
                self.bf.db().wal().sync_gate().set_policy(match degrade_ms {
                    None => SyncPolicy::Block,
                    Some(ms) => SyncPolicy::Degrade(Duration::from_millis(ms)),
                });
                Ok(Response::Ok { affected: 0 })
            }
            Statement::CreateTable(schema) => {
                if let Some(hooks) = self.hooks.clone() {
                    let db = Arc::clone(self.bf.db());
                    hooks.journaled_ddl(&mut || {
                        db.create_table(schema.clone())?;
                        Ok(DdlEvent::Create {
                            sql: sql.to_string(),
                        })
                    })?;
                } else {
                    self.bf.db().create_table(schema)?;
                }
                Ok(Response::Ok { affected: 0 })
            }
            Statement::CreateTableAs {
                name,
                select,
                primary_key,
            } => self.submit_migration(name, select, primary_key, sql),
            Statement::Checkpoint => {
                let stats = self.bf.db().checkpoint()?;
                Ok(Response::Ok {
                    affected: stats.absorbed_records as u64,
                })
            }
            Statement::FinalizeMigration { drop_old } => {
                // Give lazy stragglers and background threads a bounded
                // chance to finish before the authoritative check.
                self.bf.wait_migration_complete(FINALIZE_WAIT);
                if let Some(hooks) = self.hooks.clone() {
                    let bf = Arc::clone(&self.bf);
                    hooks.journaled_ddl(&mut || {
                        bf.finalize_migration(drop_old)?;
                        Ok(DdlEvent::Finalize {
                            sql: sql.to_string(),
                        })
                    })?;
                } else {
                    self.bf.finalize_migration(drop_old)?;
                }
                Ok(Response::Ok { affected: 0 })
            }
            dml => self.run_dml(dml, started),
        }
    }

    /// Commits per the session's commit mode: synchronous by default;
    /// in `NOWAIT(n)` the acknowledgement happens at enqueue time and
    /// the ticket joins the bounded window. Returns the value for the
    /// response's `affected` field (the ticket's wait-LSN in NOWAIT
    /// mode, 0 for a synchronous commit, matching `COMMIT`'s historic
    /// reply).
    fn commit_txn(&mut self, txn: &mut Transaction) -> Result<u64> {
        let acked = match &mut self.commit_window {
            None => {
                self.bf.db().commit(txn)?;
                0
            }
            Some(window) => {
                let ticket = self.bf.db().commit_nowait(txn)?;
                let lsn = ticket.wait_lsn();
                if matches!(window.push(ticket), AckOutcome::Fenced) {
                    return Err(self.fenced_error());
                }
                lsn
            }
        };
        SessionCounters::bump(&self.counters.commits, 1);
        // The transaction's writes are now committed (or durably
        // enqueued); only here do they count as written rows.
        SessionCounters::bump(&self.counters.rows_written, self.pending_rows_written);
        self.pending_rows_written = 0;
        Ok(acked)
    }

    /// Builds the error a fenced gate outcome surfaces to the client:
    /// the commit was not acknowledged here, and the message names the
    /// new leader (when known) for the redirect.
    fn fenced_error(&self) -> Error {
        Error::Fenced {
            leader: self.bf.db().wal().sync_gate().leader_hint(),
        }
    }

    /// Runs a DML statement inside the session's transaction (or an
    /// autocommit one), enforcing the statement timeout before commit:
    /// a statement that overran is aborted, not committed, so the
    /// client's timeout error is truthful.
    fn run_dml(&mut self, stmt: Statement, started: Instant) -> Result<Response> {
        let autocommit = self.txn.is_none();
        if autocommit {
            self.txn = Some(self.bf.db().begin());
        }
        let mut txn = self.txn.take().expect("transaction set above");
        let result = self.apply_dml(&mut txn, stmt).and_then(|resp| {
            if started.elapsed() > self.statement_timeout {
                Err(Error::Eval(format!(
                    "statement timeout ({:?}) exceeded",
                    self.statement_timeout
                )))
            } else {
                Ok(resp)
            }
        });
        match result {
            Ok(resp) => {
                if autocommit {
                    self.commit_txn(&mut txn)?;
                } else {
                    self.txn = Some(txn);
                }
                if let Response::Ok { affected } = &resp {
                    // Written rows count only once committed: right here
                    // for autocommit (the commit above succeeded),
                    // deferred to COMMIT inside an explicit transaction —
                    // a rollback must not leave them in the counter.
                    if autocommit {
                        SessionCounters::bump(&self.counters.rows_written, *affected);
                    } else {
                        self.pending_rows_written += *affected;
                    }
                }
                if let Response::Rows { rows, .. } = &resp {
                    SessionCounters::bump(&self.counters.rows_returned, rows.len() as u64);
                }
                Ok(resp)
            }
            Err(e) => {
                self.bf.db().abort(&mut txn);
                self.pending_rows_written = 0;
                SessionCounters::bump(&self.counters.aborts, 1);
                Err(e)
            }
        }
    }

    fn apply_dml(&self, txn: &mut Transaction, stmt: Statement) -> Result<Response> {
        match stmt {
            Statement::Select(spec) => {
                let spec = bullfrog_sql::qualify_spec(self.bf.db(), &spec)?;
                let opts = ExecOptions {
                    lock: LockPolicy::Shared,
                    ..ExecOptions::default()
                };
                let out = self.bf.execute_spec(txn, &spec, &opts)?;
                Ok(Response::Rows {
                    names: out.names,
                    rows: out.rows,
                })
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let schema = self.bf.db().table(&table)?.schema().clone();
                let rows = reorder_insert_rows(&schema, &columns, &rows)?;
                let n = rows.len() as u64;
                for row in rows {
                    self.bf.insert(txn, &table, row)?;
                }
                Ok(Response::Ok { affected: n })
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let t = self.bf.db().table(&table)?;
                let scope = bullfrog_engine::db::table_scope(&t);
                let schema = t.schema().clone();
                let mut set_idx = Vec::with_capacity(sets.len());
                for (col, e) in &sets {
                    set_idx.push((schema.col_index(col)?, e));
                }
                let matched =
                    self.bf
                        .select(txn, &table, predicate.as_ref(), LockPolicy::Exclusive)?;
                let n = matched.len() as u64;
                for (rid, row) in matched {
                    let mut new_row = row.clone();
                    for (pos, e) in &set_idx {
                        new_row.0[*pos] = e.eval(&scope, &row)?;
                    }
                    self.bf.update(txn, &table, rid, new_row)?;
                }
                Ok(Response::Ok { affected: n })
            }
            Statement::Delete { table, predicate } => {
                let matched =
                    self.bf
                        .select(txn, &table, predicate.as_ref(), LockPolicy::Exclusive)?;
                let n = matched.len() as u64;
                for (rid, _) in matched {
                    self.bf.delete(txn, &table, rid)?;
                }
                Ok(Response::Ok { affected: n })
            }
            other => Err(Error::Internal(format!(
                "non-DML statement {other:?} reached run_dml"
            ))),
        }
    }

    /// Turns migration DDL into a [`MigrationPlan`]
    /// (bullfrog_core::MigrationPlan) and submits it: schema inference
    /// against the live catalog, then the O(statements) logical flip.
    fn submit_migration(
        &mut self,
        name: String,
        select: bullfrog_query::SelectSpec,
        primary_key: Vec<String>,
        sql: &str,
    ) -> Result<Response> {
        if self.txn.is_some() {
            return Err(Error::Eval(
                "migration DDL cannot run inside an explicit transaction".into(),
            ));
        }
        let plan = build_migration_plan(&self.bf, name, &select, primary_key)?;
        if let Some(hooks) = self.hooks.clone() {
            let bf = Arc::clone(&self.bf);
            hooks.journaled_ddl(&mut || {
                let (_migration, caps) = bf
                    .submit_migration_with(plan.clone(), bullfrog_core::SubmitOptions::default())?;
                Ok(DdlEvent::Migrate {
                    sql: sql.to_string(),
                    caps,
                })
            })?;
        } else {
            self.bf.submit_migration(plan)?;
        }
        Ok(Response::Ok { affected: 0 })
    }
}

/// Migration DDL → [`MigrationPlan`](bullfrog_core::MigrationPlan):
/// schema inference against the live catalog, plus the optional
/// re-declared primary key. Shared with `bullfrog-repl`, which replays
/// journaled migration DDL through exactly this path so the replica's
/// plan resolution matches the primary's.
pub fn build_migration_plan(
    bf: &Bullfrog,
    name: String,
    select: &bullfrog_query::SelectSpec,
    primary_key: Vec<String>,
) -> Result<bullfrog_core::MigrationPlan> {
    let db = bf.db();
    let spec = bullfrog_sql::qualify_spec(db, select)?;
    let mut schema = bullfrog_sql::infer_output_schema(db, &name, &spec, &[])?;
    if !primary_key.is_empty() {
        schema.primary_key = primary_key;
        for c in &mut schema.columns {
            if schema.primary_key.contains(&c.name) {
                c.nullable = false;
            }
        }
    }
    Ok(bullfrog_core::MigrationPlan::new(name)
        .with_statement(bullfrog_core::MigrationStatement::new(schema, spec)))
}

impl Drop for Session {
    fn drop(&mut self) {
        self.abort_open();
    }
}
