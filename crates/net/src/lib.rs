//! bullfrog-net: the TCP surface of BullFrog.
//!
//! The paper's claim — schema migrations that never block concurrent
//! clients — only means something when the clients are real: separate
//! connections racing each other and the migration over a socket, not
//! function calls sharing a test harness. This crate provides that
//! surface:
//!
//! - [`wire`] — the BFNET1 framed binary protocol (length-prefixed
//!   frames, statement text and admin opcodes in, row batches / errors /
//!   stats out), reusing the WAL's row codec;
//! - [`Server`] — a multi-threaded TCP server; each connection owns a
//!   [`Session`] whose statements run through the
//!   [`Bullfrog`](bullfrog_core::Bullfrog) controller, so every remote
//!   read and write gets the lazy-migration interposition, including
//!   migration DDL submitted over the wire;
//! - [`Client`] — a blocking client with connection reuse, used by the
//!   `loadgen` binary and the integration tests.
//!
//! See `DESIGN.md` (§ bullfrog-net) for the frame format, the session
//! state machine, and shutdown semantics.

pub mod client;
pub mod cluster;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{primary_hint, Client, ClientError, ClientResult, HaStateReply, QueryReply};
pub use cluster::{plan_flip, ClusterMember, ClusterReq, ExchangeSpec, FlipPlan, ShardMap};
pub use server::{DdlEvent, HaHooks, ReadOnly, ReplicationHooks, Server, ServerConfig};
pub use session::{build_migration_plan, Session, SessionCounters};
pub use wire::{err_code, HaReq, Request, Response, WireDdl, MAX_FRAME_BYTES, PREAMBLE};
